"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scenario == "horizontal"
        assert args.backend == "bitwise"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scenario", "quantum"])


class TestDemoCommand:
    @pytest.mark.parametrize("scenario", ["horizontal", "enhanced",
                                          "vertical", "arbitrary"])
    def test_two_party_scenarios(self, scenario, capsys):
        exit_code = main(["demo", "--scenario", scenario, "--points", "8",
                          "--backend", "oracle", "--min-pts", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "labels" in output
        assert "disclosures" in output

    def test_multiparty_scenario(self, capsys):
        exit_code = main(["demo", "--scenario", "multiparty",
                          "--points", "9", "--backend", "oracle",
                          "--min-pts", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "party0" in output and "party2" in output

    def test_crypto_backend_small(self, capsys):
        exit_code = main(["demo", "--points", "4", "--min-pts", "2",
                          "--backend", "bitwise"])
        assert exit_code == 0
        assert "bytes" in capsys.readouterr().out

    def test_simulated_transport_with_peer_concurrency(self, capsys):
        exit_code = main(["demo", "--scenario", "multiparty",
                          "--points", "9", "--backend", "oracle",
                          "--min-pts", "2", "--transport", "simulated",
                          "--net-latency-ms", "10", "--peer-concurrency"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "simulated network" in output
        assert "concurrent" in output

    def test_threaded_transport_two_party(self, capsys):
        exit_code = main(["demo", "--points", "6", "--min-pts", "2",
                          "--backend", "oracle",
                          "--transport", "threaded"])
        assert exit_code == 0
        assert "labels" in capsys.readouterr().out

    def test_simulated_transport_two_party_prints_latency(self, capsys):
        exit_code = main(["demo", "--points", "6", "--min-pts", "2",
                          "--backend", "oracle",
                          "--transport", "simulated",
                          "--net-latency-ms", "10"])
        assert exit_code == 0
        assert "simulated network" in capsys.readouterr().out

    def test_simulated_vs_in_process_same_labels(self, capsys):
        main(["demo", "--scenario", "multiparty", "--points", "9",
              "--backend", "oracle", "--min-pts", "2"])
        plain = capsys.readouterr().out
        main(["demo", "--scenario", "multiparty", "--points", "9",
              "--backend", "oracle", "--min-pts", "2",
              "--transport", "simulated", "--peer-concurrency"])
        simulated = capsys.readouterr().out
        for line in plain.splitlines():
            if line.startswith("party"):
                assert line in simulated


class TestOrchestrateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["orchestrate"])
        assert args.parties == 3
        assert not args.verify
        assert not args.prepare_only

    def test_party_requires_run_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["party", "--party", "p0"])

    def test_prepare_only_writes_run_dir_and_commands(self, tmp_path,
                                                      capsys):
        exit_code = main(["orchestrate", "--parties", "2", "--points", "6",
                          "--key-bits", "128", "--prepare-only",
                          "--run-dir", str(tmp_path / "run")])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "separate" in output or "terminal" in output
        assert (tmp_path / "run" / "manifest.json").exists()
        assert (tmp_path / "run" / "partition_party0.json").exists()
        assert (tmp_path / "run" / "partition_party1.json").exists()
        for name in ("party0", "party1"):
            assert f"--party {name}" in output

    def test_prepare_only_requires_run_dir(self):
        with pytest.raises(SystemExit):
            main(["orchestrate", "--prepare-only"])

    @pytest.mark.sockets
    def test_orchestrate_verify_end_to_end(self, capsys):
        """Spawns real party subprocesses and checks the bit-identical
        verification lines all pass."""
        exit_code = main(["orchestrate", "--parties", "2", "--points", "6",
                          "--key-bits", "128", "--min-pts", "2",
                          "--verify"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "OS processes over loopback TCP" in output
        # labels / ledger / comparisons / transcripts / stats
        assert output.count("bit-identical") == 5
        assert "MISMATCH" not in output


class TestAttackCommand:
    def test_attack_table(self, capsys):
        exit_code = main(["attack", "--observers", "3",
                          "--samples", "5000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "kumar_area" in output
        assert output.count("\n") >= 5


class TestFiguresCommand:
    def test_renders_all_three(self, capsys):
        exit_code = main(["figures"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "Figure 3" in output
        assert "Figure 4" in output
        assert "attr1" in output
