"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scenario == "horizontal"
        assert args.backend == "bitwise"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scenario", "quantum"])


class TestDemoCommand:
    @pytest.mark.parametrize("scenario", ["horizontal", "enhanced",
                                          "vertical", "arbitrary"])
    def test_two_party_scenarios(self, scenario, capsys):
        exit_code = main(["demo", "--scenario", scenario, "--points", "8",
                          "--backend", "oracle", "--min-pts", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "labels" in output
        assert "disclosures" in output

    def test_multiparty_scenario(self, capsys):
        exit_code = main(["demo", "--scenario", "multiparty",
                          "--points", "9", "--backend", "oracle",
                          "--min-pts", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "party0" in output and "party2" in output

    def test_crypto_backend_small(self, capsys):
        exit_code = main(["demo", "--points", "4", "--min-pts", "2",
                          "--backend", "bitwise"])
        assert exit_code == 0
        assert "bytes" in capsys.readouterr().out

    def test_simulated_transport_with_peer_concurrency(self, capsys):
        exit_code = main(["demo", "--scenario", "multiparty",
                          "--points", "9", "--backend", "oracle",
                          "--min-pts", "2", "--transport", "simulated",
                          "--net-latency-ms", "10", "--peer-concurrency"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "simulated network" in output
        assert "concurrent" in output

    def test_threaded_transport_two_party(self, capsys):
        exit_code = main(["demo", "--points", "6", "--min-pts", "2",
                          "--backend", "oracle",
                          "--transport", "threaded"])
        assert exit_code == 0
        assert "labels" in capsys.readouterr().out

    def test_simulated_transport_two_party_prints_latency(self, capsys):
        exit_code = main(["demo", "--points", "6", "--min-pts", "2",
                          "--backend", "oracle",
                          "--transport", "simulated",
                          "--net-latency-ms", "10"])
        assert exit_code == 0
        assert "simulated network" in capsys.readouterr().out

    def test_simulated_vs_in_process_same_labels(self, capsys):
        main(["demo", "--scenario", "multiparty", "--points", "9",
              "--backend", "oracle", "--min-pts", "2"])
        plain = capsys.readouterr().out
        main(["demo", "--scenario", "multiparty", "--points", "9",
              "--backend", "oracle", "--min-pts", "2",
              "--transport", "simulated", "--peer-concurrency"])
        simulated = capsys.readouterr().out
        for line in plain.splitlines():
            if line.startswith("party"):
                assert line in simulated


class TestAttackCommand:
    def test_attack_table(self, capsys):
        exit_code = main(["attack", "--observers", "3",
                          "--samples", "5000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "kumar_area" in output
        assert output.count("\n") >= 5


class TestFiguresCommand:
    def test_renders_all_three(self, capsys):
        exit_code = main(["figures"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "Figure 3" in output
        assert "Figure 4" in output
        assert "attr1" in output
