"""Cross-backend equivalence: every comparison backend must produce the
same clustering, byte counts aside.

The comparison backend is the only crypto component with interchangeable
implementations, so any disagreement between oracle, bitwise and YMPP
runs localizes a bug to the backend layer immediately.
"""

import pytest

from repro.clustering.labels import canonicalize
from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.partitioning import (
    HorizontalPartition,
    partition_vertical,
)
from repro.smc.session import SmcConfig


def _config(backend: str, **kwargs) -> ProtocolConfig:
    defaults = dict(
        eps=1.5, min_pts=2, scale=1,
        smc=SmcConfig(comparison=backend, key_seed=250, mask_sigma=2),
        alice_seed=1, bob_seed=2)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


# Tiny coordinates keep the YMPP comparison domain tractable.
POINTS = [(0, 0), (1, 0), (0, 1), (5, 5), (6, 5)]

# Tier-1 workload: an even smaller coordinate box (the YMPP transfer is
# O(interval size), and the interval tracks the max squared distance) and
# mask_sigma=1 keep a full three-backend run in fractions of a second
# while exercising the identical backend code paths as the slow matrix.
QUICK_POINTS = [(0, 0), (1, 0), (0, 1), (2, 2)]


def _quick_config(backend: str, **kwargs) -> ProtocolConfig:
    return _config(backend,
                   smc=SmcConfig(comparison=backend, key_seed=251,
                                 mask_sigma=1, paillier_bits=128,
                                 rsa_bits=256), **kwargs)


class TestBackendsAgreeQuick:
    """Tier-1 cross-backend agreement on a minimal workload."""

    def test_horizontal_all_backends(self):
        partition = HorizontalPartition(alice_points=tuple(QUICK_POINTS[:2]),
                                        bob_points=tuple(QUICK_POINTS[2:]))
        results = {}
        for backend in ("oracle", "bitwise", "ympp"):
            run = cluster_partitioned(partition, _quick_config(backend))
            results[backend] = (canonicalize(run.alice_labels),
                                canonicalize(run.bob_labels))
        assert results["oracle"] == results["bitwise"] == results["ympp"]

    def test_vertical_all_backends(self):
        partition = partition_vertical(Dataset.from_points(QUICK_POINTS), 1)
        results = {}
        byte_counts = {}
        for backend in ("oracle", "bitwise", "ympp"):
            run = cluster_partitioned(partition, _quick_config(backend))
            results[backend] = canonicalize(run.alice_labels)
            byte_counts[backend] = run.stats["total_bytes"]
        assert results["oracle"] == results["bitwise"] == results["ympp"]
        assert byte_counts["oracle"] < byte_counts["bitwise"]
        assert byte_counts["oracle"] < byte_counts["ympp"]

    def test_round_counts_reported(self):
        partition = partition_vertical(Dataset.from_points(QUICK_POINTS), 1)
        run = cluster_partitioned(partition, _quick_config("bitwise"))
        assert run.stats["rounds"] > 0


@pytest.mark.slow
class TestBackendsAgree:
    """The full matrix at realistic key sizes -- run with ``-m slow``."""

    @pytest.mark.parametrize("enhanced", [False, True])
    def test_horizontal_all_backends(self, enhanced):
        partition = HorizontalPartition(alice_points=tuple(POINTS[:3]),
                                        bob_points=tuple(POINTS[3:]))
        results = {}
        for backend in ("oracle", "bitwise", "ympp"):
            run = cluster_partitioned(partition, _config(backend),
                                      enhanced=enhanced)
            results[backend] = (canonicalize(run.alice_labels),
                                canonicalize(run.bob_labels))
        assert results["oracle"] == results["bitwise"] == results["ympp"]

    def test_vertical_all_backends(self):
        partition = partition_vertical(Dataset.from_points(POINTS), 1)
        results = {}
        for backend in ("oracle", "bitwise", "ympp"):
            run = cluster_partitioned(partition, _config(backend))
            results[backend] = canonicalize(run.alice_labels)
        assert results["oracle"] == results["bitwise"] == results["ympp"]

    def test_crypto_backends_cost_more_than_oracle(self):
        partition = partition_vertical(Dataset.from_points(POINTS), 1)
        byte_counts = {}
        for backend in ("oracle", "bitwise", "ympp"):
            run = cluster_partitioned(partition, _config(backend))
            byte_counts[backend] = run.stats["total_bytes"]
        assert byte_counts["oracle"] < byte_counts["bitwise"]
        assert byte_counts["oracle"] < byte_counts["ympp"]
