"""Failure injection: the library must fail loudly, never silently.

Covers protocol desynchronization, plaintext-space overflow, domain
violations, tampered ciphertexts, and configuration errors.
"""

import random

import pytest

from repro.core.config import ConfigError, ProtocolConfig
from repro.crypto.encoding import EncodingError, SignedEncoder
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import PaillierError
from repro.net.channel import Channel, ProtocolDesyncError
from repro.net.party import make_party_pair
from repro.net.serialization import SerializationError, serialize_message
from repro.smc.comparison import ComparisonError
from repro.smc.multiplication import MultiplicationError, secure_multiplication
from repro.smc.session import SmcConfig, SmcSession

KEYS = cached_paillier_keypair(256, 170)


class TestProtocolDesync:
    def test_out_of_order_receive_detected(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        alice.send("phase_one", 1)
        alice.send("phase_two", 2)
        with pytest.raises(ProtocolDesyncError, match="expected"):
            bob.receive("phase_two")

    def test_missing_message_detected(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        with pytest.raises(ProtocolDesyncError, match="empty"):
            bob.receive("never_sent")

    def test_double_receive_detected(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        alice.send("once", 1)
        bob.receive("once")
        with pytest.raises(ProtocolDesyncError):
            bob.receive("once")


class TestOverflowInjection:
    def test_multiplication_overflow(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        big = 1 << 140
        with pytest.raises(MultiplicationError, match="capacity"):
            secure_multiplication(alice, big, bob, big, 0, KEYS)

    def test_signed_encoder_overflow(self):
        encoder = SignedEncoder(KEYS.public_key.n)
        with pytest.raises(EncodingError, match="capacity"):
            encoder.encode(KEYS.public_key.n)

    def test_paillier_plaintext_overflow(self):
        with pytest.raises(PaillierError, match="outside"):
            KEYS.public_key.raw_encrypt(KEYS.public_key.n + 5, 3)


class TestTamperedData:
    def test_tampered_ciphertext_decrypts_to_garbage_not_crash(self):
        """Semi-honest model: tampering is out of scope, but the library
        must at least stay well-defined under bit flips."""
        cipher = KEYS.public_key.encrypt(42, random.Random(1))
        from repro.crypto.paillier import PaillierCiphertext
        tampered = PaillierCiphertext(KEYS.public_key, cipher.value ^ 1)
        result = KEYS.private_key.decrypt(tampered)
        assert 0 <= result < KEYS.public_key.n

    def test_truncated_wire_data(self):
        wire = serialize_message([1, 2, 3])
        from repro.net.serialization import deserialize_message
        with pytest.raises(SerializationError, match="truncated"):
            deserialize_message(wire[:-2])


class TestConfigurationErrors:
    def test_bad_eps(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(eps=-1.0, min_pts=3)

    def test_bad_comparison_backend(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        with pytest.raises(ComparisonError, match="unknown"):
            SmcSession(alice, bob,
                       SmcConfig(comparison="nonexistent", key_seed=171))

    def test_comparison_domain_violation(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=171))
        with pytest.raises(ComparisonError, match="outside"):
            session.compare_leq(alice, 100, bob, 5, lo=0, hi=50)

    def test_ympp_domain_too_large_for_keys(self):
        """YMPP with a domain too big for the RSA modulus must refuse."""
        from repro.crypto.keycache import cached_rsa_keypair
        from repro.smc.millionaires import YmppError, ympp_less_than
        small_keys = cached_rsa_keypair(64, 172)
        alice, bob = make_party_pair(Channel(), 1, 2)
        with pytest.raises(YmppError, match="too small"):
            ympp_less_than(alice, 1, bob, 2, 2 ** 62, small_keys)


class TestPartyProgramDeath:
    """An orchestrated party dying mid-protocol must surface a
    diagnosable error -- which peer, which pair, last frame -- never a
    hang (PR 5 shutdown-ordering fix; see repro.runtime.supervisor)."""

    def test_dying_party_program_diagnosed_not_hung(self):
        import time

        from repro.net.channel import Channel
        from repro.net.transport import (
            ThreadedTransport,
            TransportClosedError,
        )
        from repro.runtime.supervisor import (
            PartyProgramError,
            run_party_programs,
        )

        # Long transport timeout: before the shutdown-ordering fix the
        # surviving party would sit out these 30s; with it, the failing
        # program poisons the link immediately.
        channel = Channel(transport=ThreadedTransport(
            "alice", "bob", timeout_s=30.0))
        alice, bob = channel.left, channel.right

        def alice_program():
            alice.send("phase_one", 1)
            alice.receive("ack")
            raise ZeroDivisionError("alice's share computation blew up")

        def bob_program():
            bob.receive("phase_one")
            bob.send("ack", True)
            return bob.receive("phase_two")  # alice dies before sending

        started = time.perf_counter()
        with pytest.raises(PartyProgramError) as excinfo:
            run_party_programs(channel, {"alice": alice_program,
                                         "bob": bob_program})
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # fail-fast, not the 30s transport timeout

        error = excinfo.value
        assert "alice" in str(error)                # which party died
        assert "ZeroDivisionError" in str(error)    # why
        bob_error = error.failures.get("bob")
        assert isinstance(bob_error, TransportClosedError)
        message = str(bob_error)
        assert "alice" in message                   # which peer
        assert "'alice'<->'bob'" in message         # which pair
        assert "ack" in message                     # last frame delivered

    def test_clean_programs_return_results(self):
        from repro.net.channel import Channel
        from repro.net.transport import ThreadedTransport
        from repro.runtime.supervisor import run_party_programs

        channel = Channel(transport=ThreadedTransport("alice", "bob"))
        results = run_party_programs(channel, {
            "alice": lambda: (channel.left.send("m", 9) or "sent"),
            "bob": lambda: channel.right.receive("m"),
        })
        assert results == {"alice": "sent", "bob": 9}


class TestDeterminismUnderInjection:
    def test_protocol_failure_leaves_channel_accountable(self):
        """Bytes sent before a failure stay counted -- no accounting reset."""
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=173))
        baseline = channel.stats.total_bytes
        assert baseline > 0  # key exchange
        with pytest.raises(ComparisonError):
            session.compare_leq(alice, 999, bob, 1, lo=0, hi=10)
        assert channel.stats.total_bytes == baseline
