"""End-to-end integration: every protocol variant against its reference
semantics over the paper-motivated workload shapes.

Oracle-backend runs cover the full workload matrix cheaply; a bitwise
(real crypto) run per variant guards the cryptographic path.
"""

import random

import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.clustering.metrics import (
    adjusted_rand_index,
    noise_agreement,
)
from repro.clustering.union_density import union_density_dbscan
from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.generators import (
    concentric_rings,
    gaussian_blobs,
    grid_clusters,
    interleave_for_horizontal,
    two_moons,
    uniform_noise,
)
from repro.data.partitioning import (
    HorizontalPartition,
    partition_arbitrary,
    partition_vertical,
)
from repro.smc.session import SmcConfig


def _workloads():
    rng = random.Random(7)
    return {
        "blobs": gaussian_blobs(rng, centers=[(0, 0), (6, 6), (0, 6)],
                                points_per_blob=8, spread=0.4),
        "moons": two_moons(rng, points_per_moon=12, noise=0.1),
        "rings": concentric_rings(rng, points_per_ring=12, noise=0.08),
        "grid": grid_clusters(clusters_per_side=2, cluster_size=3),
        "noisy": (gaussian_blobs(rng, centers=[(0, 0)], points_per_blob=10,
                                 spread=0.3)
                  + uniform_noise(rng, count=6)),
    }


def _config(eps, min_pts, backend="oracle", **kwargs):
    return ProtocolConfig(
        eps=eps, min_pts=min_pts, scale=100,
        smc=SmcConfig(comparison=backend, key_seed=160, mask_sigma=8,
                      paillier_bits=128, rsa_bits=256),
        alice_seed=11, bob_seed=12, **kwargs)


WORKLOAD_PARAMS = {"blobs": (1.2, 4), "moons": (0.9, 3), "rings": (0.9, 3),
                   "grid": (0.5, 3), "noisy": (1.0, 4)}


class TestHorizontalAcrossWorkloads:
    @pytest.mark.parametrize("name", list(WORKLOAD_PARAMS))
    @pytest.mark.parametrize("enhanced", [False, True])
    def test_matches_union_density(self, name, enhanced):
        points = _workloads()[name]
        eps, min_pts = WORKLOAD_PARAMS[name]
        alice_pts, bob_pts = interleave_for_horizontal(
            points, random.Random(3))
        partition = HorizontalPartition(alice_points=tuple(alice_pts),
                                        bob_points=tuple(bob_pts))
        config = _config(eps, min_pts)
        run = cluster_partitioned(partition, config, enhanced=enhanced)
        ref_alice = union_density_dbscan(alice_pts, bob_pts,
                                         config.eps_squared, min_pts)
        ref_bob = union_density_dbscan(bob_pts, alice_pts,
                                       config.eps_squared, min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(ref_alice.labels.as_tuple())
        assert canonicalize(run.bob_labels) \
            == canonicalize(ref_bob.labels.as_tuple())


class TestVerticalAcrossWorkloads:
    @pytest.mark.parametrize("name", list(WORKLOAD_PARAMS))
    def test_matches_centralized(self, name):
        points = _workloads()[name]
        eps, min_pts = WORKLOAD_PARAMS[name]
        dataset = Dataset.from_points(points)
        partition = partition_vertical(dataset, 1)
        config = _config(eps, min_pts)
        run = cluster_partitioned(partition, config)
        reference = dbscan(points, config.eps_squared, min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.as_tuple())


class TestArbitraryAcrossWorkloads:
    @pytest.mark.parametrize("name", ["blobs", "grid"])
    @pytest.mark.parametrize("shared_fraction", [0.0, 0.5, 1.0])
    def test_matches_centralized(self, name, shared_fraction):
        points = _workloads()[name]
        eps, min_pts = WORKLOAD_PARAMS[name]
        dataset = Dataset.from_points(points)
        partition = partition_arbitrary(dataset, random.Random(5),
                                        shared_fraction=shared_fraction)
        config = _config(eps, min_pts)
        run = cluster_partitioned(partition, config)
        reference = dbscan(points, config.eps_squared, min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.as_tuple())


class TestHorizontalVsCentralizedDivergence:
    """E5b: the per-party semantics is close to centralized DBSCAN on
    well-separated data but may split peer-bridged clusters."""

    def test_separated_clusters_agree(self):
        points = grid_clusters(clusters_per_side=2, cluster_size=3,
                               cluster_gap=8.0)
        alice_pts, bob_pts = interleave_for_horizontal(
            points, random.Random(1))
        config = _config(0.5, 3)
        run = cluster_partitioned(
            HorizontalPartition(alice_points=tuple(alice_pts),
                                bob_points=tuple(bob_pts)), config)
        joint = dbscan(alice_pts + bob_pts, config.eps_squared, 3)
        joint_alice = joint.as_tuple()[:len(alice_pts)]
        ari = adjusted_rand_index(run.alice_labels, joint_alice)
        assert ari == pytest.approx(1.0)

    def test_bridged_clusters_may_split(self):
        """Alice's two dense groups joined only by Bob's bridge: the
        horizontal protocol keeps them separate, centralized merges."""
        left = [(i, j) for i in range(3) for j in range(3)]
        right = [(i + 20, j) for i in range(3) for j in range(3)]
        bridge = [(i, 1) for i in range(3, 20)]
        config = _config(1.5, 3, )
        run = cluster_partitioned(
            HorizontalPartition(alice_points=tuple(left + right),
                                bob_points=tuple(bridge)),
            ProtocolConfig(eps=1.5, min_pts=3, scale=1,
                           smc=SmcConfig(comparison="oracle", key_seed=161),
                           alice_seed=1, bob_seed=2))
        alice_labels = run.alice_labels
        assert alice_labels[0] != alice_labels[len(left)]
        joint = dbscan(left + right + bridge, 2, 3)  # scale=1, eps^2=2
        assert joint.as_tuple()[0] == joint.as_tuple()[len(left)]


class TestRealCryptoEndToEnd:
    """One full bitwise-backend run per variant on a small workload."""

    def _small_points(self):
        return [(0, 0), (0, 10), (10, 0), (300, 300), (300, 310), (310, 300)]

    def test_horizontal_bitwise(self):
        points = self._small_points()
        partition = HorizontalPartition(alice_points=tuple(points[:3]),
                                        bob_points=tuple(points[3:]))
        config = ProtocolConfig(
            eps=2.0, min_pts=3, scale=10,
            smc=SmcConfig(comparison="bitwise", key_seed=162, mask_sigma=8,
                          paillier_bits=128),
            alice_seed=13, bob_seed=14)
        run = cluster_partitioned(partition, config)
        ref = union_density_dbscan(points[:3], points[3:],
                                   config.eps_squared, 3)
        assert canonicalize(run.alice_labels) \
            == canonicalize(ref.labels.as_tuple())
        assert run.stats["total_bytes"] > 1000

    def test_enhanced_bitwise(self):
        points = self._small_points()
        partition = HorizontalPartition(alice_points=tuple(points[:3]),
                                        bob_points=tuple(points[3:]))
        config = ProtocolConfig(
            eps=2.0, min_pts=4, scale=10,
            smc=SmcConfig(comparison="bitwise", key_seed=162, mask_sigma=8,
                          paillier_bits=128),
            alice_seed=13, bob_seed=14)
        run = cluster_partitioned(partition, config, enhanced=True)
        base = cluster_partitioned(partition, config)
        assert canonicalize(run.alice_labels) \
            == canonicalize(base.alice_labels)

    def test_vertical_bitwise(self):
        points = self._small_points()
        partition = partition_vertical(Dataset.from_points(points), 1)
        config = ProtocolConfig(
            eps=2.0, min_pts=3, scale=10,
            smc=SmcConfig(comparison="bitwise", key_seed=162, mask_sigma=8,
                          paillier_bits=128),
            alice_seed=13, bob_seed=14)
        run = cluster_partitioned(partition, config)
        ref = dbscan(points, config.eps_squared, 3)
        assert canonicalize(run.alice_labels) \
            == canonicalize(ref.as_tuple())

    def test_ympp_backend_vertical(self):
        """The faithful YMPP backend on a tiny instance (domain kept small
        through a coarse grid and tight coordinates)."""
        points = [(0, 0), (1, 0), (0, 1), (3, 3)]
        partition = partition_vertical(Dataset.from_points(points), 1)
        config = ProtocolConfig(
            eps=1.5, min_pts=2, scale=1,
            smc=SmcConfig(comparison="ympp", key_seed=163, mask_sigma=2,
                          paillier_bits=128, rsa_bits=256),
            alice_seed=15, bob_seed=16)
        run = cluster_partitioned(partition, config)
        ref = dbscan(points, config.eps_squared, 2)
        assert canonicalize(run.alice_labels) \
            == canonicalize(ref.as_tuple())


class TestOutputQualityMetrics:
    def test_noise_agreement_on_clean_data(self):
        points = grid_clusters(cluster_gap=10.0)
        config = _config(0.5, 3)
        dataset = Dataset.from_points(points)
        run = cluster_partitioned(partition_vertical(dataset, 1), config)
        reference = dbscan(points, config.eps_squared, 3)
        assert noise_agreement(run.alice_labels, reference.as_tuple()) == 1.0
