"""End-to-end protocol runs in 3-D and 4-D.

The paper's records have m attributes; most tests use m = 2 for speed,
so this module pins the m-generic paths (mask vectors, scalar products
with m+2 entries, partial sums over column subsets).
"""

import random

import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.clustering.union_density import union_density_dbscan
from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.generators import gaussian_blobs, interleave_for_horizontal
from repro.data.partitioning import (
    HorizontalPartition,
    partition_arbitrary,
    partition_vertical,
)
from repro.smc.session import SmcConfig


def _points(dimensions: int) -> list[tuple[int, ...]]:
    centers = [tuple(0.0 for _ in range(dimensions)),
               tuple(6.0 for _ in range(dimensions))]
    return gaussian_blobs(random.Random(4), centers=centers,
                          points_per_blob=6, spread=0.4)


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.5, min_pts=3, scale=100,
                    smc=SmcConfig(comparison=backend, key_seed=260,
                                  mask_sigma=8),
                    alice_seed=1, bob_seed=2)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


class TestHigherDimensionalRuns:
    @pytest.mark.parametrize("dimensions", [3, 4])
    @pytest.mark.parametrize("enhanced", [False, True])
    def test_horizontal(self, dimensions, enhanced):
        points = _points(dimensions)
        alice_pts, bob_pts = interleave_for_horizontal(points,
                                                       random.Random(2))
        partition = HorizontalPartition(alice_points=tuple(alice_pts),
                                        bob_points=tuple(bob_pts))
        config = _config()
        run = cluster_partitioned(partition, config, enhanced=enhanced)
        reference = union_density_dbscan(alice_pts, bob_pts,
                                         config.eps_squared, config.min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.labels.as_tuple())

    @pytest.mark.parametrize("dimensions", [3, 4])
    @pytest.mark.parametrize("alice_attributes", [1, 2])
    def test_vertical(self, dimensions, alice_attributes):
        points = _points(dimensions)
        partition = partition_vertical(Dataset.from_points(points),
                                       alice_attributes)
        config = _config()
        run = cluster_partitioned(partition, config)
        reference = dbscan(points, config.eps_squared, config.min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.as_tuple())

    @pytest.mark.parametrize("dimensions", [3, 4])
    def test_arbitrary(self, dimensions):
        points = _points(dimensions)
        partition = partition_arbitrary(Dataset.from_points(points),
                                        random.Random(8))
        config = _config()
        run = cluster_partitioned(partition, config)
        reference = dbscan(points, config.eps_squared, config.min_pts)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.as_tuple())

    def test_three_dimensional_with_crypto(self):
        """One 3-D run through the real cryptographic stack."""
        points = [(0, 0, 0), (10, 0, 0), (0, 10, 0), (300, 300, 300)]
        partition = HorizontalPartition(alice_points=tuple(points[:2]),
                                        bob_points=tuple(points[2:]))
        config = _config(backend="bitwise", eps=2.0, min_pts=3, scale=10)
        run = cluster_partitioned(partition, config, enhanced=True)
        reference = union_density_dbscan(points[:2], points[2:],
                                         config.eps_squared, 3)
        assert canonicalize(run.alice_labels) \
            == canonicalize(reference.labels.as_tuple())
