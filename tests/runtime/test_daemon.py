"""Resident daemon runtime: session multiplexing over persistent links.

The acceptance bar of the daemon runtime: a k-daemon mesh sustaining
many *concurrent* clustering sessions over one TCP connection per pair
must produce, for **every** session, labels, a disclosure ledger,
per-pair transcripts, and comparison counts bit-identical to the
single-session runtimes on the same seeds.  The fast paths (spec
validation) run unmarked; everything touching real sockets carries the
``sockets`` marker like the rest of the runtime suite.
"""

import random
import subprocess
import sys

import pytest

from repro.core.config import ProtocolConfig
from repro.data.generators import gaussian_blobs
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh
from repro.net.transcript import transcript_digest
from repro.runtime.client import (
    DaemonFleet,
    SessionClientError,
    run_via_daemons,
)
from repro.runtime.daemon import DaemonError, MeshSpec, mesh_digest
from repro.runtime.manifest import pair_key
from repro.runtime.orchestrator import build_manifest
from repro.smc.session import SmcConfig


def workload(parties: int, per_party: int = 2) -> dict[str, list]:
    points = gaussian_blobs(random.Random(5),
                            centers=[(0.0, 0.0), (4.0, 4.0)],
                            points_per_blob=(parties * per_party + 1) // 2,
                            spread=0.5, scale=10)
    return {f"p{index}": points[index * per_party:(index + 1) * per_party]
            for index in range(parties)}


def make_config(**overrides) -> ProtocolConfig:
    smc = SmcConfig(paillier_bits=128, comparison="bitwise", key_seed=77,
                    mask_sigma=8)
    return ProtocolConfig(eps=1.0, min_pts=3, scale=10, smc=smc,
                          **overrides)


def reference_run(by_party, config, seeds, rng_namespace=None):
    mesh = PartyMesh(list(by_party), config.smc, seeds=seeds,
                     rng_namespace=rng_namespace)
    result = run_multiparty_horizontal_dbscan(by_party, config,
                                              seeds=seeds, mesh=mesh)
    digests = {pair_key(*pair): transcript_digest(transcript)
               for pair, transcript in mesh.pair_transcripts().items()}
    return result, digests


def assert_matches_reference(run, reference, digests) -> None:
    assert run.result.labels_by_party == reference.labels_by_party
    assert run.result.ledger.events == reference.ledger.events
    assert run.result.comparisons == reference.comparisons
    assert run.transcript_digests == digests


def spec_ports(names) -> dict[str, int]:
    names = list(names)
    return {pair_key(a, b): 0
            for index, a in enumerate(names)
            for b in names[index + 1:]}


class TestMeshSpec:
    def test_roundtrip_preserves_digest(self):
        spec = MeshSpec(names=("a", "b", "c"),
                        ports={"a": 9001, "b": 9002, "c": 9003},
                        net_delay_s=0.001, engine_workers=2)
        clone = MeshSpec.from_json(spec.to_json())
        assert clone == spec
        assert mesh_digest(clone) == mesh_digest(spec)

    def test_digest_binds_every_link_property(self):
        spec = MeshSpec(names=("a", "b"), ports={"a": 9001, "b": 9002})
        tweaked = MeshSpec(names=("a", "b"),
                           ports={"a": 9001, "b": 9002},
                           net_delay_s=0.5)
        assert mesh_digest(tweaked) != mesh_digest(spec)

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(names=("a",), ports={"a": 1}), "two parties"),
        (dict(names=("a", "a"), ports={"a": 1}), "duplicate"),
        (dict(names=("a", "b"), ports={"a": 1}), "cover exactly"),
        (dict(names=("a", "b"), ports={"a": 1, "b": 2}, timeout_s=0),
         "timeout_s"),
        (dict(names=("a", "b"), ports={"a": 1, "b": 2}, net_delay_s=-1),
         "net_delay_s"),
        (dict(names=("a", "b"), ports={"a": 1, "b": 2},
              engine_workers=0), "engine_workers"),
    ])
    def test_rejects_malformed_specs(self, kwargs, needle):
        with pytest.raises(DaemonError, match=needle):
            MeshSpec(**kwargs)

    def test_slot_order_is_the_pair_orientation(self):
        spec = MeshSpec(names=("zeta", "alpha"),
                        ports={"zeta": 1, "alpha": 2})
        assert spec.ordered_pair("alpha", "zeta") == ("zeta", "alpha")
        assert spec.peers_of("zeta") == ["alpha"]


@pytest.mark.sockets
class TestDaemonEquivalence:
    def test_single_session_bit_identical_to_threaded_runtime(self):
        """One session through resident daemons == the in-process mesh,
        on every protocol observable."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                run = run_via_daemons(by_party, config, seeds,
                                      client=client, timeout=120)
        assert_matches_reference(run, reference, digests)
        assert set(run.reports) == set(by_party)
        info = run.reports["p0"].runtime_info
        assert info["runtime"] == "daemon"
        assert info["session_index"] == 0
        assert info["warm_start"] is False

    def test_eight_concurrent_sessions_all_bit_identical(self):
        """The acceptance test: 8 sessions in flight at once over the
        same three pair connections (with simulated link latency so the
        interleaving is real), every one bit-identical to the
        single-session reference."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        ports = spec_ports(by_party)
        with DaemonFleet(list(by_party), net_delay_s=0.001) as fleet:
            with fleet.client() as client:
                handles = [
                    client.submit(
                        build_manifest(by_party, config, seeds,
                                       session_id=f"conc-{index:02d}",
                                       ports=ports),
                        by_party)
                    for index in range(8)]
                runs = [handle.result(180) for handle in handles]
        for run in runs:
            assert_matches_reference(run, reference, digests)
        indices = sorted(run.reports["p0"].runtime_info["session_index"]
                         for run in runs)
        assert indices == list(range(8))

    def test_warm_start_amortization_is_reported(self):
        """Session 0 cold-starts the mesh; every later session reports
        ``warm_start`` and reuses the daemon's engine (cumulative job
        counts grow monotonically across sessions)."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                first = run_via_daemons(by_party, config, seeds,
                                        client=client,
                                        session_id="warm-0", timeout=120)
                second = run_via_daemons(by_party, config, seeds,
                                         client=client,
                                         session_id="warm-1", timeout=120)
        first_info = first.reports["p0"].runtime_info
        second_info = second.reports["p0"].runtime_info
        assert first_info["warm_start"] is False
        assert second_info["warm_start"] is True
        assert second_info["session_index"] == first_info["session_index"] + 1
        assert (second_info["engine"]["jobs"]
                > first_info["engine"]["jobs"])
        assert second_info["pool"]["consumed"] > 0
        assert second_info["daemon_setup_seconds"] >= 0
        assert second_info["setup_seconds"] >= 0

    def test_interleaved_namespaced_sessions_match_serial_references(self):
        """Cross-session isolation: sessions with distinct RNG
        namespaces interleaved on one mesh each match their *own*
        namespace-matched serial reference -- no coin stream leaks
        between concurrent sessions."""
        by_party = workload(3)
        config = make_config()
        jobs = [("iso-a", [41, 42, 43]), ("iso-b", [51, 52, 53]),
                ("iso-c", [61, 62, 63])]
        references = {
            namespace: reference_run(by_party, config, seeds,
                                     rng_namespace=namespace)
            for namespace, seeds in jobs}
        ports = spec_ports(by_party)
        with DaemonFleet(list(by_party), net_delay_s=0.001) as fleet:
            with fleet.client() as client:
                handles = {
                    namespace: client.submit(
                        build_manifest(by_party, config, seeds,
                                       session_id=namespace, ports=ports,
                                       rng_namespace=namespace),
                        by_party)
                    for namespace, seeds in jobs}
                runs = {namespace: handle.result(180)
                        for namespace, handle in handles.items()}
        for namespace, _ in jobs:
            reference, digests = references[namespace]
            assert_matches_reference(runs[namespace], reference, digests)
        # The namespaces actually diverge the wire traffic: different
        # coins, different transcripts.
        digest_sets = [frozenset(references[ns][1].items())
                       for ns, _ in jobs]
        assert len(set(digest_sets)) == len(jobs)


@pytest.mark.sockets
class TestDaemonRejections:
    def test_client_rejects_wrong_partition_cover(self):
        by_party = workload(2)
        seeds = [31, 32]
        config = make_config()
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                manifest = build_manifest(by_party, config, seeds,
                                          ports=spec_ports(by_party))
                with pytest.raises(SessionClientError,
                                   match="cover exactly"):
                    client.submit(manifest, {"p0": by_party["p0"]})

    def test_daemon_refuses_mismatched_manifest_names(self):
        """A manifest naming parties the mesh does not have is refused
        by the daemons and surfaces as a failed session, not a hang."""
        by_party = workload(2)
        seeds = [31, 32]
        config = make_config()
        rogue = {"p0": by_party["p0"], "rogue": by_party["p1"]}
        manifest = build_manifest(rogue, config, seeds,
                                  ports=spec_ports(rogue))
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                with pytest.raises(SessionClientError,
                                   match="do not match the mesh"):
                    client.submit(manifest, rogue)

    def test_duplicate_in_flight_session_id_is_rejected(self):
        by_party = workload(2)
        seeds = [31, 32]
        config = make_config()
        ports = spec_ports(by_party)
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                first = client.submit(
                    build_manifest(by_party, config, seeds,
                                   session_id="dup", ports=ports),
                    by_party)
                with pytest.raises(SessionClientError,
                                   match="already in flight"):
                    client.submit(
                        build_manifest(by_party, config, seeds,
                                       session_id="dup", ports=ports),
                        by_party)
                first.result(120)


@pytest.mark.sockets
class TestDaemonCli:
    def test_submit_spawn_runs_sessions_against_subprocess_daemons(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--spawn",
             "--parties", "2", "--sessions", "2", "--points", "6",
             "--key-bits", "128", "--verify", "--shutdown"],
            capture_output=True, text=True, timeout=240)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("labels=") == 2
        assert "MISMATCH" not in proc.stdout
        assert "warm_start=True" in proc.stdout


@pytest.mark.sockets
class TestDaemonScaleOut:
    def test_sixty_four_concurrent_sessions_with_flat_thread_count(self):
        """The PR-9 acceptance bar: 64 sessions in flight on one 3-party
        mesh, every one bit-identical to the single-session reference,
        with the process's thread count independent of session count
        (the restartable pass model runs sessions as coroutines, not
        threads)."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        ports = spec_ports(by_party)
        with DaemonFleet(list(by_party), net_delay_s=0.001,
                         timeout_s=120.0) as fleet:
            with fleet.client() as client:
                handles = [
                    client.submit(
                        build_manifest(by_party, config, seeds,
                                       session_id=f"scale-{index:02d}",
                                       ports=ports),
                        by_party)
                    for index in range(64)]
                runs = [handle.result(600) for handle in handles]
        infos = [run.reports["p0"].runtime_info for run in runs]
        for run in runs:
            assert_matches_reference(run, reference, digests)
        assert sorted(info["session_index"] for info in infos) \
            == list(range(64))
        assert all(info["pass_model"] == "async-restartable"
                   for info in infos)
        # Thread flatness: reports are built at every stage of the
        # burst (1 in flight .. 64 in flight), so a per-session thread
        # would show up as a spread of dozens here.
        threads = [info["thread_count"] for info in infos]
        assert max(threads) - min(threads) <= 4, threads
        # The coroutines genuinely parked mid-query (frames not yet
        # arrived), exercising the restartable path.
        assert sum(info["restarts"] for info in infos) > 0

    def test_submit_wave_isolates_coin_streams(self):
        """``submit_wave`` fans one manifest out under derived
        namespaces: each copy matches its namespace-matched serial
        reference, and the copies' transcripts differ."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        manifest = build_manifest(by_party, config, seeds,
                                  session_id="wave",
                                  ports=spec_ports(by_party))
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                handles = client.submit_wave(manifest, by_party, 3)
                runs = [handle.result(240) for handle in handles]
        assert [run.manifest.session_id for run in runs] \
            == ["wave-w00", "wave-w01", "wave-w02"]
        digest_sets = set()
        for run in runs:
            reference, digests = reference_run(
                by_party, config, seeds,
                rng_namespace=run.manifest.rng_namespace)
            assert_matches_reference(run, reference, digests)
            digest_sets.add(frozenset(digests.items()))
        assert len(digest_sets) == 3


@pytest.mark.sockets
class TestDaemonDrain:
    def test_drain_finishes_in_flight_and_rejects_new_sessions(self):
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        ports = spec_ports(by_party)
        with DaemonFleet(list(by_party), net_delay_s=0.002) as fleet:
            with fleet.client() as client:
                running = client.submit(
                    build_manifest(by_party, config, seeds,
                                   session_id="drain-inflight",
                                   ports=ports),
                    by_party)
                client.shutdown_mesh(drain=True)
                late = client.submit(
                    build_manifest(by_party, config, seeds,
                                   session_id="drain-late", ports=ports),
                    by_party)
                with pytest.raises(SessionClientError,
                                   match=r"rejected \(draining\)"):
                    late.result(120)
                run = running.result(240)
        # The drained session is a full-fidelity session, not a rush.
        assert_matches_reference(run, reference, digests)

    def test_hard_shutdown_still_tears_down(self):
        by_party = workload(2)
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                client.shutdown_mesh()
            for member in fleet._members:
                member.thread.join(10)
                assert not member.thread.is_alive()


@pytest.mark.sockets
class TestRandomnessServiceAcrossSessions:
    def test_later_sessions_start_warm_from_learned_demand(self):
        """Session 0 misses its way through (cold pools, no demand
        model); once released, the service prefills session 1's pools
        to the observed demand -- hit rate goes from 0 to 100%."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        with DaemonFleet(list(by_party)) as fleet:
            with fleet.client() as client:
                runs = [run_via_daemons(by_party, config, seeds,
                                        client=client,
                                        session_id=f"svc-{index}",
                                        timeout=120)
                        for index in range(3)]
        leases = [run.reports["p0"].runtime_info["randomness"]["lease"]
                  for run in runs]
        assert leases[0]["consumed"] > 0
        assert leases[0]["misses"] == leases[0]["consumed"]
        assert leases[0]["prefilled"] == 0
        for lease in leases[1:]:
            assert lease["misses"] == 0
            assert lease["hits"] == lease["consumed"] > 0
            assert lease["prefilled"] >= lease["consumed"]
        service = runs[-1].reports["p0"].runtime_info["randomness"]
        assert service["service"]["sessions_served"] >= 2
        assert service["service"]["factors_prefilled"] > 0
