"""Sealed keys and authenticated links: the PR-8 threat model, tested.

Two trust-boundary changes land together and both get their rejection
matrix here: per-frame HMAC link authentication (flipped MAC bytes,
truncated MACs, cross-session replay, PSK mismatch on dial and accept,
across the sync TCP path and the daemon's asyncio path) and sealed
per-party key material (a party process holds a usable private key for
its own slot ONLY; any code path touching a peer's private raises
``PublicOnlyKeyError``).  The equivalence bar stays bit-exact: the same
workload with auth on and auth off must reproduce the in-process mesh
on every protocol observable.
"""

import random
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolConfig
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.sealed import (
    PublicOnlyKeyError,
    is_sealed,
    paillier_public_digest,
    seal_paillier_keypair,
    seal_rsa_keypair,
)
from repro.crypto.rsa import generate_rsa_keypair
from repro.data.generators import gaussian_blobs
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh
from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_HELLO,
    FRAME_MESSAGE,
    MAC_BYTES,
    FrameAuthenticationError,
    FrameAuthenticator,
    FramedConnection,
    FramingError,
    encode_frame,
)
from repro.net.transcript import transcript_digest
from repro.runtime.client import (
    DaemonFleet,
    SessionClient,
    SessionClientError,
    run_via_daemons,
)
from repro.runtime.daemon import DaemonError, MeshSpec, mesh_digest
from repro.runtime.failure import CAUSE_AUTH_FAILED, FATAL
from repro.runtime.handshake import (
    PROTOCOL_VERSION,
    ROLE_CLIENT,
    HandshakeError,
    Hello,
)
from repro.runtime.manifest import ManifestError, pair_key
from repro.runtime.orchestrator import (
    OrchestrationError,
    build_manifest,
    orchestrate_run,
)
from repro.runtime.party import PartyProcess, PartyRuntimeError, classify_exception
from repro.smc.session import SealedKeyProvider, SmcConfig, SmcSession

PSK = "tier1 shared secret"


def workload(parties: int, per_party: int = 2) -> dict[str, list]:
    points = gaussian_blobs(random.Random(5),
                            centers=[(0.0, 0.0), (4.0, 4.0)],
                            points_per_blob=(parties * per_party + 1) // 2,
                            spread=0.5, scale=10)
    return {f"p{index}": points[index * per_party:(index + 1) * per_party]
            for index in range(parties)}


def make_config(**overrides) -> ProtocolConfig:
    smc = SmcConfig(paillier_bits=128, comparison="bitwise", key_seed=77,
                    mask_sigma=8)
    return ProtocolConfig(eps=1.0, min_pts=3, scale=10, smc=smc,
                          **overrides)


def reference_run(by_party, config, seeds):
    mesh = PartyMesh(list(by_party), config.smc, seeds=seeds)
    result = run_multiparty_horizontal_dbscan(by_party, config,
                                              seeds=seeds, mesh=mesh)
    digests = {pair_key(*pair): transcript_digest(transcript)
               for pair, transcript in mesh.pair_transcripts().items()}
    return result, digests


def assert_matches_reference(run, reference, digests) -> None:
    assert run.result.labels_by_party == reference.labels_by_party
    assert run.result.ledger.events == reference.ledger.events
    assert run.result.comparisons == reference.comparisons
    assert run.transcript_digests == digests


# -- the MAC itself ---------------------------------------------------------

class TestFrameAuthenticator:
    def test_seal_open_roundtrip(self):
        auth = FrameAuthenticator(PSK, "session-a")
        sealed = auth.seal(FRAME_MESSAGE, b"payload")
        assert len(sealed) == len(b"payload") + MAC_BYTES
        assert auth.open(FRAME_MESSAGE, sealed) == b"payload"

    def test_flipped_mac_byte_rejected(self):
        auth = FrameAuthenticator(PSK, "session-a")
        sealed = bytearray(auth.seal(FRAME_MESSAGE, b"payload"))
        sealed[-1] ^= 0x01
        with pytest.raises(FrameAuthenticationError):
            auth.open(FRAME_MESSAGE, bytes(sealed))

    def test_flipped_payload_byte_rejected(self):
        auth = FrameAuthenticator(PSK, "session-a")
        sealed = bytearray(auth.seal(FRAME_MESSAGE, b"payload"))
        sealed[0] ^= 0x01
        with pytest.raises(FrameAuthenticationError):
            auth.open(FRAME_MESSAGE, bytes(sealed))

    def test_truncated_mac_rejected(self):
        auth = FrameAuthenticator(PSK, "session-a")
        sealed = auth.seal(FRAME_MESSAGE, b"payload")
        with pytest.raises(FrameAuthenticationError):
            auth.open(FRAME_MESSAGE, sealed[:-1])
        with pytest.raises(FrameAuthenticationError):
            auth.open(FRAME_MESSAGE, sealed[:MAC_BYTES - 1])

    def test_kind_confusion_rejected(self):
        """The MAC binds the frame kind: a message frame replayed as a
        control frame must not verify."""
        auth = FrameAuthenticator(PSK, "session-a")
        sealed = auth.seal(FRAME_MESSAGE, b"payload")
        with pytest.raises(FrameAuthenticationError):
            auth.open(FRAME_CONTROL, sealed)

    def test_cross_session_replay_rejected(self):
        """The MAC context is the session id (parties) or the mesh
        digest (daemons): a frame captured from another session under
        the *same* PSK fails verification."""
        sealed = FrameAuthenticator(PSK, "session-a").seal(
            FRAME_MESSAGE, b"payload")
        with pytest.raises(FrameAuthenticationError):
            FrameAuthenticator(PSK, "session-b").open(
                FRAME_MESSAGE, sealed)

    def test_wrong_psk_rejected(self):
        sealed = FrameAuthenticator(PSK, "session-a").seal(
            FRAME_MESSAGE, b"payload")
        with pytest.raises(FrameAuthenticationError):
            FrameAuthenticator("other secret", "session-a").open(
                FRAME_MESSAGE, sealed)

    def test_empty_psk_refused(self):
        with pytest.raises(FramingError, match="non-empty"):
            FrameAuthenticator("", "session-a")


# -- the sync TCP path ------------------------------------------------------

def connected_pair(left_auth=None, right_auth=None):
    left_sock, right_sock = socket.socketpair()
    return (FramedConnection(left_sock, timeout_s=2.0, name="left",
                             authenticator=left_auth),
            FramedConnection(right_sock, timeout_s=2.0, name="right",
                             authenticator=right_auth))


class TestAuthenticatedConnection:
    def test_roundtrip_with_matching_psk(self):
        auth = FrameAuthenticator(PSK, "s")
        left, right = connected_pair(auth, FrameAuthenticator(PSK, "s"))
        left.write_frame(FRAME_MESSAGE, b"hello")
        assert right.read_frame() == (FRAME_MESSAGE, b"hello")
        left.close()
        right.close()

    def test_psk_mismatch_rejected_on_read(self):
        left, right = connected_pair(FrameAuthenticator(PSK, "s"),
                                     FrameAuthenticator("wrong", "s"))
        left.write_frame(FRAME_MESSAGE, b"hello")
        with pytest.raises(FrameAuthenticationError):
            right.read_frame()
        left.close()
        right.close()

    def test_unauthenticated_peer_rejected(self):
        """A peer that doesn't seal at all (no PSK configured) must be
        refused by an authenticating endpoint."""
        left, right = connected_pair(None, FrameAuthenticator(PSK, "s"))
        left.write_frame(FRAME_MESSAGE, b"hello")
        with pytest.raises(FrameAuthenticationError):
            right.read_frame()
        left.close()
        right.close()

    def test_wire_tamper_rejected(self):
        """A bit flipped in transit (not by the sender) is caught."""
        auth = FrameAuthenticator(PSK, "s")
        left_sock, right_sock = socket.socketpair()
        right = FramedConnection(right_sock, timeout_s=2.0, name="right",
                                 authenticator=auth)
        frame = bytearray(encode_frame(
            FRAME_MESSAGE, auth.seal(FRAME_MESSAGE, b"payload")))
        frame[-5] ^= 0x40  # inside the sealed payload
        left_sock.sendall(bytes(frame))
        with pytest.raises(FrameAuthenticationError):
            right.read_frame()
        left_sock.close()
        right.close()


# -- classification: auth failures are fatal, never retried -----------------

class TestAuthFailureClassification:
    def test_classified_fatal(self):
        cause, classification = classify_exception(
            FrameAuthenticationError("MAC mismatch"))
        assert cause == CAUSE_AUTH_FAILED
        assert classification == FATAL

    def test_outranks_the_framing_retry_path(self):
        """FrameAuthenticationError subclasses FramingError; the
        classifier must see the subclass first, or wrong-PSK runs would
        burn the whole recovery budget re-failing identically."""
        cause, _ = classify_exception(FramingError("torn frame"))
        assert cause != CAUSE_AUTH_FAILED


# -- sealed key material ----------------------------------------------------

class TestSealedKeys:
    def test_provider_seals_every_peer_slot(self):
        config = SmcConfig(paillier_bits=128, comparison="bitwise",
                           key_seed=77)
        provider = SealedKeyProvider(config, "p1")
        names = ["p0", "p1", "p2"]
        contexts = {name: provider.context_for(name, slot)
                    for slot, name in enumerate(names)}
        assert not is_sealed(contexts["p1"].paillier.private_key)
        for peer in ("p0", "p2"):
            assert is_sealed(contexts[peer].paillier.private_key)

    def test_own_slot_matches_the_manifest_digest(self):
        """The one keypair a party derives is exactly the one the
        orchestrator pinned for its slot."""
        by_party = workload(3)
        config = make_config()
        manifest = build_manifest(by_party, config, [1, 2, 3])
        assert set(manifest.key_digests) == set(by_party)
        for slot, name in enumerate(manifest.names):
            keypair = cached_paillier_keypair(
                config.smc.paillier_bits,
                100 * config.smc.key_seed + slot)
            assert (paillier_public_digest(keypair.public_key)
                    == manifest.key_digests[name])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 64))
    def test_sealed_paillier_private_raises_on_any_decrypt(self, value):
        keypair = cached_paillier_keypair(128, 991)
        sealed = seal_paillier_keypair(keypair.public_key, "peer")
        assert is_sealed(sealed.private_key)
        with pytest.raises(PublicOnlyKeyError, match="peer"):
            sealed.private_key.decrypt(value)

    def test_sealed_rsa_private_raises_on_sign_and_secret_access(self):
        keypair = generate_rsa_keypair(bits=512, rng=random.Random(7))
        sealed = seal_rsa_keypair(keypair.public_key, "peer")
        with pytest.raises(PublicOnlyKeyError):
            sealed.private_key.decrypt(12345)
        with pytest.raises(PublicOnlyKeyError):
            _ = sealed.private_key.d

    def test_wire_adoption_pins_the_manifest_digest(self):
        from repro.smc.session import (
            SessionError,
            sealed_peer_context,
        )

        keypair = cached_paillier_keypair(128, 992)
        good_digest = paillier_public_digest(keypair.public_key)
        announced = [keypair.public_key.n, keypair.public_key.g]

        context = sealed_peer_context("peer", expected_digest=good_digest)
        SmcSession._adopt_peer_public("peer", context, announced)
        assert context.paillier.public_key.n == keypair.public_key.n
        assert is_sealed(context.paillier.private_key)

        pinned = sealed_peer_context("peer", expected_digest="0" * 64)
        with pytest.raises(SessionError, match="pinned digest"):
            SmcSession._adopt_peer_public("peer", pinned, announced)

        with pytest.raises(SessionError, match="malformed"):
            SmcSession._adopt_peer_public(
                "peer", sealed_peer_context("peer"), [0, 0])

    def test_party_process_refuses_auth_manifest_without_psk(self):
        by_party = workload(2)
        manifest = build_manifest(by_party, make_config(), [1, 2],
                                  link_auth=True)
        with pytest.raises(PartyRuntimeError, match="REPRO_PSK"):
            PartyProcess(manifest, "p0", by_party["p0"])

    def test_manifest_key_digests_must_cover_the_parties(self):
        import dataclasses

        by_party = workload(2)
        manifest = build_manifest(by_party, make_config(), [1, 2])
        with pytest.raises(ManifestError, match="key_digests"):
            dataclasses.replace(manifest,
                                key_digests={"p0": "x", "stranger": "y"})


# -- orchestrated runs: auth on == auth off == in-process -------------------

@pytest.mark.sockets
class TestOrchestratedLinkAuth:
    def test_three_party_run_with_auth_on_is_bit_identical(self):
        by_party = workload(3)
        seeds = [21, 22, 23]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        run = orchestrate_run(by_party, config, seeds=seeds, psk=PSK,
                              deadline_s=180.0)
        assert run.manifest.link_auth is True
        assert set(run.manifest.key_digests) == set(by_party)
        assert_matches_reference(run, reference, digests)
        assert run.result.stats == reference.stats

    def test_psk_mismatch_is_fatal_and_spends_no_retry_budget(self, monkeypatch):
        """One party holding a different PSK kills the run at the first
        hello MAC check -- classified ``auth-failed``/fatal, never
        re-spawned against the retry budget."""
        import repro.runtime.orchestrator as orchestrator_module

        real_spawn = orchestrator_module._spawn_party

        def skewed_spawn(run_dir, name, **kwargs):
            if name == "p1":
                kwargs["psk"] = "the wrong secret"
            return real_spawn(run_dir, name, **kwargs)

        monkeypatch.setattr(orchestrator_module, "_spawn_party",
                            skewed_spawn)
        by_party = workload(3)
        with pytest.raises(OrchestrationError,
                           match="fatal -- not retrying") as excinfo:
            orchestrate_run(by_party, make_config(), seeds=[21, 22, 23],
                            psk=PSK, deadline_s=60.0, retry_budget=3)
        assert any(failure.cause == CAUSE_AUTH_FAILED
                   for failure in excinfo.value.failures)


# -- the daemon's asyncio path ----------------------------------------------

@pytest.mark.sockets
class TestDaemonLinkAuth:
    def test_mesh_digest_binds_auth_and_cap(self):
        spec = MeshSpec(names=("a", "b"), ports={"a": 9001, "b": 9002})
        authed = MeshSpec(names=("a", "b"), ports={"a": 9001, "b": 9002},
                          link_auth=True)
        capped = MeshSpec(names=("a", "b"), ports={"a": 9001, "b": 9002},
                          max_sessions=2)
        digests = {mesh_digest(spec), mesh_digest(authed),
                   mesh_digest(capped)}
        assert len(digests) == 3
        clone = MeshSpec.from_json(authed.to_json())
        assert clone == authed
        with pytest.raises(DaemonError, match="max_sessions"):
            MeshSpec(names=("a", "b"), ports={"a": 1, "b": 2},
                     max_sessions=-1)

    def test_authenticated_fleet_is_bit_identical(self):
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        with DaemonFleet(list(by_party), psk=PSK) as fleet:
            assert fleet.spec.link_auth is True
            with fleet.client() as client:
                run = run_via_daemons(by_party, config, seeds,
                                      client=client, timeout=120)
        assert_matches_reference(run, reference, digests)

    def test_wrong_client_psk_is_refused(self):
        by_party = workload(2)
        with DaemonFleet(list(by_party), psk=PSK) as fleet:
            with pytest.raises((HandshakeError,
                                FrameAuthenticationError)):
                SessionClient(fleet.spec, psk="the wrong secret")

    def test_missing_client_psk_fails_at_construction(self):
        by_party = workload(2)
        with DaemonFleet(list(by_party), psk=PSK) as fleet:
            with pytest.raises(SessionClientError, match="PSK"):
                SessionClient(fleet.spec)

    def test_tampered_hello_is_dropped_by_the_daemon(self):
        """Raw async-path tamper: a hello whose MAC byte is flipped
        never reaches the handshake -- the daemon closes the connection
        without an answer and stays up."""
        by_party = workload(2)
        with DaemonFleet(list(by_party), psk=PSK) as fleet:
            spec = fleet.spec
            auth = FrameAuthenticator(PSK, mesh_digest(spec))
            hello = Hello(version=PROTOCOL_VERSION, session_id="",
                          pair_left="client", pair_right=spec.names[0],
                          party_id="client",
                          config_digest=mesh_digest(spec),
                          role=ROLE_CLIENT).authenticated(auth)
            sealed = bytearray(auth.seal(FRAME_HELLO, hello.to_wire()))
            sealed[-1] ^= 0x01
            with socket.create_connection(
                    (spec.host, spec.ports[spec.names[0]]),
                    timeout=5.0) as sock:
                sock.sendall(encode_frame(FRAME_HELLO, bytes(sealed)))
                sock.settimeout(10.0)
                assert sock.recv(1024) == b""  # dropped, no goodbye
            # The daemon still serves correctly-keyed clients.
            with fleet.client() as client:
                run = run_via_daemons(by_party, make_config(), [1, 2],
                                      client=client, timeout=120)
                assert set(run.reports) == set(by_party)

    def test_max_sessions_cap_rejects_excess_submissions(self):
        by_party = workload(2)
        seeds = [41, 42]
        config = make_config()
        with DaemonFleet(list(by_party), max_sessions=1,
                         net_delay_s=0.005) as fleet:
            with fleet.client() as client:
                manifests = [
                    build_manifest(by_party, config, seeds,
                                   session_id=f"cap-{index}",
                                   ports={pair_key("p0", "p1"): 0},
                                   host=fleet.spec.host)
                    for index in range(2)]
                first = client.submit(manifests[0], by_party)
                second = client.submit(manifests[1], by_party)
                with pytest.raises(SessionClientError,
                                   match="rejected.*max_sessions"):
                    second.result(timeout=60)
                run = first.result(timeout=120)
                assert set(run.reports) == set(by_party)
