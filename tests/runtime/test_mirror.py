"""Mirrored-choreography channel: substitution, equivalence, desyncs.

These tests run the *same* choreography in two threads -- each with only
its own party's real input, the peer's replaced by a placeholder -- over
a socketpair, exactly the execution model the party processes use, and
assert the protocol observables match a single in-process run with the
real inputs on both sides.
"""

import socket
import threading

import pytest

from repro.net.channel import Channel, ProtocolDesyncError
from repro.net.framing import FramedConnection
from repro.net.party import Party, make_party_pair
from repro.net.transcript import transcript_digest
from repro.net.transport import TcpTransport
from repro.runtime.mirror import MirrorChannel
from repro.smc.session import SmcConfig, SmcSession

SMC = SmcConfig(paillier_bits=128, comparison="bitwise", key_seed=871)


def mirror_pair(timeout_s: float = 10.0):
    left_sock, right_sock = socket.socketpair()
    channels = []
    for sock, local in ((left_sock, "alice"), (right_sock, "bob")):
        connection = FramedConnection(sock, timeout_s=timeout_s,
                                      name=f"{local}@test")
        transport = TcpTransport("alice", "bob", connection,
                                 local_name=local)
        channels.append(MirrorChannel("alice", "bob", local, transport))
    return channels


def run_mirrored(choreography, inputs: dict[str, object],
                 placeholder: object, timeout_s: float = 10.0) -> dict:
    """Run ``choreography(channel, local_inputs)`` in both processes'
    style: each thread gets its own value real, the peer's replaced."""
    left, right = mirror_pair(timeout_s)
    outcomes = {}
    errors = {}

    def side(local, channel):
        view = {name: (value if name == local else placeholder)
                for name, value in inputs.items()}
        try:
            outcomes[local] = choreography(channel, view)
        except BaseException as exc:  # noqa: BLE001 - test harness
            errors[local] = exc
            channel.close(reason=f"{local} failed: {exc}")

    threads = [threading.Thread(target=side, args=("alice", left)),
               threading.Thread(target=side, args=("bob", right))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    if errors:
        raise next(iter(errors.values()))
    return {"outcomes": outcomes, "channels": {"alice": left, "bob": right}}


def comparison_choreography(channel, values):
    """A full DGK comparison, placeholder-tolerant on either side."""
    alice, bob = make_party_pair(channel, 41, 42)
    session = SmcSession(alice, bob, SMC)
    outcome = session.compare_leq(alice, values["alice"], bob,
                                  values["bob"], lo=0, hi=100,
                                  reveal_to="b", label="t")
    return outcome.result


class TestMirrorEquivalence:
    def test_comparison_matches_in_process_run(self):
        run = run_mirrored(comparison_choreography,
                           {"alice": 3, "bob": 7}, placeholder=0)
        # The revealing party (bob) computes the authentic predicate.
        assert run["outcomes"]["bob"] is True

        reference_channel = Channel()
        reference = comparison_choreography(reference_channel,
                                            {"alice": 3, "bob": 7})
        assert reference is True
        # Both mirrored transcripts are byte-identical to the reference:
        # every frame was computed by the party owning the data.
        reference_digest = transcript_digest(reference_channel.transcript)
        for name in ("alice", "bob"):
            channel = run["channels"][name]
            assert transcript_digest(channel.transcript) \
                == reference_digest
            channel.assert_drained()

    def test_stats_match_in_process_accounting(self):
        run = run_mirrored(comparison_choreography,
                           {"alice": 30, "bob": 7}, placeholder=0)
        assert run["outcomes"]["bob"] is False
        reference_channel = Channel()
        comparison_choreography(reference_channel, {"alice": 30, "bob": 7})
        reference = reference_channel.stats.snapshot()
        for name in ("alice", "bob"):
            assert run["channels"][name].stats.snapshot() == reference


class TestMirrorMechanics:
    def test_local_echo_serves_the_choreographed_remote_receive(self):
        left, right = mirror_pair()
        # Single-threaded on one side: local send, then the choreography
        # plays the remote receive -- served by the echo, not the socket.
        left.left.send("m", [1, 2])
        assert left.right.receive("m") == [1, 2]
        left.close()
        right.close()

    def test_substitution_records_authentic_values(self):
        left, right = mirror_pair()
        done = threading.Event()

        def bob_side():
            # Bob's process: bob's send is local and real.
            right.right.send("secret", 777)
            done.set()

        thread = threading.Thread(target=bob_side)
        thread.start()
        # Alice's process: the choreography says "bob sends", with a
        # garbage value computed from placeholders; the mirror must
        # substitute the authentic 777 from the wire.
        left._send("bob", "alice", "secret", -1)
        assert left.left.receive("secret") == 777
        assert left.transcript.entries[-1].value == 777
        thread.join(timeout=5)
        assert done.is_set()

    def test_cross_process_label_divergence_detected(self):
        left, right = mirror_pair(timeout_s=2.0)

        def bob_side():
            right.right.send("phase_two", 1)

        thread = threading.Thread(target=bob_side)
        thread.start()
        with pytest.raises(ProtocolDesyncError, match="cross-process"):
            left._send("bob", "alice", "phase_one", 0)
        thread.join(timeout=5)

    def test_receive_without_send_is_desync_not_hang(self):
        left, _ = mirror_pair(timeout_s=2.0)
        with pytest.raises(ProtocolDesyncError, match="no matching send"):
            left.left.receive("never")

    def test_assert_drained_reports_leftovers(self):
        left, right = mirror_pair()
        left.left.send("m", 5)
        with pytest.raises(ProtocolDesyncError, match="not drained"):
            left.assert_drained()
        right.close()
        left.close()

    def test_unknown_local_party_rejected(self):
        left_sock, right_sock = socket.socketpair()
        connection = FramedConnection(left_sock, timeout_s=1.0, name="x")
        transport = TcpTransport("alice", "bob", connection,
                                 local_name="alice")
        from repro.runtime.mirror import MirrorChannelError
        with pytest.raises(MirrorChannelError, match="not an endpoint"):
            MirrorChannel("alice", "bob", "carol", transport)
        right_sock.close()
        connection.close()


class TestMirrorWithParties:
    def test_party_rngs_stay_independent_of_placeholders(self):
        """Both processes derive both parties' coin streams from public
        seeds; placeholder data must not shift any draw."""
        def choreography(channel, values):
            alice = Party(channel.left)
            bob = Party(channel.right)
            alice.rng.seed(5)
            bob.rng.seed(6)
            # Alice's draw feeds her send; bob's draw feeds his.
            alice.send("a", alice.rng.randrange(1000) + values["alice"] * 0)
            bob.receive("a")
            bob.send("b", bob.rng.randrange(1000))
            return alice.receive("b")

        run = run_mirrored(choreography, {"alice": 1, "bob": 2},
                           placeholder=0)
        import random
        expected = random.Random(6).randrange(1000)
        assert run["outcomes"]["alice"] == expected
        assert run["outcomes"]["bob"] == expected
