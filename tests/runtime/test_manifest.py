"""Run manifests: roundtrip, digest binding, unsupported-config refusal."""

import pytest

from repro.core.config import ProtocolConfig
from repro.net.transport import TransportSpec
from repro.runtime.manifest import (
    ManifestError,
    RunManifest,
    UnsupportedConfigError,
    config_from_dict,
    config_to_dict,
    manifest_digest,
    pair_key,
)
from repro.smc.session import SmcConfig


def config(**smc_overrides) -> ProtocolConfig:
    smc = dict(paillier_bits=128, comparison="bitwise", key_seed=9)
    smc.update(smc_overrides)
    return ProtocolConfig(eps=1.0, min_pts=3, scale=10,
                          smc=SmcConfig(**smc))


def manifest(**overrides) -> RunManifest:
    fields = dict(
        session_id="run-1",
        names=("p0", "p1", "p2"),
        seeds=(1, 2, 3),
        counts={"p0": 4, "p1": 3, "p2": 5},
        dimensions=2,
        value_bound=3600,
        ports={"p0|p1": 9001, "p0|p2": 9002, "p1|p2": 9003},
        config=config_to_dict(config()),
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestConfigSerialization:
    def test_roundtrip_preserves_every_runtime_field(self):
        original = ProtocolConfig(
            eps=1.5, min_pts=4, scale=100, blind_cross_sum=True,
            query_constant_blinding=True, cache_peer_ciphertexts=True,
            batched_region_queries=False, batched_comparisons=False,
            concurrent_peers=True, peer_workers=2,
            smc=SmcConfig(paillier_bits=192, comparison="bitwise",
                          key_seed=33, mask_sigma=12, precompute=False))
        restored = config_from_dict(config_to_dict(original))
        assert config_to_dict(restored) == config_to_dict(original)
        assert restored.eps == original.eps
        assert restored.smc.key_seed == 33
        assert restored.smc.precompute is False

    def test_oracle_backend_refused(self):
        with pytest.raises(UnsupportedConfigError, match="bitwise"):
            config_to_dict(config(comparison="oracle"))

    def test_ympp_backend_refused(self):
        with pytest.raises(UnsupportedConfigError, match="bitwise"):
            config_to_dict(config(comparison="ympp"))

    def test_missing_key_seed_refused(self):
        with pytest.raises(UnsupportedConfigError, match="key_seed"):
            config_to_dict(config(key_seed=None))

    def test_engine_refused(self):
        from repro.crypto.engine import ModexpEngine
        with pytest.raises(UnsupportedConfigError, match="engine"):
            config_to_dict(config(engine=ModexpEngine(workers=1)))

    def test_transport_spec_refused(self):
        with pytest.raises(UnsupportedConfigError, match="transport"):
            config_to_dict(config(transport=TransportSpec()))


class TestRunManifest:
    def test_json_roundtrip(self):
        original = manifest()
        assert RunManifest.from_json(original.to_json()) == original

    def test_pairs_follow_slot_order(self):
        assert manifest().pairs() == [("p0", "p1"), ("p0", "p2"),
                                      ("p1", "p2")]

    def test_placeholder_points_have_public_shape_only(self):
        placeholders = manifest().placeholder_points("p1")
        assert placeholders == [(0, 0)] * 3

    def test_protocol_config_reconstructs(self):
        rebuilt = manifest().protocol_config()
        assert rebuilt.smc.comparison == "bitwise"
        assert rebuilt.eps == 1.0

    @pytest.mark.parametrize("mutation", [
        dict(seeds=(1, 2, 4)),
        dict(counts={"p0": 4, "p1": 3, "p2": 6}),
        dict(value_bound=7200),
        dict(session_id="run-2"),
        dict(config=config_to_dict(
            ProtocolConfig(eps=1.0, min_pts=3, scale=10,
                           blind_cross_sum=True,
                           query_constant_blinding=True,
                           smc=SmcConfig(paillier_bits=128,
                                         comparison="bitwise",
                                         key_seed=9)))),
    ])
    def test_digest_binds_every_field(self, mutation):
        assert manifest_digest(manifest()) \
            != manifest_digest(manifest(**mutation))

    def test_validation(self):
        with pytest.raises(ManifestError, match="at least two"):
            manifest(names=("p0",), seeds=(1,), counts={"p0": 1},
                     ports={})
        with pytest.raises(ManifestError, match="parallel"):
            manifest(seeds=(1, 2))
        with pytest.raises(ManifestError, match="exactly the party names"):
            manifest(counts={"p0": 4, "p1": 3})
        with pytest.raises(ManifestError, match="mesh pairs"):
            manifest(ports={"p0|p1": 9001})

    def test_pair_key_is_order_insensitive(self):
        assert pair_key("b", "a") == pair_key("a", "b") == "a|b"

    def test_recovery_knobs_roundtrip(self):
        original = manifest(connect_timeout_s=7.5, connect_retries=40,
                            backoff_base_s=0.1, recovery_budget=5)
        restored = RunManifest.from_json(original.to_json())
        assert restored.connect_timeout_s == 7.5
        assert restored.connect_retries == 40
        assert restored.backoff_base_s == 0.1
        assert restored.recovery_budget == 5

    def test_recovery_knobs_have_back_compat_defaults(self):
        """Manifests written before the fault-tolerant session layer
        carry none of the knobs; loading them must still work."""
        import json
        payload = json.loads(manifest().to_json())
        for knob in ("connect_timeout_s", "connect_retries",
                     "backoff_base_s", "recovery_budget", "faults"):
            payload.pop(knob)
        restored = RunManifest.from_json(json.dumps(payload))
        assert restored.connect_timeout_s == 15.0
        assert restored.connect_retries == 120
        assert restored.recovery_budget == 3
        assert restored.faults == ()

    def test_recovery_knob_validation(self):
        with pytest.raises(ManifestError, match="connect_timeout_s"):
            manifest(connect_timeout_s=0)
        with pytest.raises(ManifestError, match="connect_retries"):
            manifest(connect_retries=0)
        with pytest.raises(ManifestError, match="backoff_base_s"):
            manifest(backoff_base_s=-1)
        with pytest.raises(ManifestError, match="recovery_budget"):
            manifest(recovery_budget=-1)

    def test_digest_binds_the_fault_plan(self):
        """Faults ride inside the manifest digest: a fleet where one
        process plans a kill and another does not must refuse to link."""
        from repro.runtime.faults import FaultPlan
        plan = FaultPlan.parse(["kill:p1@pass1"])
        assert manifest_digest(manifest()) \
            != manifest_digest(manifest(faults=plan.to_dicts()))
