"""Checkpoints: round-trip, truncation, validation, replay discipline."""

import pathlib

import pytest

from repro.runtime.checkpoint import (
    CheckpointDivergenceError,
    CheckpointError,
    PartyCheckpoint,
    PassRecord,
    ReplayTransport,
    checkpoint_path,
    load_checkpoint,
    write_checkpoint,
)


def make_checkpoint(**overrides) -> PartyCheckpoint:
    fields = dict(
        party="b",
        session_id="run-1",
        manifest_sha256="d" * 64,
        epoch=1,
        passes_done=2,
        labels=(0, 0, -1),
        ledger_events=(("dbscan/region", "b", "predicate_bit", "q0"),),
        pass_records=[
            PassRecord(driver="a", served_queries=3,
                       frame_counts={"a|b": 4, "b|c": 0},
                       pair_digests={"a|b": "x1", "b|c": "e0"}),
            PassRecord(driver="b", served_queries=0,
                       frame_counts={"a|b": 6, "b|c": 5},
                       pair_digests={"a|b": "x2", "b|c": "y1"}),
        ],
        frames={
            "a|b": [("in", "m0", b"\x01"), ("out", "m1", b"\x02"),
                    ("in", "m2", b"\x03"), ("out", "m3", b"\x04"),
                    ("out", "m4", b"\x05"), ("in", "m5", b"\x06")],
            "b|c": [("out", "n0", b"\xaa"), ("in", "n1", b"\xbb"),
                    ("out", "n2", b"\xcc"), ("in", "n3", b"\xdd"),
                    ("out", "n4", b"\xee")],
        },
        stats={"a|b": {"total_bytes": 6}},
        comparisons={"a|b": 9},
    )
    fields.update(overrides)
    return PartyCheckpoint(**fields)


class TestCheckpointSerialization:
    def test_round_trip(self):
        checkpoint = make_checkpoint()
        restored = PartyCheckpoint.from_json(checkpoint.to_json())
        assert restored.party == checkpoint.party
        assert restored.epoch == checkpoint.epoch
        assert restored.passes_done == checkpoint.passes_done
        assert restored.labels == checkpoint.labels
        assert restored.ledger_events == checkpoint.ledger_events
        assert restored.frames == checkpoint.frames
        assert restored.pass_records == checkpoint.pass_records
        assert restored.stats == checkpoint.stats
        assert restored.comparisons == checkpoint.comparisons

    def test_labels_may_be_absent_before_own_pass(self):
        checkpoint = make_checkpoint(labels=None)
        assert PartyCheckpoint.from_json(checkpoint.to_json()).labels is None

    def test_unreadable_json_raises(self):
        with pytest.raises(CheckpointError, match="unreadable"):
            PartyCheckpoint.from_json("{not json")

    def test_record_count_must_match_passes_done(self):
        payload = make_checkpoint().to_json().replace(
            '"passes_done": 2', '"passes_done": 3')
        with pytest.raises(CheckpointError, match="3 passes"):
            PartyCheckpoint.from_json(payload)


class TestFrameTruncation:
    def test_frames_up_to_earlier_boundary(self):
        frames = make_checkpoint().frames_up_to(1)
        assert frames["a|b"] == make_checkpoint().frames["a|b"][:4]
        assert frames["b|c"] == []

    def test_frames_up_to_own_boundary_is_everything(self):
        checkpoint = make_checkpoint()
        frames = checkpoint.frames_up_to(2)
        assert frames["a|b"] == checkpoint.frames["a|b"][:6]
        assert frames["b|c"] == checkpoint.frames["b|c"][:5]

    @pytest.mark.parametrize("passes", [0, 3])
    def test_out_of_range_boundary_refused(self, passes):
        with pytest.raises(CheckpointError, match="truncate"):
            make_checkpoint().frames_up_to(passes)

    def test_record_for_boundary(self):
        assert make_checkpoint().record_for(1).driver == "a"
        with pytest.raises(CheckpointError, match="no pass record"):
            make_checkpoint().record_for(5)


class TestPersistence:
    def test_write_then_load(self, tmp_path):
        checkpoint = make_checkpoint()
        write_checkpoint(tmp_path, checkpoint)
        loaded = load_checkpoint(tmp_path, "b", session_id="run-1",
                                 manifest_sha256="d" * 64)
        assert loaded.frames == checkpoint.frames
        assert not list(tmp_path.glob("*.tmp")), "atomic write must clean up"

    def test_absent_checkpoint_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path, "b", session_id="run-1",
                               manifest_sha256="d" * 64) is None

    def test_wrong_session_refused(self, tmp_path):
        write_checkpoint(tmp_path, make_checkpoint())
        with pytest.raises(CheckpointError, match="session"):
            load_checkpoint(tmp_path, "b", session_id="run-2",
                            manifest_sha256="d" * 64)

    def test_changed_manifest_refused(self, tmp_path):
        write_checkpoint(tmp_path, make_checkpoint())
        with pytest.raises(CheckpointError, match="manifest"):
            load_checkpoint(tmp_path, "b", session_id="run-1",
                            manifest_sha256="e" * 64)

    def test_wrong_party_in_file_refused(self, tmp_path):
        path = checkpoint_path(tmp_path, "b")
        path.write_text(make_checkpoint(party="c").to_json())
        with pytest.raises(CheckpointError, match="belongs to"):
            load_checkpoint(tmp_path, "b", session_id="run-1",
                            manifest_sha256="d" * 64)


class TestReplayTransport:
    def frames(self):
        return [("out", "m0", b"\x01\x02"), ("in", "m1", b"\x03")]

    def test_faithful_replay_exhausts(self):
        transport = ReplayTransport("a", "b", "a", self.frames())
        transport.deliver("a", "b", "m0", b"\x01\x02")
        assert transport.collect("a", "m1") == ("m1", b"\x03")
        transport.assert_exhausted()

    def test_recomputed_bytes_must_match(self):
        transport = ReplayTransport("a", "b", "a", self.frames())
        with pytest.raises(CheckpointDivergenceError, match="diverges"):
            transport.deliver("a", "b", "m0", b"\x01\xff")

    def test_recomputed_label_must_match(self):
        transport = ReplayTransport("a", "b", "a", self.frames())
        with pytest.raises(CheckpointDivergenceError, match="diverges"):
            transport.deliver("a", "b", "m9", b"\x01\x02")

    def test_direction_must_match(self):
        transport = ReplayTransport("a", "b", "a", self.frames())
        with pytest.raises(CheckpointDivergenceError, match="expected"):
            transport.collect("a", "m0")

    def test_exhausted_record_refuses_more_traffic(self):
        transport = ReplayTransport("a", "b", "a", [])
        with pytest.raises(CheckpointDivergenceError, match="exhausted"):
            transport.deliver("a", "b", "m0", b"\x01")

    def test_leftover_record_is_divergence(self):
        transport = ReplayTransport("a", "b", "a", self.frames())
        with pytest.raises(CheckpointDivergenceError, match="unconsumed"):
            transport.assert_exhausted()
