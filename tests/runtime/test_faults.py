"""Fault injection and recovery: chaos runs must stay bit-identical.

The equivalence bar of the fault-tolerant session layer: a k-party
socket run with injected failures -- kills at pass boundaries, kills
mid-pass, dropped connections, truncated frames, refused dials --
followed by automatic recovery must merge to **bit-identical**
observables (labels, disclosure ledger, per-pair transcripts,
comparison counts, stats) as the fault-free in-process mesh.  In
particular the disclosure ledger holds exactly one copy of each
disclosure: replayed passes never re-announce.

The single-kill smoke and the double-kill acceptance run in tier-1
(``sockets`` + ``faults`` markers); the wider chaos matrix is
additionally marked ``slow`` for the weekly job.
"""

import json
import socket
import time

import pytest

from repro.net.framing import (
    FRAME_MESSAGE,
    ConnectionClosedError,
    FramedConnection,
    ReceiveTimeout,
)
from repro.runtime.failure import (
    CAUSE_BUDGET_EXHAUSTED,
    CAUSE_CONNECTION_LOST,
    CAUSE_CRASH,
    CAUSE_DIGEST_DIVERGENCE,
    CAUSE_TIMEOUT,
    FATAL,
    RETRYABLE,
    classification_of,
    load_failure,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultSpecError,
    FaultyConnection,
    parse_fault,
)
from repro.runtime.checkpoint import CheckpointDivergenceError
from repro.runtime.orchestrator import OrchestrationError, orchestrate_run
from repro.runtime.party import classify_exception, run_party

from tests.runtime.test_orchestrator import (
    assert_bit_identical,
    make_config,
    workload,
)


class TestFaultGrammar:
    def test_kill_at_boundary(self):
        spec = parse_fault("kill:b@pass2")
        assert (spec.kind, spec.party, spec.boundary) == ("kill", "b", 2)
        assert spec.queries is None and spec.epoch == 0

    def test_kill_mid_pass_at_epoch(self):
        spec = parse_fault("kill:b@pass1.q3@e1")
        assert (spec.boundary, spec.queries, spec.epoch) == (1, 3, 1)

    def test_drop_names_a_canonical_pair(self):
        spec = parse_fault("drop:a:b-a@pass1")
        assert spec.pair == ("a", "b")
        assert spec.pair_key() == "a|b"

    def test_delay_carries_seconds(self):
        spec = parse_fault("delay:a:a-b@pass0.f2:0.25")
        assert (spec.frame, spec.seconds) == (2, 0.25)

    def test_truncate_needs_a_frame(self):
        with pytest.raises(FaultSpecError, match="f<F>"):
            parse_fault("truncate:a:a-b@pass1")

    def test_refuse_takes_no_boundary(self):
        assert parse_fault("refuse:a:a-b").boundary is None
        with pytest.raises(FaultSpecError, match="link-up"):
            parse_fault("refuse:a:a-b@pass1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_fault("explode:a@pass1")

    def test_plan_round_trips_through_manifest_dicts(self):
        plan = FaultPlan.parse(["kill:b@pass1", "drop:a:a-b@pass2.q1@e1"],
                               seed=42)
        restored = FaultPlan.from_dicts(plan.to_dicts())
        assert restored.specs == plan.specs
        assert restored.seed == 42

    def test_for_party_filters_by_party_and_epoch(self):
        plan = FaultPlan.parse(["kill:b@pass1", "kill:b@pass1.q2@e1",
                                "kill:c@pass2"])
        assert len(plan.for_party("b", 0).specs) == 1
        assert len(plan.for_party("b", 1).specs) == 1
        assert len(plan.for_party("a", 0).specs) == 0


@pytest.mark.faults
class TestFrameFaultClassification:
    """Satellite bar: an injected truncation reads as EOF-mid-frame
    (connection lost, retryable), never as a timeout -- and an idle
    link's timeout stays a timeout."""

    def make_link(self, specs):
        left, right = socket.socketpair()
        faulty = FaultyConnection(left, specs=specs, state=lambda: 0,
                                  timeout_s=0.4, name="a@a|b")
        peer = FramedConnection(right, timeout_s=0.4, name="b@a|b")
        return faulty, peer

    def test_truncated_frame_is_eof_mid_frame_not_timeout(self):
        spec = parse_fault("truncate:a:a-b@pass0.f1", seed=9)
        faulty, peer = self.make_link([spec])
        with pytest.raises(ConnectionClosedError, match="truncated"):
            faulty.write_frame(FRAME_MESSAGE, b"payload-bytes" * 8)
        with pytest.raises(ConnectionClosedError,
                           match="mid-frame") as excinfo:
            peer.read_frame()
        cause, classification = classify_exception(excinfo.value)
        assert (cause, classification) == (CAUSE_CONNECTION_LOST, RETRYABLE)
        peer.close()

    def test_idle_link_timeout_classified_as_timeout(self):
        faulty, peer = self.make_link([])
        with pytest.raises(ReceiveTimeout) as excinfo:
            peer.read_frame()
        cause, classification = classify_exception(excinfo.value)
        assert (cause, classification) == (CAUSE_TIMEOUT, RETRYABLE)
        faulty.close()
        peer.close()

    def test_delay_fault_delivers_the_frame_intact(self):
        spec = parse_fault("delay:a:a-b@pass0.f1:0.15", seed=9)
        faulty, peer = self.make_link([spec])
        started = time.monotonic()
        faulty.write_frame(FRAME_MESSAGE, b"slow but whole")
        assert time.monotonic() - started >= 0.15
        assert peer.read_frame() == (FRAME_MESSAGE, b"slow but whole")
        faulty.close()
        peer.close()


@pytest.mark.sockets
@pytest.mark.faults
class TestRecovery:
    def test_kill_after_pass_one_recovers_bit_identical(self):
        """Tier-1 smoke: one party dies hard right after checkpointing
        pass 1; the orchestrator re-spawns it with --resume, the
        survivors rewind and re-handshake at the next epoch, and every
        observable matches the fault-free in-process mesh."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=240, faults=["kill:p1@pass1"])
        assert run.respawns["p1"] == 1
        assert [failure.party for failure in run.failures] == ["p1"]
        assert run.failures[0].classification == RETRYABLE
        assert_bit_identical(run, by_party, config, seeds)

    def test_double_kill_including_mid_pass_recovers_bit_identical(self):
        """The acceptance scenario: the same party is killed after pass
        1 and again in the middle of pass 2 (second incarnation, epoch
        1).  Mid-pass kills lose the in-flight pass only -- recovery
        rewinds to the last common boundary, replays, and the merged
        run is bit-identical: no replayed messages, no duplicated
        ledger entries, same comparison counts."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        run = orchestrate_run(
            by_party, config, seeds=seeds, deadline_s=300,
            faults=["kill:p1@pass1", "kill:p1@pass1.q2@e1"])
        assert run.respawns["p1"] == 2
        assert len(run.failures) == 2
        assert_bit_identical(run, by_party, config, seeds)

    def test_respawn_budget_exhaustion_fails_fast_and_classified(self):
        """A party that dies more often than the budget allows abandons
        the run with the classified failure history attached."""
        by_party = workload(2)
        with pytest.raises(OrchestrationError) as excinfo:
            orchestrate_run(by_party, make_config(), seeds=[31, 32],
                            deadline_s=120, retry_budget=0,
                            faults=["kill:p1@pass1"])
        assert "re-spawn budget of 0 exhausted" in str(excinfo.value)
        assert excinfo.value.failures[-1].cause == CAUSE_CRASH
        assert excinfo.value.failures[-1].classification == RETRYABLE

    def test_survivor_budget_exhaustion_is_fatal(self, tmp_path):
        """With recovery_budget=0 the survivors of a kill cannot ride
        out the recovery wave: they write a classified fatal
        recovery-budget-exhausted report and the orchestrator stops
        instead of burning re-spawns."""
        by_party = workload(2)
        with pytest.raises(OrchestrationError) as excinfo:
            orchestrate_run(by_party, make_config(), seeds=[31, 32],
                            run_dir=tmp_path, deadline_s=120,
                            recovery_budget=0, retry_budget=3,
                            faults=["kill:p1@pass1"])
        causes = {failure.cause for failure in excinfo.value.failures}
        assert CAUSE_BUDGET_EXHAUSTED in causes
        exhausted = load_failure(tmp_path, "p0")
        assert exhausted is not None
        assert exhausted.cause == CAUSE_BUDGET_EXHAUSTED
        assert exhausted.classification == FATAL
        assert classification_of(CAUSE_BUDGET_EXHAUSTED) == FATAL


@pytest.mark.sockets
@pytest.mark.faults
class TestOfflineResume:
    """A party killed after its *final* checkpoint has no peers left to
    talk to; --resume rebuilds its report entirely offline."""

    def completed_run_dir(self, tmp_path):
        by_party = workload(2)
        seeds = [31, 32]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              run_dir=tmp_path, deadline_s=120)
        return by_party, seeds, config, run

    def strip_timings(self, payload: str) -> dict:
        data = json.loads(payload)
        data.pop("elapsed_seconds", None)
        data.pop("passes_seconds", None)
        return data

    def test_offline_rebuild_reproduces_the_report(self, tmp_path):
        _, _, _, run = self.completed_run_dir(tmp_path)
        original = (tmp_path / "report_p1.json").read_text()
        (tmp_path / "report_p1.json").unlink()
        report = run_party(tmp_path, "p1", resume=True)
        rebuilt = (tmp_path / "report_p1.json").read_text()
        assert self.strip_timings(rebuilt) == self.strip_timings(original)
        assert report.labels == run.reports["p1"].labels

    def test_tampered_checkpoint_is_fatal_digest_divergence(self, tmp_path):
        self.completed_run_dir(tmp_path)
        path = tmp_path / "checkpoint_p1.json"
        data = json.loads(path.read_text())
        for log in data["frames"].values():
            for frame in log:
                if frame[0] == "out":
                    tampered = frame[2][:-2] + (
                        "00" if frame[2][-2:] != "00" else "ff")
                    frame[2] = tampered
                    break
            else:
                continue
            break
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointDivergenceError):
            run_party(tmp_path, "p1", resume=True)
        failure = load_failure(tmp_path, "p1")
        assert failure is not None
        assert failure.cause == CAUSE_DIGEST_DIVERGENCE
        assert failure.classification == FATAL


@pytest.mark.sockets
@pytest.mark.faults
@pytest.mark.slow
class TestChaosMatrix:
    """The weekly fault matrix: every fault kind, every resume boundary,
    in-process recovery without a re-spawn, and k=4 meshes."""

    @pytest.mark.parametrize("boundary", [1, 2, 3])
    def test_resume_from_every_boundary_of_a_three_party_run(
            self, boundary):
        """Checkpoint-resume determinism: kill the same party after
        each possible completed-pass count (3 = after its final
        checkpoint, the offline-rebuild path)."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=300,
                              faults=[f"kill:p2@pass{boundary}"])
        assert run.respawns["p2"] == 1
        assert_bit_identical(run, by_party, config, seeds)

    @pytest.mark.parametrize("fault", [
        "drop:p1:p0-p1@pass1",
        "drop:p0:p0-p2@pass1.q1",
        "truncate:p1:p0-p1@pass1.f2",
        "delay:p1:p0-p1@pass1.f1:0.2",
        "refuse:p0:p0-p1",
    ])
    def test_connection_faults_recover_in_process(self, fault):
        """Drops, truncations, and refused dials heal without any
        re-spawn: the recovery wave propagates mesh-wide, everyone
        rewinds to the last common checkpoint, and the run stays
        bit-identical."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=300, faults=[fault])
        assert run.respawns == {"p0": 0, "p1": 0, "p2": 0}
        assert_bit_identical(run, by_party, config, seeds)

    def test_four_party_kill_recovers_bit_identical(self):
        by_party = workload(4, per_party=2)
        seeds = [41, 42, 43, 44]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=420, faults=["kill:p2@pass2"])
        assert run.respawns["p2"] == 1
        assert_bit_identical(run, by_party, config, seeds)

    def test_concurrent_peer_pass_with_mid_pass_kill(self):
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config(concurrent_peers=True)
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=300,
                              faults=["kill:p0@pass0.q1"])
        assert run.respawns["p0"] == 1
        assert_bit_identical(run, by_party, config, seeds)
