"""Orchestrated runs: real party processes over loopback TCP.

The acceptance bar of the runtime: a k-party mesh run with parties as
separate OS processes must produce labels, a disclosure ledger, per-pair
transcripts, comparison counts, and a merged stats snapshot that are
**bit-identical** to the in-process fabric on the same seeds.  The
3-party smoke test runs in tier-1 (``sockets`` marker); the wider
configuration matrix is additionally marked ``slow`` for the weekly job.
"""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.data.generators import gaussian_blobs
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh
from repro.net.transcript import transcript_digest
from repro.runtime.manifest import UnsupportedConfigError, pair_key
from repro.runtime.orchestrator import (
    OrchestrationError,
    allocate_ports,
    build_manifest,
    orchestrate_run,
)
from repro.smc.session import SmcConfig


def workload(parties: int, per_party: int = 3) -> dict[str, list]:
    points = gaussian_blobs(random.Random(5),
                            centers=[(0.0, 0.0), (4.0, 4.0)],
                            points_per_blob=(parties * per_party + 1) // 2,
                            spread=0.5, scale=10)
    return {f"p{index}": points[index * per_party:(index + 1) * per_party]
            for index in range(parties)}


def make_config(**overrides) -> ProtocolConfig:
    smc = SmcConfig(paillier_bits=128, comparison="bitwise", key_seed=77,
                    mask_sigma=8)
    return ProtocolConfig(eps=1.0, min_pts=3, scale=10, smc=smc,
                          **overrides)


def assert_bit_identical(run, by_party, config, seeds) -> None:
    mesh = PartyMesh(list(by_party), config.smc, seeds=seeds)
    reference = run_multiparty_horizontal_dbscan(by_party, config,
                                                 seeds=seeds, mesh=mesh)
    reference_digests = {
        pair_key(*pair): transcript_digest(transcript)
        for pair, transcript in mesh.pair_transcripts().items()}
    assert run.result.labels_by_party == reference.labels_by_party
    assert run.result.ledger.events == reference.ledger.events
    assert run.result.comparisons == reference.comparisons
    assert run.transcript_digests == reference_digests
    assert run.result.stats == reference.stats


@pytest.mark.sockets
class TestOrchestratedEquivalence:
    def test_three_party_mesh_over_loopback_tcp_bit_identical(self):
        """The acceptance test: three OS processes, one per data holder,
        real TCP links -- every protocol observable identical to the
        in-process mesh."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=120)
        assert run.elapsed_seconds > 0
        assert set(run.reports) == set(by_party)
        assert_bit_identical(run, by_party, config, seeds)


@pytest.mark.sockets
@pytest.mark.slow
class TestOrchestratedMatrix:
    @pytest.mark.parametrize("parties", [2, 4])
    def test_party_counts(self, parties):
        by_party = workload(parties)
        seeds = list(range(61, 61 + parties))
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=180)
        assert_bit_identical(run, by_party, config, seeds)

    @pytest.mark.parametrize("blind,query_constant", [
        (True, False), (True, True),
    ])
    def test_blind_modes(self, blind, query_constant):
        by_party = workload(3)
        seeds = [41, 42, 43]
        config = make_config(blind_cross_sum=blind,
                             query_constant_blinding=query_constant)
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=180)
        assert_bit_identical(run, by_party, config, seeds)

    @pytest.mark.parametrize("variant", ["cached", "per_point",
                                         "concurrent"])
    def test_protocol_variants(self, variant):
        by_party = workload(3)
        seeds = [51, 52, 53]
        config = make_config(
            cache_peer_ciphertexts=variant == "cached",
            batched_region_queries=variant != "per_point",
            concurrent_peers=variant == "concurrent")
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=180)
        assert_bit_identical(run, by_party, config, seeds)

    def test_empty_partition_party(self):
        by_party = workload(3)
        by_party["p1"] = []
        seeds = [71, 72, 73]
        config = make_config()
        run = orchestrate_run(by_party, config, seeds=seeds,
                              deadline_s=180)
        assert_bit_identical(run, by_party, config, seeds)


@pytest.mark.sockets
class TestOrchestratorFailurePaths:
    def test_party_death_is_named_with_exit_code(self):
        """Failure injection: one party dies hard mid-run; the
        orchestrator must name it, report the exit code, and tear the
        fleet down instead of hanging."""
        by_party = workload(3)
        with pytest.raises(OrchestrationError) as excinfo:
            # retry_budget=0: the legacy hook re-fires on every
            # incarnation, so a resume could never outrun it anyway.
            orchestrate_run(by_party, make_config(), seeds=[31, 32, 33],
                            deadline_s=120, retry_budget=0,
                            fault_injection={"p1": 1})
        message = str(excinfo.value)
        assert "'p1'" in message
        assert "code 13" in message
        assert excinfo.value.failures
        assert excinfo.value.failures[-1].party == "p1"

    def test_unsupported_config_refused_before_spawn(self):
        with pytest.raises(UnsupportedConfigError, match="bitwise"):
            orchestrate_run(
                workload(2),
                ProtocolConfig(eps=1.0, min_pts=3, scale=10,
                               smc=SmcConfig(comparison="oracle",
                                             key_seed=1)),
                seeds=[1, 2])

    def test_missing_seeds_refused(self):
        with pytest.raises(OrchestrationError, match="seed"):
            orchestrate_run(workload(2), make_config(), seeds=None)


@pytest.mark.sockets
class TestRunDirCleanup:
    def test_temp_run_dir_removed_even_when_the_run_aborts(
            self, monkeypatch):
        """The cleanup bugfix bar: an aborted run must still reap its
        children and remove the temporary run directory."""
        import pathlib
        import tempfile

        created = []
        real_mkdtemp = tempfile.mkdtemp

        def spying_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", spying_mkdtemp)
        with pytest.raises(OrchestrationError):
            orchestrate_run(workload(2), make_config(), seeds=[31, 32],
                            deadline_s=120, retry_budget=0,
                            fault_injection={"p1": 1})
        assert created, "the orchestrator must have made a temp run dir"
        assert not pathlib.Path(created[0]).exists()

    def test_keep_run_dir_preserves_recovery_artifacts(self, monkeypatch):
        import pathlib
        import shutil
        import tempfile

        created = []
        real_mkdtemp = tempfile.mkdtemp

        def spying_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", spying_mkdtemp)
        try:
            orchestrate_run(workload(2), make_config(), seeds=[31, 32],
                            deadline_s=120, keep_run_dir=True)
            run_dir = pathlib.Path(created[0])
            assert run_dir.exists()
            assert (run_dir / "manifest.json").exists()
            # Pass-boundary checkpoints are written on fault-free runs
            # too -- that is what makes a later crash recoverable.
            assert (run_dir / "checkpoint_p0.json").exists()
            assert (run_dir / "checkpoint_p1.json").exists()
            assert (run_dir / "report_p0.json").exists()
        finally:
            for path in created:
                shutil.rmtree(path, ignore_errors=True)


class TestOrchestratorPlumbing:
    def test_allocate_ports_distinct(self):
        ports = allocate_ports(6)
        assert len(set(ports)) == 6

    def test_build_manifest_value_bound_matches_in_process(self):
        from repro.data.quantize import squared_distance_bound
        by_party = workload(3)
        manifest = build_manifest(by_party, make_config(), [1, 2, 3])
        all_points = [p for points in by_party.values() for p in points]
        assert manifest.value_bound \
            == squared_distance_bound(all_points, all_points)
        assert manifest.counts == {name: len(points)
                                   for name, points in by_party.items()}
