"""Handshake: matched links accept, every mismatch refuses with the field."""

import socket
import threading

import pytest

from repro.net.framing import FramedConnection
from repro.runtime.handshake import (
    PROTOCOL_VERSION,
    HandshakeError,
    Hello,
    perform_handshake,
)


def hello(**overrides) -> Hello:
    fields = dict(version=PROTOCOL_VERSION, session_id="run-1",
                  pair_left="p0", pair_right="p1", party_id="p0",
                  config_digest="d" * 64)
    fields.update(overrides)
    return Hello(**fields)


def exchange(mine: Hello, theirs: Hello, expect_mine: str,
             expect_theirs: str):
    """Run both ends of a handshake over a socketpair; return outcomes."""
    left_sock, right_sock = socket.socketpair()
    left = FramedConnection(left_sock, timeout_s=2.0, name="left")
    right = FramedConnection(right_sock, timeout_s=2.0, name="right")
    outcomes = {}

    def side(name, connection, record, expected_peer):
        try:
            outcomes[name] = perform_handshake(connection, record,
                                               expected_peer)
        except HandshakeError as exc:
            outcomes[name] = exc

    threads = [
        threading.Thread(target=side,
                         args=("mine", left, mine, expect_mine)),
        threading.Thread(target=side,
                         args=("theirs", right, theirs, expect_theirs)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5)
    return outcomes


class TestHandshake:
    def test_matched_hellos_accept_both_ends(self):
        outcomes = exchange(hello(party_id="p0"), hello(party_id="p1"),
                            expect_mine="p1", expect_theirs="p0")
        assert outcomes["mine"].party_id == "p1"
        assert outcomes["theirs"].party_id == "p0"

    @pytest.mark.parametrize("field,value,expected", [
        ("version", PROTOCOL_VERSION + 1, "protocol version"),
        ("session_id", "run-2", "session id"),
        ("pair_left", "p9", "pair"),
        ("config_digest", "e" * 64, "config digest"),
    ])
    def test_mismatch_refused_with_field_name(self, field, value, expected):
        outcomes = exchange(hello(party_id="p0"),
                            hello(party_id="p1", **{field: value}),
                            expect_mine="p1", expect_theirs="p0")
        failures = [outcome for outcome in outcomes.values()
                    if isinstance(outcome, HandshakeError)]
        assert failures, f"a {field} mismatch must refuse the link"
        assert any(expected in str(failure) for failure in failures)

    def test_wrong_party_on_the_far_end_refused(self):
        outcomes = exchange(hello(party_id="p0"),
                            hello(party_id="p7"),
                            expect_mine="p1", expect_theirs="p0")
        assert isinstance(outcomes["mine"], HandshakeError)
        assert "p7" in str(outcomes["mine"])

    def test_refusal_reason_reaches_the_refused_peer(self):
        """The refusing side sends a goodbye naming the mismatch, so the
        other process logs the same diagnosis instead of a bare EOF."""
        outcomes = exchange(hello(party_id="p0"),
                            hello(party_id="p1", session_id="stale-run"),
                            expect_mine="p1", expect_theirs="p0")
        assert all(isinstance(outcome, HandshakeError)
                   for outcome in outcomes.values())
        assert any("session id" in str(outcome)
                   for outcome in outcomes.values())

    def test_epoch_mismatch_refused_field_by_field(self):
        """A stale-epoch link must be refused like any other binding
        mismatch, with both ends seeing the two epoch values (the lower
        side adopts the higher epoch and re-links from scratch)."""
        outcomes = exchange(hello(party_id="p0", epoch=2),
                            hello(party_id="p1", epoch=0),
                            expect_mine="p1", expect_theirs="p0")
        failures = [outcome for outcome in outcomes.values()
                    if isinstance(outcome, HandshakeError)]
        assert failures, "an epoch mismatch must refuse the link"
        epoch_failures = [failure for failure in failures
                          if failure.field_name == "epoch"]
        assert epoch_failures
        assert {epoch_failures[0].ours, epoch_failures[0].theirs} == {0, 2}

    def test_matching_epochs_accept(self):
        outcomes = exchange(hello(party_id="p0", epoch=3),
                            hello(party_id="p1", epoch=3),
                            expect_mine="p1", expect_theirs="p0")
        assert outcomes["mine"].epoch == 3
        assert outcomes["theirs"].epoch == 3

    def test_passes_done_is_informational_never_refused(self):
        """The completed-pass count negotiates the resume point; links
        between parties at different boundaries must still come up."""
        outcomes = exchange(hello(party_id="p0", passes_done=2),
                            hello(party_id="p1", passes_done=0),
                            expect_mine="p1", expect_theirs="p0")
        assert outcomes["mine"].passes_done == 0
        assert outcomes["theirs"].passes_done == 2

    def test_peer_vanishing_mid_handshake(self):
        left_sock, right_sock = socket.socketpair()
        left = FramedConnection(left_sock, timeout_s=2.0, name="left")
        right_sock.close()
        with pytest.raises(HandshakeError, match="vanished"):
            perform_handshake(left, hello(), expected_peer="p1")

    def test_malformed_hello_record(self):
        with pytest.raises(HandshakeError, match="malformed"):
            Hello.from_wire(b"N")  # serialized None: wrong shape

    def test_hello_roundtrip(self):
        record = hello()
        assert Hello.from_wire(record.to_wire()) == record
