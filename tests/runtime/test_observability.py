"""End-to-end observability: live metrics, traces, privacy, CLI.

The acceptance bar of the observability PR: a fully instrumented
3-party daemon run stays bit-identical to the in-process reference; the
standing mesh answers live ``get_metrics`` snapshots with the session,
restart, pool, and per-pair link figures; the emitted traces and
metrics contain *no* private key material (checked against the decimal
expansions of the actual keys the run used); and the ``repro stats`` /
``repro trace summarize`` CLI surfaces work against the same mesh.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.crypto.keycache import cached_paillier_keypair
from repro.runtime.client import DaemonFleet
from repro.runtime.orchestrator import build_manifest
from tests.runtime.test_daemon import (
    assert_matches_reference,
    make_config,
    reference_run,
    spec_ports,
    workload,
)


def _private_decimal_strings(config, parties: int) -> list[str]:
    """Decimal expansions of every private key component the mesh
    derives -- the strings that must never appear in any emission."""
    secrets = []
    for slot in range(parties):
        pair = cached_paillier_keypair(config.smc.paillier_bits,
                                       100 * config.smc.key_seed + slot)
        key = pair.private_key
        secrets += [str(key.lam), str(key.mu), str(key.p), str(key.q)]
    return secrets


@pytest.mark.sockets
class TestInstrumentedMesh:
    def test_instrumented_run_metrics_traces_and_privacy(self, tmp_path):
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        trace_dir = tmp_path / "traces"
        names = list(by_party)

        with DaemonFleet(names, metrics_enabled=True,
                         trace_dir=str(trace_dir)) as fleet:
            with fleet.client() as client:
                manifest = build_manifest(by_party, config, seeds,
                                          session_id="obs-e2e-000",
                                          ports=spec_ports(names))
                run = client.run(manifest, by_party, 120)
                snapshots = client.get_metrics(timeout=30)

        # Bit-identity: instrumentation observed, never participated.
        assert_matches_reference(run, reference, digests)

        # Live snapshot shape: every daemon answered with the session,
        # restart, pool, and per-pair link figures `repro stats` needs.
        assert set(snapshots) == set(names)
        for name in names:
            snapshot = snapshots[name]
            assert snapshot["enabled"] is True
            gauges = snapshot["gauges"]
            counters = snapshot["counters"]
            assert gauges["repro_sessions_run"] == 1
            assert gauges["repro_sessions_active"] == 0
            assert counters["repro_sessions_admitted_total"] == 1
            assert counters["repro_sessions_completed_total"] == 1
            assert gauges["repro_randomness{stat=factors_consumed}"] > 0
            assert any(key.startswith("repro_link_frames_total{")
                       for key in counters)
            assert any(key.startswith("repro_link_bytes_total{")
                       for key in counters)
            assert gauges["repro_daemon_threads"] > 0

        # Per-session runtime_info stays the report-level source the
        # bench consumes -- same events as the registry counters.
        info = run.reports[names[0]].runtime_info
        assert info["runtime"] == "daemon"
        assert info["pool"]["consumed"] > 0

        # Traces: one file per party, spans rooted in our session.
        from repro.obs.trace import summarize_trace_dir

        trace_files = sorted(path.name
                             for path in trace_dir.glob("*.jsonl"))
        assert trace_files == sorted(f"{name}.jsonl" for name in names)
        summary = summarize_trace_dir(trace_dir)
        session = summary["sessions"]["obs-e2e-000"]
        assert set(session["parties"]) == set(names)
        for entry in session["parties"].values():
            assert entry["duration"] > 0
            assert len(entry["passes"]) == len(names)
            drive = [row for row in entry["passes"]
                     if row["role"] == "drive"]
            assert len(drive) == 1
            assert drive[0]["queries"] > 0
            assert drive[0]["critical_path"] > 0

        # Privacy: the decimal expansion of no private key component
        # appears in anything the run emitted.
        emitted = json.dumps(snapshots, sort_keys=True)
        for path in trace_dir.glob("*.jsonl"):
            emitted += path.read_text()
        for secret in _private_decimal_strings(config, len(names)):
            assert secret not in emitted

    def test_disabled_metrics_arm_stays_bit_identical(self):
        """The null-instrument fast path produces the same observables
        as the instrumented arm and the in-process reference."""
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        reference, digests = reference_run(by_party, config, seeds)
        with DaemonFleet(list(by_party), metrics_enabled=False) as fleet:
            with fleet.client() as client:
                manifest = build_manifest(by_party, config, seeds,
                                          session_id="obs-off-000",
                                          ports=spec_ports(by_party))
                run = client.run(manifest, by_party, 120)
                snapshots = client.get_metrics(timeout=30)
        assert_matches_reference(run, reference, digests)
        # A disabled daemon still answers -- with an empty snapshot.
        for snapshot in snapshots.values():
            assert snapshot["enabled"] is False
            assert snapshot["counters"] == {}


@pytest.mark.sockets
class TestObservabilityCli:
    def test_stats_and_trace_summarize(self, tmp_path, capsys):
        by_party = workload(3)
        seeds = [31, 32, 33]
        config = make_config()
        trace_dir = tmp_path / "traces"
        names = list(by_party)

        with DaemonFleet(names, trace_dir=str(trace_dir)) as fleet:
            spec_path = tmp_path / "mesh.json"
            spec_path.write_text(fleet.spec.to_json())
            with fleet.client() as client:
                manifest = build_manifest(by_party, config, seeds,
                                          session_id="obs-cli-000",
                                          ports=spec_ports(names))
                client.run(manifest, by_party, 120)

            assert cli_main(["stats", "--spec", str(spec_path)]) == 0
            text = capsys.readouterr().out
            for name in names:
                assert f"{name}: sessions run=1" in text
            assert "pool hit rate" in text
            assert "link" in text

            assert cli_main(["stats", "--spec", str(spec_path),
                             "--json"]) == 0
            parsed = json.loads(capsys.readouterr().out)
            assert set(parsed) == set(names)
            assert parsed[names[0]]["enabled"] is True

        assert cli_main(["trace", "summarize",
                         "--trace-dir", str(trace_dir)]) == 0
        text = capsys.readouterr().out
        assert "session obs-cli-000" in text
        for name in names:
            assert f"party {name}:" in text
        assert "[drive]" in text
        assert "critical-path" in text

    def test_trace_summarize_empty_dir_fails_loudly(self, tmp_path,
                                                    capsys):
        assert cli_main(["trace", "summarize",
                         "--trace-dir", str(tmp_path)]) == 1
        assert "no session spans" in capsys.readouterr().err
