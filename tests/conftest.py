"""Shared fixtures: channels, parties, sessions, cached keys.

Conventions used across the suite:

- Crypto tests use 256-bit Paillier / 512-bit RSA keys via the
  deterministic key cache (``key_seed``), so key generation cost is paid
  once per session, not per test.
- Clustering-layer tests that are not about cryptography use the
  ``oracle`` comparison backend (the ideal functionality), which keeps
  whole-protocol runs fast while exercising identical control flow.
"""

from __future__ import annotations

import random

import pytest

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession


@pytest.fixture
def channel() -> Channel:
    return Channel()


@pytest.fixture
def parties(channel):
    return make_party_pair(channel, alice_seed=101, bob_seed=202)


@pytest.fixture
def bitwise_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="bitwise", key_seed=11)


@pytest.fixture
def ympp_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, rsa_bits=512, comparison="ympp",
                     key_seed=12)


@pytest.fixture
def oracle_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="oracle", key_seed=13)


@pytest.fixture
def bitwise_session(parties, bitwise_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, bitwise_config)


@pytest.fixture
def ympp_session(parties, ympp_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, ympp_config)


@pytest.fixture
def oracle_session(parties, oracle_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, oracle_config)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDB5CA)
