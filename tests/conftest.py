"""Shared fixtures: channels, parties, sessions, cached keys.

Conventions used across the suite:

- Crypto tests use 256-bit Paillier / 512-bit RSA keys via the
  deterministic key cache (``key_seed``), so key generation cost is paid
  once per session, not per test.
- Clustering-layer tests that are not about cryptography use the
  ``oracle`` comparison backend (the ideal functionality), which keeps
  whole-protocol runs fast while exercising identical control flow.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

# Link-auth test matrix: setting REPRO_TEST_PSK re-runs the socket
# suite with every link authenticated under that PSK (CI runs the
# `sockets` smoke both ways).  The knob injects a *default* psk into
# the two runtime entry points tests use -- orchestrate_run and
# DaemonFleet -- so the whole existing matrix exercises MAC'd frames
# without each test growing an auth parameter; tests that pass an
# explicit psk (including the wrong-PSK rejection tests) keep it.
_matrix_psk = os.environ.get("REPRO_TEST_PSK")
if _matrix_psk:
    import repro.runtime.client as _client_module
    import repro.runtime.orchestrator as _orchestrator_module

    # Direct run_party() calls (offline resume tests) find the secret
    # the same way a real operator's shell provides it.
    os.environ.setdefault("REPRO_PSK", _matrix_psk)

    _plain_orchestrate_run = _orchestrator_module.orchestrate_run

    def _orchestrate_run_with_auth(*args, **kwargs):
        kwargs.setdefault("psk", _matrix_psk)
        return _plain_orchestrate_run(*args, **kwargs)

    _orchestrator_module.orchestrate_run = _orchestrate_run_with_auth

    _plain_fleet_init = _client_module.DaemonFleet.__init__

    def _fleet_init_with_auth(self, names, **kwargs):
        kwargs.setdefault("psk", _matrix_psk)
        _plain_fleet_init(self, names, **kwargs)

    _client_module.DaemonFleet.__init__ = _fleet_init_with_auth


@pytest.fixture
def channel() -> Channel:
    return Channel()


@pytest.fixture
def parties(channel):
    return make_party_pair(channel, alice_seed=101, bob_seed=202)


@pytest.fixture
def bitwise_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="bitwise", key_seed=11)


@pytest.fixture
def ympp_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, rsa_bits=512, comparison="ympp",
                     key_seed=12)


@pytest.fixture
def oracle_config() -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="oracle", key_seed=13)


@pytest.fixture
def bitwise_session(parties, bitwise_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, bitwise_config)


@pytest.fixture
def ympp_session(parties, ympp_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, ympp_config)


@pytest.fixture
def oracle_session(parties, oracle_config) -> SmcSession:
    alice, bob = parties
    return SmcSession(alice, bob, oracle_config)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDB5CA)
