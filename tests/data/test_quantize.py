"""Tests for fixed-point quantization helpers."""

from hypothesis import given, strategies as st

from repro.data.quantize import (
    max_coordinate,
    quantize_eps,
    quantize_points,
    squared_distance_bound,
)


class TestQuantizePoints:
    def test_basic(self):
        assert quantize_points([(1.0, 2.5)], scale=10) == [(10, 25)]

    def test_default_scale(self):
        assert quantize_points([(1.0,)]) == [(100,)]

    def test_empty(self):
        assert quantize_points([]) == []


class TestQuantizeEps:
    def test_exact(self):
        assert quantize_eps(1.0, scale=100) == 10000

    def test_consistency_with_points(self):
        """Points exactly eps apart must satisfy dist^2 <= eps^2."""
        points = quantize_points([(0.0, 0.0), (0.0, 1.0)], scale=100)
        eps_squared = quantize_eps(1.0, scale=100)
        actual = sum((a - b) ** 2 for a, b in zip(*points))
        assert actual <= eps_squared


class TestBounds:
    def test_max_coordinate(self):
        assert max_coordinate([(1, -9), (3, 4)]) == 9

    def test_max_coordinate_empty(self):
        assert max_coordinate([]) == 0

    @given(st.lists(st.tuples(st.integers(min_value=-1000, max_value=1000),
                              st.integers(min_value=-1000, max_value=1000)),
                    min_size=1, max_size=20),
           st.lists(st.tuples(st.integers(min_value=-1000, max_value=1000),
                              st.integers(min_value=-1000, max_value=1000)),
                    min_size=1, max_size=20))
    def test_squared_distance_bound_is_a_bound(self, side_a, side_b):
        bound = squared_distance_bound(side_a, side_b)
        for a in side_a:
            for b in side_b:
                assert sum((x - y) ** 2 for x, y in zip(a, b)) <= bound

    def test_bound_minimum(self):
        assert squared_distance_bound([], []) >= 1
