"""Tests for the three partition models (Figures 2-4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset
from repro.data.partitioning import (
    ALICE,
    BOB,
    ArbitraryPartition,
    HorizontalPartition,
    PartitionError,
    VerticalPartition,
    partition_arbitrary,
    partition_from_masks,
    partition_horizontal,
    partition_vertical,
)

DATASET = Dataset.from_points([(1, 2, 3), (4, 5, 6), (7, 8, 9), (10, 11, 12)])


class TestHorizontal:
    def test_split(self):
        partition = partition_horizontal(DATASET, 1)
        assert partition.alice_points == ((1, 2, 3),)
        assert len(partition.bob_points) == 3
        assert partition.total_size == 4
        assert partition.dimensions == 3

    def test_merged_roundtrip(self):
        partition = partition_horizontal(DATASET, 2)
        assert partition.merged().records == DATASET.records

    def test_out_of_range(self):
        with pytest.raises(PartitionError, match="alice_count"):
            partition_horizontal(DATASET, 5)

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(PartitionError, match="inconsistent"):
            HorizontalPartition(alice_points=((1, 2),),
                                bob_points=((1, 2, 3),))

    def test_empty_side_allowed(self):
        partition = partition_horizontal(DATASET, 0)
        assert partition.alice_points == ()

    @given(st.integers(min_value=0, max_value=4))
    def test_merge_preserves_everything(self, alice_count):
        partition = partition_horizontal(DATASET, alice_count)
        assert sorted(partition.merged().records) == sorted(DATASET.records)


class TestVertical:
    def test_split(self):
        partition = partition_vertical(DATASET, 2)
        assert partition.alice_columns == (0, 1)
        assert partition.bob_columns == (2,)
        assert partition.alice_records[0] == (1, 2)
        assert partition.bob_records[0] == (3,)
        assert partition.size == 4

    def test_merged_roundtrip(self):
        partition = partition_vertical(DATASET, 1)
        assert partition.merged().records == DATASET.records

    def test_both_parties_need_attributes(self):
        with pytest.raises(PartitionError, match="both parties"):
            partition_vertical(DATASET, 0)
        with pytest.raises(PartitionError, match="both parties"):
            partition_vertical(DATASET, 3)

    def test_overlapping_columns_rejected(self):
        with pytest.raises(PartitionError, match="overlap"):
            VerticalPartition(alice_columns=(0, 1), bob_columns=(1, 2),
                              alice_records=((1, 2),), bob_records=((2, 3),))

    def test_record_count_mismatch_rejected(self):
        with pytest.raises(PartitionError, match="record counts"):
            VerticalPartition(alice_columns=(0,), bob_columns=(1,),
                              alice_records=((1,), (2,)),
                              bob_records=((1,),))


class TestArbitrary:
    def test_ownership_accessors(self):
        partition = partition_from_masks(
            DATASET, [(ALICE, BOB, ALICE)] * 4)
        assert partition.owner_of(0, 0) == ALICE
        assert partition.owner_of(0, 1) == BOB
        assert partition.value_for(ALICE, 0, 0) == 1
        with pytest.raises(PartitionError, match="does not own"):
            partition.value_for(BOB, 0, 0)

    def test_attributes_owned_by(self):
        partition = partition_from_masks(DATASET, [(ALICE, BOB, ALICE)] * 4)
        assert partition.attributes_owned_by(ALICE, 0) == [0, 2]
        assert partition.attributes_owned_by(BOB, 0) == [1]

    def test_fully_owned(self):
        partition = partition_from_masks(
            DATASET, [(ALICE,) * 3, (BOB,) * 3, (ALICE, BOB, ALICE),
                      (BOB,) * 3])
        assert partition.fully_owned_by(0) == ALICE
        assert partition.fully_owned_by(1) == BOB
        assert partition.fully_owned_by(2) is None

    def test_unknown_owner_rejected(self):
        with pytest.raises(PartitionError, match="unknown owner"):
            partition_from_masks(DATASET, [("carol", ALICE, BOB)] * 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitionError, match="owners"):
            partition_from_masks(DATASET, [(ALICE, BOB)] * 4)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=1000))
    def test_random_partition_is_valid(self, shared_fraction, seed):
        partition = partition_arbitrary(DATASET, random.Random(seed),
                                        shared_fraction=shared_fraction)
        assert partition.size == DATASET.size
        assert partition.merged().records == DATASET.records
        for record in range(partition.size):
            for attribute in range(partition.dimensions):
                assert partition.owner_of(record, attribute) in (ALICE, BOB)

    def test_shared_fraction_one_splits_every_record(self):
        partition = partition_arbitrary(DATASET, random.Random(0),
                                        shared_fraction=1.0)
        for record in range(partition.size):
            assert partition.fully_owned_by(record) is None

    def test_shared_fraction_zero_never_splits(self):
        partition = partition_arbitrary(DATASET, random.Random(0),
                                        shared_fraction=0.0)
        for record in range(partition.size):
            assert partition.fully_owned_by(record) is not None

    def test_invalid_fraction(self):
        with pytest.raises(PartitionError, match="shared_fraction"):
            partition_arbitrary(DATASET, random.Random(0),
                                shared_fraction=1.5)
