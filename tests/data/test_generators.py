"""Tests for synthetic workload generators."""

import random

from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.data.generators import (
    concentric_rings,
    gaussian_blobs,
    grid_clusters,
    interleave_for_horizontal,
    two_moons,
    uniform_noise,
)
from repro.data.quantize import quantize_eps


class TestGaussianBlobs:
    def test_counts_and_shape(self):
        points = gaussian_blobs(random.Random(0),
                                centers=[(0, 0), (10, 10)],
                                points_per_blob=7)
        assert len(points) == 14
        assert all(len(p) == 2 for p in points)
        assert all(isinstance(c, int) for p in points for c in p)

    def test_separated_blobs_cluster_separately(self):
        points = gaussian_blobs(random.Random(1),
                                centers=[(0, 0), (20, 20)],
                                points_per_blob=15, spread=0.3)
        labels = dbscan(points, quantize_eps(1.5), 4)
        first = set(labels.as_tuple()[:15]) - {-1}
        second = set(labels.as_tuple()[15:]) - {-1}
        assert first and second and not (first & second)

    def test_deterministic_under_seed(self):
        kwargs = dict(centers=[(0.0, 0.0)], points_per_blob=5)
        assert gaussian_blobs(random.Random(5), **kwargs) \
            == gaussian_blobs(random.Random(5), **kwargs)

    def test_higher_dimensions(self):
        points = gaussian_blobs(random.Random(2), centers=[(0, 0, 0, 0)],
                                points_per_blob=3)
        assert all(len(p) == 4 for p in points)


class TestTwoMoons:
    def test_counts(self):
        points = two_moons(random.Random(0), points_per_moon=20)
        assert len(points) == 40

    def test_moons_are_disjoint_clusters(self):
        points = two_moons(random.Random(3), points_per_moon=60, noise=0.08)
        labels = dbscan(points, quantize_eps(0.8), 4)
        clusters = {label for label in labels.as_tuple() if label != -1}
        assert len(clusters) >= 2


class TestConcentricRings:
    def test_counts(self):
        points = concentric_rings(random.Random(0), points_per_ring=10)
        assert len(points) == 20

    def test_rings_separate(self):
        points = concentric_rings(random.Random(4), points_per_ring=70,
                                  radii=(1.5, 5.0), noise=0.05)
        labels = dbscan(points, quantize_eps(0.7), 3)
        inner = {labels[i] for i in range(70)} - {-1}
        outer = {labels[i] for i in range(70, 140)} - {-1}
        assert inner and outer and not (inner & outer)


class TestUniformNoise:
    def test_within_box(self):
        points = uniform_noise(random.Random(0), count=50,
                               low=-2.0, high=2.0)
        assert len(points) == 50
        assert all(-200 <= c <= 200 for p in points for c in p)

    def test_dimensions(self):
        points = uniform_noise(random.Random(0), count=5, dimensions=3)
        assert all(len(p) == 3 for p in points)


class TestGridClusters:
    def test_deterministic(self):
        assert grid_clusters() == grid_clusters()

    def test_counts(self):
        points = grid_clusters(clusters_per_side=2, cluster_size=3)
        assert len(points) == 4 * 9

    def test_exact_clustering(self):
        """The designed property: obvious ground truth for mid eps."""
        points = grid_clusters(clusters_per_side=2, cluster_size=3,
                               cluster_step=0.2, cluster_gap=10.0)
        labels = dbscan(points, quantize_eps(0.5), 3)
        clusters = {label for label in labels.as_tuple() if label != -1}
        assert len(clusters) == 4


class TestInterleave:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.1, max_value=0.9))
    def test_partition_is_total(self, seed, fraction):
        points = grid_clusters(clusters_per_side=2, cluster_size=3)
        alice, bob = interleave_for_horizontal(points, random.Random(seed),
                                               fraction)
        assert len(alice) + len(bob) == len(points)
        assert sorted(alice + bob) == sorted(points)
