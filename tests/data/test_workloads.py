"""Tests for the named workload registry."""

import pytest

from repro.clustering.dbscan import dbscan
from repro.data.quantize import quantize_eps
from repro.data.workloads import (
    WORKLOAD_NAMES,
    WorkloadError,
    all_standard_workloads,
    standard_workload,
)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in WORKLOAD_NAMES:
            workload = standard_workload(name)
            assert workload.name == name
            assert len(workload.points) > 0

    def test_unknown_name(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            standard_workload("fractal")

    def test_unknown_size(self):
        with pytest.raises(WorkloadError, match="unknown size"):
            standard_workload("blobs", size="huge")

    def test_sizes_scale(self):
        small = standard_workload("blobs", size="small")
        large = standard_workload("blobs", size="large")
        assert len(large.points) > len(small.points)

    def test_deterministic_under_seed(self):
        assert standard_workload("moons", seed=3).points \
            == standard_workload("moons", seed=3).points

    def test_all_standard_workloads(self):
        workloads = all_standard_workloads()
        assert [w.name for w in workloads] == list(WORKLOAD_NAMES)


class TestParametersResolveStructure:
    @pytest.mark.parametrize("name", [n for n in WORKLOAD_NAMES
                                      if n != "noisy_blob"])
    def test_expected_cluster_count(self, name):
        workload = standard_workload(name)
        labels = dbscan(list(workload.points),
                        quantize_eps(workload.eps, 100),
                        workload.min_pts)
        found = {label for label in labels.as_tuple() if label != -1}
        assert len(found) == workload.expected_clusters, name

    def test_noisy_blob_has_noise(self):
        workload = standard_workload("noisy_blob")
        labels = dbscan(list(workload.points),
                        quantize_eps(workload.eps, 100),
                        workload.min_pts)
        assert -1 in labels.as_tuple()
