"""Tests for the Dataset container."""

import pytest

from repro.data.dataset import Dataset, DatasetError


class TestDataset:
    def test_from_points(self):
        dataset = Dataset.from_points([(1, 2), (3, 4)])
        assert dataset.size == 2
        assert dataset.dimensions == 2
        assert dataset[1] == (3, 4)

    def test_iteration(self):
        dataset = Dataset.from_points([(1,), (2,)])
        assert list(dataset) == [(1,), (2,)]

    def test_ragged_rejected(self):
        with pytest.raises(DatasetError, match="attributes"):
            Dataset.from_points([(1, 2), (3,)])

    def test_empty_allowed_but_dimensionless(self):
        dataset = Dataset.from_points([])
        assert dataset.size == 0
        with pytest.raises(DatasetError, match="empty"):
            __ = dataset.dimensions

    def test_max_abs_coordinate(self):
        dataset = Dataset.from_points([(1, -9), (3, 4)])
        assert dataset.max_abs_coordinate() == 9

    def test_max_abs_of_empty(self):
        assert Dataset.from_points([]).max_abs_coordinate() == 0

    def test_lists_coerced_to_tuples(self):
        dataset = Dataset.from_points([[1, 2], [3, 4]])
        assert dataset[0] == (1, 2)

    def test_len(self):
        assert len(Dataset.from_points([(0,)])) == 1
