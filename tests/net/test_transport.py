"""Transport fabrics: delivery semantics, timing model, thread safety."""

import socket
import threading

import pytest

from repro.net.channel import Channel, ProtocolDesyncError
from repro.net.framing import FRAME_CONTROL, FramedConnection
from repro.net.party import make_party_pair
from repro.net.stats import CommunicationStats
from repro.net.transport import (
    InProcessTransport,
    LinkProfile,
    SimulatedNetworkTransport,
    TcpTransport,
    ThreadedTransport,
    TransportClosedError,
    TransportError,
    TransportSpec,
    TransportTimeoutError,
    derive_jitter_rng,
)
from repro.smc.session import SmcConfig, SmcSession, channel_for_config


def tcp_transport_pair(timeout_s: float = 2.0):
    left_sock, right_sock = socket.socketpair()
    left = TcpTransport("alice", "bob",
                        FramedConnection(left_sock, timeout_s=timeout_s,
                                         name="alice@pair"),
                        local_name="alice")
    right = TcpTransport("alice", "bob",
                         FramedConnection(right_sock, timeout_s=timeout_s,
                                          name="bob@pair"),
                         local_name="bob")
    return left, right


class TestInProcessTransport:
    def test_fifo_and_desync(self):
        transport = InProcessTransport("a", "b")
        transport.deliver("a", "b", "x", b"1")
        transport.deliver("a", "b", "y", b"2")
        assert transport.collect("b", None) == ("x", b"1")
        assert transport.collect("b", None) == ("y", b"2")
        with pytest.raises(ProtocolDesyncError, match="inbox is empty"):
            transport.collect("b", "z")

    def test_unknown_endpoint(self):
        transport = InProcessTransport("a", "b")
        with pytest.raises(TransportError, match="not an endpoint"):
            transport.deliver("a", "c", "x", b"1")

    def test_no_simulated_time(self):
        assert InProcessTransport("a", "b").simulated_seconds == 0.0


class TestThreadedTransport:
    def test_single_thread_choreography_works(self):
        """Send-then-receive in one thread never blocks."""
        channel = Channel(transport=ThreadedTransport("alice", "bob"))
        channel.left.send("m", [1, 2])
        assert channel.right.receive("m") == [1, 2]

    def test_two_thread_party_programs(self):
        """Each party program on its own thread; blocking receive
        synchronizes a ping-pong without explicit coordination."""
        channel = Channel(transport=ThreadedTransport("alice", "bob",
                                                      timeout_s=10.0))
        alice, bob = channel.left, channel.right
        results = {}

        def alice_program():
            alice.send("ping", 1)
            results["alice"] = alice.receive("pong")

        def bob_program():
            value = bob.receive("ping")
            bob.send("pong", value + 1)
            results["bob"] = value

        threads = [threading.Thread(target=alice_program),
                   threading.Thread(target=bob_program)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert results == {"alice": 2, "bob": 1}
        assert channel.stats.total_messages == 2

    def test_timeout_raises_desync_subclass(self):
        transport = ThreadedTransport("a", "b", timeout_s=0.05)
        with pytest.raises(TransportTimeoutError, match="never sent"):
            transport.collect("a", "hello")
        assert issubclass(TransportTimeoutError, ProtocolDesyncError)

    def test_invalid_timeout(self):
        with pytest.raises(TransportError, match="timeout"):
            ThreadedTransport("a", "b", timeout_s=0)

    def test_close_unblocks_parked_receiver_immediately(self):
        """Tearing the link down must not stall blocked receivers for
        their full timeout: close() poisons the inboxes and the parked
        get fails fast with TransportClosedError."""
        import time

        transport = ThreadedTransport("a", "b", timeout_s=30.0)
        outcome = {}

        def receiver():
            started = time.perf_counter()
            with pytest.raises(TransportClosedError, match="link closed"):
                transport.collect("a", "reply")
            outcome["waited"] = time.perf_counter() - started

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)  # let the receiver park in the blocking get
        transport.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome["waited"] < 5.0  # not the 30s timeout
        # Later receives fail fast too (the poison is re-queued).
        with pytest.raises(TransportClosedError):
            transport.collect("a", "anything")

    def test_close_keeps_pending_messages_readable(self):
        transport = ThreadedTransport("a", "b")
        transport.deliver("b", "a", "last", b"payload")
        transport.close()
        assert transport.collect("a", "last") == ("last", b"payload")
        with pytest.raises(TransportClosedError):
            transport.collect("a", "next")

    def test_full_protocol_bit_identical_to_in_process(self):
        """The fabric changes delivery, never the message sequence."""
        def run(transport):
            channel = Channel(transport=transport)
            session = SmcSession(*make_party_pair(channel, 11, 12),
                                 SmcConfig(key_seed=321, paillier_bits=128))
            outcome = session.compare_leq(session.alice, 3, session.bob, 7,
                                          lo=0, hi=100)
            entries = [(e.sender, e.receiver, e.label, e.value)
                       for e in channel.transcript.entries]
            return outcome.result, entries

        in_process = run(InProcessTransport())
        threaded = run(ThreadedTransport())
        assert in_process == threaded


class TestSimulatedNetworkTransport:
    def test_latency_charged_per_round_trip(self):
        transport = SimulatedNetworkTransport("a", "b", latency_s=0.01)
        stats = CommunicationStats()
        transport.attach_stats(stats)
        transport.deliver("a", "b", "m1", b"x")
        transport.collect("b", "m1")        # b waits one latency
        transport.deliver("b", "a", "m2", b"y")
        transport.collect("a", "m2")        # a waits for the reply
        assert transport.clock_of("b") == pytest.approx(0.01)
        assert transport.clock_of("a") == pytest.approx(0.02)
        assert transport.elapsed == pytest.approx(0.02)
        assert stats.simulated_seconds == pytest.approx(0.02)
        assert stats.simulated_waits["a"] == pytest.approx(0.01)

    def test_consecutive_sends_pipeline(self):
        """Same-direction messages share the latency (one round)."""
        transport = SimulatedNetworkTransport("a", "b", latency_s=0.01)
        for index in range(5):
            transport.deliver("a", "b", f"m{index}", b"x")
        for index in range(5):
            transport.collect("b", f"m{index}")
        assert transport.elapsed == pytest.approx(0.01)

    def test_bandwidth_charges_transfer_time(self):
        transport = SimulatedNetworkTransport(
            "a", "b", latency_s=0.0, bandwidth_bps=8000)  # 1000 bytes/s
        transport.deliver("a", "b", "m", b"x" * 500)      # 0.5s transfer
        transport.collect("b", "m")
        assert transport.elapsed == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(TransportError, match="latency"):
            SimulatedNetworkTransport("a", "b", latency_s=-1)
        with pytest.raises(TransportError, match="bandwidth"):
            SimulatedNetworkTransport("a", "b", bandwidth_bps=0)

    def test_protocol_equivalence_and_latency_visibility(self):
        """Same messages as in-process; rounds * latency shows up."""
        def run(transport):
            channel = Channel(transport=transport)
            session = SmcSession(*make_party_pair(channel, 11, 12),
                                 SmcConfig(key_seed=321, paillier_bits=128))
            session.compare_leq(session.alice, 3, session.bob, 7,
                                lo=0, hi=100)
            return channel

        plain = run(InProcessTransport())
        simulated = run(SimulatedNetworkTransport(latency_s=0.005))
        assert [e.value for e in plain.transcript.entries] \
            == [e.value for e in simulated.transcript.entries]
        assert plain.stats.rounds == simulated.stats.rounds
        # Every direction switch pays one latency on the critical path.
        assert simulated.simulated_seconds \
            == pytest.approx(0.005 * simulated.stats.rounds)
        assert plain.simulated_seconds == 0.0


class TestSimulatedJitter:
    def test_zero_jitter_is_the_fixed_latency_model(self):
        transport = SimulatedNetworkTransport("a", "b", latency_s=0.01,
                                              jitter_s=0.0)
        transport.deliver("a", "b", "m", b"x")
        transport.collect("b", "m")
        assert transport.elapsed == pytest.approx(0.01)

    def test_seeded_jitter_is_deterministic(self):
        def run(seed):
            transport = SimulatedNetworkTransport(
                "a", "b", latency_s=0.01, jitter_s=0.004,
                jitter_rng=derive_jitter_rng(seed, "a", "b"))
            for index in range(4):
                transport.deliver("a", "b", f"m{index}", b"x")
                transport.collect("b", f"m{index}")
                transport.deliver("b", "a", f"r{index}", b"y")
                transport.collect("a", f"r{index}")
            return transport.elapsed

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_jitter_adds_to_the_base_latency(self):
        transport = SimulatedNetworkTransport(
            "a", "b", latency_s=0.01, jitter_s=0.005,
            jitter_rng=derive_jitter_rng(3, "a", "b"))
        transport.deliver("a", "b", "m", b"x")
        transport.collect("b", "m")
        assert 0.01 <= transport.elapsed <= 0.015

    def test_jitter_never_reorders_in_flight_messages(self):
        """Head-of-line: a later message's lucky draw cannot yield an
        arrival before an earlier one already queued to the receiver."""
        transport = SimulatedNetworkTransport(
            "a", "b", latency_s=0.01, jitter_s=0.02,
            jitter_rng=derive_jitter_rng(5, "a", "b"))
        for index in range(32):
            transport.deliver("a", "b", f"m{index}", b"x")
        arrivals = [entry[2] for entry in transport._inboxes["b"]]
        assert arrivals == sorted(arrivals)

    def test_negative_jitter_rejected(self):
        with pytest.raises(TransportError, match="jitter"):
            SimulatedNetworkTransport("a", "b", jitter_s=-0.001)

    def test_derive_jitter_rng_is_per_link(self):
        assert derive_jitter_rng(1, "a", "b").random() \
            != derive_jitter_rng(1, "a", "c").random()
        assert derive_jitter_rng(1, "a", "b").random() \
            == derive_jitter_rng(1, "a", "b").random()


class TestPerLinkHeterogeneity:
    def test_override_applies_to_named_pair_only(self):
        spec = TransportSpec(
            kind="simulated", latency_s=0.005,
            per_link={("p0", "p2"): LinkProfile(latency_s=0.05)})
        slow = spec.create("p0", "p2")
        fast = spec.create("p0", "p1")
        assert slow.latency_s == 0.05
        assert fast.latency_s == 0.005

    def test_override_is_order_insensitive(self):
        spec = TransportSpec(
            kind="simulated",
            per_link={("p2", "p0"): LinkProfile(latency_s=0.07)})
        assert spec.create("p0", "p2").latency_s == 0.07

    def test_partial_profile_inherits_spec_defaults(self):
        spec = TransportSpec(
            kind="simulated", latency_s=0.004, bandwidth_bps=1e6,
            jitter_s=0.002,
            per_link={("a", "b"): LinkProfile(bandwidth_bps=5e5)})
        transport = spec.create("a", "b")
        assert transport.latency_s == 0.004
        assert transport.bandwidth_bps == 5e5
        assert transport.jitter_s == 0.002

    def test_spec_stays_hashable_after_normalization(self):
        spec = TransportSpec(
            kind="simulated",
            per_link={("a", "b"): LinkProfile(latency_s=0.01)})
        hash(spec)  # frozen dataclass with normalized tuple storage

    def test_bad_profiles_rejected(self):
        with pytest.raises(TransportError, match="twice"):
            TransportSpec(per_link={("a", "a"): LinkProfile()})
        with pytest.raises(TransportError, match="LinkProfile"):
            TransportSpec(per_link={("a", "b"): 0.5})
        with pytest.raises(TransportError, match="duplicate"):
            TransportSpec(per_link=((("a", "b"), LinkProfile()),
                                    (("b", "a"), LinkProfile())))

    def test_heterogeneous_mesh_timing_differs_observables_do_not(self):
        """A slow link changes only virtual clocks, never messages."""
        def run(spec):
            channel = channel_for_config(SmcConfig(transport=spec),
                                         "p0", "p1")
            session = SmcSession(*make_party_pair(channel, 21, 22),
                                 SmcConfig(key_seed=323, paillier_bits=128))
            session.compare_leq(session.alice, 4, session.bob, 9,
                                lo=0, hi=50)
            return channel

        uniform = run(TransportSpec(kind="simulated", latency_s=0.005))
        slowed = run(TransportSpec(
            kind="simulated", latency_s=0.005,
            per_link={("p0", "p1"): LinkProfile(latency_s=0.05)}))
        assert [e.value for e in uniform.transcript.entries] \
            == [e.value for e in slowed.transcript.entries]
        assert slowed.simulated_seconds \
            == pytest.approx(10 * uniform.simulated_seconds)


class TestTcpTransport:
    def test_split_party_programs_over_a_real_socket(self):
        """The genuine split execution: each endpoint in its own
        transport (here threads; processes in tests/runtime)."""
        left, right = tcp_transport_pair()
        channel_left = Channel(transport=left)
        channel_right = Channel(transport=right)
        results = {}

        def alice_program():
            channel_left.left.send("ping", [1, 2, 3])
            results["alice"] = channel_left.left.receive("pong")

        def bob_program():
            value = channel_right.right.receive("ping")
            channel_right.right.send("pong", sum(value))
            results["bob"] = value

        threads = [threading.Thread(target=alice_program),
                   threading.Thread(target=bob_program)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == {"alice": 6, "bob": [1, 2, 3]}
        # Each side accounts what it saw: one send, one receive.
        assert channel_left.stats.total_messages == 1
        assert channel_right.stats.total_messages == 1

    def test_remote_endpoint_rejected(self):
        left, _ = tcp_transport_pair()
        with pytest.raises(TransportError, match="not the local endpoint"):
            left.deliver("bob", "alice", "m", b"x")
        with pytest.raises(TransportError, match="not the local endpoint"):
            left.collect("bob", "m")

    def test_timeout_names_pair_and_last_frame(self):
        left, right = tcp_transport_pair(timeout_s=0.05)
        left.deliver("alice", "bob", "opening", b"x")
        assert right.collect("bob", "opening") == ("opening", b"x")
        with pytest.raises(TransportTimeoutError) as excinfo:
            right.collect("bob", "never_sent")
        message = str(excinfo.value)
        assert "never_sent" in message
        assert "'alice'<->'bob'" in message
        assert "'opening'" in message  # the last frame seen

    def test_close_reason_reaches_the_peer(self):
        left, right = tcp_transport_pair()
        left.close(reason="party alice died: ZeroDivisionError")
        with pytest.raises(TransportClosedError) as excinfo:
            right.collect("bob", "reply")
        message = str(excinfo.value)
        assert "alice died" in message
        assert "'alice'<->'bob'" in message

    def test_peer_death_without_goodbye_is_closed_not_hang(self):
        left, right = tcp_transport_pair()
        left.connection.close()  # crash: no goodbye frame
        with pytest.raises(TransportClosedError, match="link closed"):
            right.collect("bob", "reply")

    def test_control_frame_in_protocol_stream_is_desync(self):
        left, right = tcp_transport_pair()
        left.connection.write_frame(FRAME_CONTROL, b"oops")
        with pytest.raises(ProtocolDesyncError, match="control frame"):
            right.collect("bob", "m")

    def test_protocol_equivalence_over_socket(self):
        """A full SMC protocol run over TCP (choreographed from one
        thread per side is not possible; use the split ping-pong level
        plus the wire-format guarantee: frames carry the exact
        serialization bytes)."""
        left, right = tcp_transport_pair()
        from repro.net.serialization import serialize_message
        value = [12345678901234567890, "label", True, None]
        wire = serialize_message(value)
        left.deliver("alice", "bob", "blob", wire)
        label, received = right.collect("bob", "blob")
        assert (label, received) == ("blob", wire)


class TestThreadedShutdownDiagnosis:
    def test_close_reason_and_last_frame_in_error(self):
        transport = ThreadedTransport("alice", "bob", timeout_s=30.0)
        transport.deliver("alice", "bob", "phase_one", b"x")
        transport.collect("bob", "phase_one")
        transport.close(reason="party 'alice' died: RuntimeError: boom")
        with pytest.raises(TransportClosedError) as excinfo:
            transport.collect("bob", "phase_two")
        message = str(excinfo.value)
        assert "link closed" in message          # stable phrase
        assert "alice' died" in message          # the diagnosis
        assert "phase_one" in message            # how far the protocol got
        assert "'alice'<->'bob'" in message      # which pair

    def test_timeout_error_names_pair_and_progress(self):
        transport = ThreadedTransport("a", "b", timeout_s=0.05)
        with pytest.raises(TransportTimeoutError,
                           match="no frames were delivered"):
            transport.collect("a", "hello")


class TestTransportSpec:
    def test_kinds(self):
        assert isinstance(TransportSpec().create("a", "b"),
                          InProcessTransport)
        assert isinstance(TransportSpec(kind="threaded").create("a", "b"),
                          ThreadedTransport)
        simulated = TransportSpec(kind="simulated", latency_s=0.02,
                                  bandwidth_bps=1e6).create("a", "b")
        assert isinstance(simulated, SimulatedNetworkTransport)
        assert simulated.latency_s == 0.02
        assert simulated.bandwidth_bps == 1e6

    def test_unknown_kind(self):
        with pytest.raises(TransportError, match="unknown transport"):
            TransportSpec(kind="carrier-pigeon")

    def test_channel_for_config(self):
        config = SmcConfig(transport=TransportSpec(kind="simulated",
                                                   latency_s=0.003))
        channel = channel_for_config(config, "x", "y")
        assert isinstance(channel.transport, SimulatedNetworkTransport)
        assert channel.transport.left_name == "x"
        default = channel_for_config(SmcConfig())
        assert isinstance(default.transport, InProcessTransport)


class TestStatsThreadSafety:
    def test_concurrent_records_never_lose_counts(self):
        stats = CommunicationStats()
        per_thread = 2000

        def hammer(sender):
            for _ in range(per_thread):
                stats.record(sender, "peer", f"{sender}/label", 3)

        threads = [threading.Thread(target=hammer, args=(name,))
                   for name in ("t0", "t1", "t2", "t3")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.total_messages == 4 * per_thread
        assert stats.total_bytes == 12 * per_thread
        for name in ("t0", "t1", "t2", "t3"):
            assert stats.messages_by_direction[f"{name}->peer"] == per_thread

    def test_concurrent_transcript_indices_unique(self):
        from repro.net.transcript import Transcript
        transcript = Transcript()

        def hammer(sender):
            for _ in range(500):
                transcript.record(sender, "peer", "l", 1, 1)

        threads = [threading.Thread(target=hammer, args=(str(i),))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        indices = [entry.index for entry in transcript.entries]
        assert indices == list(range(2000))
