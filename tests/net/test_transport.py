"""Transport fabrics: delivery semantics, timing model, thread safety."""

import threading

import pytest

from repro.net.channel import Channel, ProtocolDesyncError
from repro.net.party import make_party_pair
from repro.net.stats import CommunicationStats
from repro.net.transport import (
    InProcessTransport,
    SimulatedNetworkTransport,
    ThreadedTransport,
    TransportClosedError,
    TransportError,
    TransportSpec,
    TransportTimeoutError,
)
from repro.smc.session import SmcConfig, SmcSession, channel_for_config


class TestInProcessTransport:
    def test_fifo_and_desync(self):
        transport = InProcessTransport("a", "b")
        transport.deliver("a", "b", "x", b"1")
        transport.deliver("a", "b", "y", b"2")
        assert transport.collect("b", None) == ("x", b"1")
        assert transport.collect("b", None) == ("y", b"2")
        with pytest.raises(ProtocolDesyncError, match="inbox is empty"):
            transport.collect("b", "z")

    def test_unknown_endpoint(self):
        transport = InProcessTransport("a", "b")
        with pytest.raises(TransportError, match="not an endpoint"):
            transport.deliver("a", "c", "x", b"1")

    def test_no_simulated_time(self):
        assert InProcessTransport("a", "b").simulated_seconds == 0.0


class TestThreadedTransport:
    def test_single_thread_choreography_works(self):
        """Send-then-receive in one thread never blocks."""
        channel = Channel(transport=ThreadedTransport("alice", "bob"))
        channel.left.send("m", [1, 2])
        assert channel.right.receive("m") == [1, 2]

    def test_two_thread_party_programs(self):
        """Each party program on its own thread; blocking receive
        synchronizes a ping-pong without explicit coordination."""
        channel = Channel(transport=ThreadedTransport("alice", "bob",
                                                      timeout_s=10.0))
        alice, bob = channel.left, channel.right
        results = {}

        def alice_program():
            alice.send("ping", 1)
            results["alice"] = alice.receive("pong")

        def bob_program():
            value = bob.receive("ping")
            bob.send("pong", value + 1)
            results["bob"] = value

        threads = [threading.Thread(target=alice_program),
                   threading.Thread(target=bob_program)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert results == {"alice": 2, "bob": 1}
        assert channel.stats.total_messages == 2

    def test_timeout_raises_desync_subclass(self):
        transport = ThreadedTransport("a", "b", timeout_s=0.05)
        with pytest.raises(TransportTimeoutError, match="never sent"):
            transport.collect("a", "hello")
        assert issubclass(TransportTimeoutError, ProtocolDesyncError)

    def test_invalid_timeout(self):
        with pytest.raises(TransportError, match="timeout"):
            ThreadedTransport("a", "b", timeout_s=0)

    def test_close_unblocks_parked_receiver_immediately(self):
        """Tearing the link down must not stall blocked receivers for
        their full timeout: close() poisons the inboxes and the parked
        get fails fast with TransportClosedError."""
        import time

        transport = ThreadedTransport("a", "b", timeout_s=30.0)
        outcome = {}

        def receiver():
            started = time.perf_counter()
            with pytest.raises(TransportClosedError, match="link closed"):
                transport.collect("a", "reply")
            outcome["waited"] = time.perf_counter() - started

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)  # let the receiver park in the blocking get
        transport.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome["waited"] < 5.0  # not the 30s timeout
        # Later receives fail fast too (the poison is re-queued).
        with pytest.raises(TransportClosedError):
            transport.collect("a", "anything")

    def test_close_keeps_pending_messages_readable(self):
        transport = ThreadedTransport("a", "b")
        transport.deliver("b", "a", "last", b"payload")
        transport.close()
        assert transport.collect("a", "last") == ("last", b"payload")
        with pytest.raises(TransportClosedError):
            transport.collect("a", "next")

    def test_full_protocol_bit_identical_to_in_process(self):
        """The fabric changes delivery, never the message sequence."""
        def run(transport):
            channel = Channel(transport=transport)
            session = SmcSession(*make_party_pair(channel, 11, 12),
                                 SmcConfig(key_seed=321, paillier_bits=128))
            outcome = session.compare_leq(session.alice, 3, session.bob, 7,
                                          lo=0, hi=100)
            entries = [(e.sender, e.receiver, e.label, e.value)
                       for e in channel.transcript.entries]
            return outcome.result, entries

        in_process = run(InProcessTransport())
        threaded = run(ThreadedTransport())
        assert in_process == threaded


class TestSimulatedNetworkTransport:
    def test_latency_charged_per_round_trip(self):
        transport = SimulatedNetworkTransport("a", "b", latency_s=0.01)
        stats = CommunicationStats()
        transport.attach_stats(stats)
        transport.deliver("a", "b", "m1", b"x")
        transport.collect("b", "m1")        # b waits one latency
        transport.deliver("b", "a", "m2", b"y")
        transport.collect("a", "m2")        # a waits for the reply
        assert transport.clock_of("b") == pytest.approx(0.01)
        assert transport.clock_of("a") == pytest.approx(0.02)
        assert transport.elapsed == pytest.approx(0.02)
        assert stats.simulated_seconds == pytest.approx(0.02)
        assert stats.simulated_waits["a"] == pytest.approx(0.01)

    def test_consecutive_sends_pipeline(self):
        """Same-direction messages share the latency (one round)."""
        transport = SimulatedNetworkTransport("a", "b", latency_s=0.01)
        for index in range(5):
            transport.deliver("a", "b", f"m{index}", b"x")
        for index in range(5):
            transport.collect("b", f"m{index}")
        assert transport.elapsed == pytest.approx(0.01)

    def test_bandwidth_charges_transfer_time(self):
        transport = SimulatedNetworkTransport(
            "a", "b", latency_s=0.0, bandwidth_bps=8000)  # 1000 bytes/s
        transport.deliver("a", "b", "m", b"x" * 500)      # 0.5s transfer
        transport.collect("b", "m")
        assert transport.elapsed == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(TransportError, match="latency"):
            SimulatedNetworkTransport("a", "b", latency_s=-1)
        with pytest.raises(TransportError, match="bandwidth"):
            SimulatedNetworkTransport("a", "b", bandwidth_bps=0)

    def test_protocol_equivalence_and_latency_visibility(self):
        """Same messages as in-process; rounds * latency shows up."""
        def run(transport):
            channel = Channel(transport=transport)
            session = SmcSession(*make_party_pair(channel, 11, 12),
                                 SmcConfig(key_seed=321, paillier_bits=128))
            session.compare_leq(session.alice, 3, session.bob, 7,
                                lo=0, hi=100)
            return channel

        plain = run(InProcessTransport())
        simulated = run(SimulatedNetworkTransport(latency_s=0.005))
        assert [e.value for e in plain.transcript.entries] \
            == [e.value for e in simulated.transcript.entries]
        assert plain.stats.rounds == simulated.stats.rounds
        # Every direction switch pays one latency on the critical path.
        assert simulated.simulated_seconds \
            == pytest.approx(0.005 * simulated.stats.rounds)
        assert plain.simulated_seconds == 0.0


class TestTransportSpec:
    def test_kinds(self):
        assert isinstance(TransportSpec().create("a", "b"),
                          InProcessTransport)
        assert isinstance(TransportSpec(kind="threaded").create("a", "b"),
                          ThreadedTransport)
        simulated = TransportSpec(kind="simulated", latency_s=0.02,
                                  bandwidth_bps=1e6).create("a", "b")
        assert isinstance(simulated, SimulatedNetworkTransport)
        assert simulated.latency_s == 0.02
        assert simulated.bandwidth_bps == 1e6

    def test_unknown_kind(self):
        with pytest.raises(TransportError, match="unknown transport"):
            TransportSpec(kind="carrier-pigeon")

    def test_channel_for_config(self):
        config = SmcConfig(transport=TransportSpec(kind="simulated",
                                                   latency_s=0.003))
        channel = channel_for_config(config, "x", "y")
        assert isinstance(channel.transport, SimulatedNetworkTransport)
        assert channel.transport.left_name == "x"
        default = channel_for_config(SmcConfig())
        assert isinstance(default.transport, InProcessTransport)


class TestStatsThreadSafety:
    def test_concurrent_records_never_lose_counts(self):
        stats = CommunicationStats()
        per_thread = 2000

        def hammer(sender):
            for _ in range(per_thread):
                stats.record(sender, "peer", f"{sender}/label", 3)

        threads = [threading.Thread(target=hammer, args=(name,))
                   for name in ("t0", "t1", "t2", "t3")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.total_messages == 4 * per_thread
        assert stats.total_bytes == 12 * per_thread
        for name in ("t0", "t1", "t2", "t3"):
            assert stats.messages_by_direction[f"{name}->peer"] == per_thread

    def test_concurrent_transcript_indices_unique(self):
        from repro.net.transcript import Transcript
        transcript = Transcript()

        def hammer(sender):
            for _ in range(500):
                transcript.record(sender, "peer", "l", 1, 1)

        threads = [threading.Thread(target=hammer, args=(str(i),))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        indices = [entry.index for entry in transcript.entries]
        assert indices == list(range(2000))
