"""Tests for communication-round accounting."""

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.net.stats import CommunicationStats
from repro.smc.session import SmcConfig, SmcSession


class TestRoundCounting:
    def test_empty(self):
        assert CommunicationStats().rounds == 0

    def test_consecutive_same_sender_is_one_round(self):
        stats = CommunicationStats()
        stats.record("alice", "bob", "a", 1)
        stats.record("alice", "bob", "b", 1)
        stats.record("alice", "bob", "c", 1)
        assert stats.rounds == 1

    def test_alternation_counts(self):
        stats = CommunicationStats()
        stats.record("alice", "bob", "a", 1)
        stats.record("bob", "alice", "b", 1)
        stats.record("alice", "bob", "c", 1)
        assert stats.rounds == 3

    def test_merge_adds_rounds(self):
        left = CommunicationStats()
        left.record("alice", "bob", "a", 1)
        right = CommunicationStats()
        right.record("x", "y", "b", 1)
        right.record("y", "x", "c", 1)
        left.merge(right)
        assert left.rounds == 3

    def test_snapshot_includes_rounds(self):
        stats = CommunicationStats()
        stats.record("alice", "bob", "a", 1)
        assert stats.snapshot()["rounds"] == 1


class TestProtocolRoundCounts:
    def test_multiplication_is_two_rounds_plus_setup(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=230))
        setup_rounds = channel.stats.rounds  # key exchange
        session.multiplication(alice, 3, bob, 4, 5)
        # One batch each way: request then reply.
        assert channel.stats.rounds == setup_rounds + 2

    def test_batched_dot_terms_stay_two_rounds(self):
        """The whole point of batching: m coordinates cost the same
        number of rounds as one."""
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=230))
        setup_rounds = channel.stats.rounds
        session.masked_dot_terms(alice, [1] * 10, bob, [2] * 10, [0] * 10)
        assert channel.stats.rounds == setup_rounds + 2

    def test_bitwise_comparison_two_rounds(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=230))
        setup_rounds = channel.stats.rounds
        session.compare_leq(alice, 3, bob, 7, lo=0, hi=10, reveal_to="a")
        assert channel.stats.rounds == setup_rounds + 2
