"""Wire-format tests, including a full hypothesis roundtrip property."""

import pytest
from hypothesis import given, strategies as st

from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
    serialized_size,
)

message_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**512), max_value=2**512),
        st.booleans(),
        st.text(max_size=40),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=8),
    max_leaves=40,
)


class TestRoundtrip:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 255, 256, -256, 2**256, -(2**256),
        True, False, None, "", "hello", "unicode: é中",
        [], [1, 2, 3], [1, [2, [3, [True, None, "x"]]]],
    ])
    def test_cases(self, value):
        assert deserialize_message(serialize_message(value)) == value

    @given(message_values)
    def test_roundtrip_property(self, value):
        restored = deserialize_message(serialize_message(value))
        assert restored == _tuples_to_lists(value)

    def test_tuples_become_lists(self):
        assert deserialize_message(serialize_message((1, 2))) == [1, 2]


class TestSizes:
    def test_small_int_size(self):
        # Tag(1) + sign(1) + length(4) + one magnitude byte.
        assert serialized_size(7) == 7

    def test_int_size_grows_with_magnitude(self):
        assert serialized_size(2**100) > serialized_size(2**10)

    def test_size_matches_serialization(self):
        for value in (12345, "abc", [1, "x", None]):
            assert serialized_size(value) == len(serialize_message(value))


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(SerializationError, match="unsupported"):
            serialize_message(3.14)

    def test_unsupported_nested_type(self):
        with pytest.raises(SerializationError, match="unsupported"):
            serialize_message([1, {"a": 2}])

    def test_truncated_input(self):
        wire = serialize_message(123456789)
        with pytest.raises(SerializationError, match="truncated"):
            deserialize_message(wire[:-1])

    def test_trailing_bytes(self):
        wire = serialize_message(5) + b"\x00"
        with pytest.raises(SerializationError, match="trailing"):
            deserialize_message(wire)

    def test_unknown_tag(self):
        with pytest.raises(SerializationError, match="unknown"):
            deserialize_message(b"Z")

    def test_empty_input(self):
        with pytest.raises(SerializationError, match="no type tag"):
            deserialize_message(b"")


def _tuples_to_lists(value):
    if isinstance(value, (list, tuple)):
        return [_tuples_to_lists(v) for v in value]
    return value
