"""Channel behaviour: framing, accounting, desync detection."""

import pytest

from repro.net.channel import Channel, ChannelClosedError, ProtocolDesyncError


class TestSendReceive:
    def test_basic_exchange(self, channel):
        channel.left.send("greeting", [1, 2, 3])
        assert channel.right.receive("greeting") == [1, 2, 3]

    def test_fifo_ordering(self, channel):
        channel.left.send("a", 1)
        channel.left.send("b", 2)
        assert channel.right.receive("a") == 1
        assert channel.right.receive("b") == 2

    def test_bidirectional(self, channel):
        channel.left.send("ping", 1)
        channel.right.send("pong", 2)
        assert channel.right.receive("ping") == 1
        assert channel.left.receive("pong") == 2

    def test_receive_any_label(self, channel):
        channel.left.send("whatever", "x")
        assert channel.right.receive() == "x"

    def test_self_messages_not_allowed(self):
        with pytest.raises(ValueError, match="distinct"):
            Channel(left_name="same", right_name="same")


class TestDesyncDetection:
    def test_empty_inbox(self, channel):
        with pytest.raises(ProtocolDesyncError, match="inbox is empty"):
            channel.right.receive("missing")

    def test_label_mismatch(self, channel):
        channel.left.send("actual", 1)
        with pytest.raises(ProtocolDesyncError, match="expected"):
            channel.right.receive("expected_something_else")

    def test_closed_channel(self, channel):
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.left.send("x", 1)
        with pytest.raises(ChannelClosedError):
            channel.right.receive()


class TestAccounting:
    def test_bytes_counted(self, channel):
        channel.left.send("data", 2**64)
        assert channel.stats.total_bytes > 8
        assert channel.stats.total_messages == 1

    def test_direction_split(self, channel):
        channel.left.send("a", 1)
        channel.left.send("b", 2)
        channel.right.send("c", 3)
        directions = channel.stats.messages_by_direction
        assert directions["alice->bob"] == 2
        assert directions["bob->alice"] == 1

    def test_label_accounting(self, channel):
        channel.left.send("phase1/x", 100)
        channel.left.send("phase1/y", 200)
        channel.left.send("phase2/z", 300)
        assert channel.stats.messages_for_phase("phase1") == 2
        assert channel.stats.bytes_for_phase("phase1") > 0

    def test_transcript_records_everything(self, channel):
        channel.left.send("m1", [1, "two"])
        channel.right.receive("m1")
        channel.right.send("m2", True)
        channel.left.receive("m2")
        entries = channel.transcript.entries
        assert len(entries) == 2
        assert entries[0].sender == "alice"
        assert entries[0].value == [1, "two"]
        assert entries[1].receiver == "alice"

    def test_unserializable_value_never_counted(self, channel):
        with pytest.raises(Exception):
            channel.left.send("bad", {"dict": 1})
        assert channel.stats.total_messages == 0
