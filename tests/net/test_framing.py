"""Frame layer: roundtrips, malformed input, timeout and close paths."""

import socket
import struct
import threading

import pytest
from hypothesis import given, strategies as st

from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_MESSAGE,
    ConnectionClosedError,
    FramedConnection,
    FramingError,
    ReceiveTimeout,
    decode_message_payload,
    encode_message_payload,
)


def connected_pair(timeout_s: float = 2.0, **kwargs):
    left, right = socket.socketpair()
    return (FramedConnection(left, timeout_s=timeout_s, name="left",
                             **kwargs),
            FramedConnection(right, timeout_s=timeout_s, name="right",
                             **kwargs))


class TestMessagePayload:
    def test_roundtrip(self):
        payload = encode_message_payload("dgk/x_bits", b"\x00\x01wire")
        assert decode_message_payload(payload) == ("dgk/x_bits",
                                                   b"\x00\x01wire")

    def test_empty_label_and_wire(self):
        assert decode_message_payload(
            encode_message_payload("", b"")) == ("", b"")

    def test_truncated_label_detected(self):
        payload = encode_message_payload("abcdef", b"")
        with pytest.raises(FramingError, match="truncated"):
            decode_message_payload(payload[:4])

    def test_too_short_for_length(self):
        with pytest.raises(FramingError, match="too short"):
            decode_message_payload(b"\x00")

    def test_invalid_utf8_label_is_framing_error(self):
        """The label decode must stay inside the framing error contract
        (a raw UnicodeDecodeError would crash a party process)."""
        payload = struct.pack(">H", 2) + b"\xff\xfe" + b"wire"
        with pytest.raises(FramingError, match="not valid UTF-8"):
            decode_message_payload(payload)

    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_fail_cleanly_or_roundtrip(self, blob):
        """Fuzz companion to the serialization suite: arbitrary payloads
        must never crash the decoder with anything but the explicit
        boundary errors."""
        try:
            label, wire = decode_message_payload(blob)
        except (FramingError, UnicodeDecodeError):
            return
        assert encode_message_payload(label, wire) == blob


class TestFramedConnection:
    def test_frame_roundtrip_all_kinds(self):
        left, right = connected_pair()
        for kind in (FRAME_HELLO, FRAME_MESSAGE, FRAME_CONTROL,
                     FRAME_GOODBYE):
            left.write_frame(kind, b"payload-" + kind)
            assert right.read_frame() == (kind, b"payload-" + kind)
        left.close()
        right.close()

    def test_empty_payload_frame(self):
        left, right = connected_pair()
        left.write_frame(FRAME_CONTROL)
        assert right.read_frame() == (FRAME_CONTROL, b"")

    def test_unknown_kind_rejected_on_write(self):
        left, _ = connected_pair()
        with pytest.raises(FramingError, match="unknown frame kind"):
            left.write_frame(b"Z", b"")

    def test_unknown_kind_rejected_on_read(self):
        left, right = connected_pair()
        left._sock.sendall(struct.pack(">I", 1) + b"Q")
        with pytest.raises(FramingError, match="unknown frame kind"):
            right.read_frame()

    def test_oversized_length_refused_without_allocation(self):
        left, right = connected_pair(max_frame_bytes=1024)
        left._sock.sendall(struct.pack(">I", 1 << 30) + b"M")
        with pytest.raises(FramingError, match="ceiling"):
            right.read_frame()

    def test_oversized_frame_refused_at_the_sender(self):
        """The ceiling is symmetric: an oversized frame fails loudly at
        the producing call site, not as a desync at the receiver."""
        left, _ = connected_pair(max_frame_bytes=64)
        with pytest.raises(FramingError, match="ceiling"):
            left.write_frame(FRAME_MESSAGE, b"x" * 64)

    def test_zero_length_refused(self):
        left, right = connected_pair()
        left._sock.sendall(struct.pack(">I", 0))
        with pytest.raises(FramingError, match="< 1"):
            right.read_frame()

    def test_timeout_is_distinct_error(self):
        _, right = connected_pair(timeout_s=0.05)
        with pytest.raises(ReceiveTimeout, match="no data for"):
            right.read_frame()

    def test_peer_close_at_frame_boundary(self):
        left, right = connected_pair()
        left.write_frame(FRAME_CONTROL, b"last")
        left.close()
        assert right.read_frame() == (FRAME_CONTROL, b"last")
        with pytest.raises(ConnectionClosedError, match="closed"):
            right.read_frame()

    def test_mid_frame_eof_is_connection_loss(self):
        """A peer dying with a frame in flight is a *connection* failure
        (TransportClosedError upstream), not a malformed-frame desync."""
        left, right = connected_pair()
        left._sock.sendall(struct.pack(">I", 10) + b"M123")
        left.close()
        with pytest.raises(ConnectionClosedError, match="mid-frame"):
            right.read_frame()

    def test_timeout_mid_frame_is_retryable_without_corruption(self):
        """Partially received bytes survive a ReceiveTimeout: the next
        read_frame resumes the same frame instead of parsing garbage
        from its middle (the responder control-wait retries on
        timeout)."""
        left, right = connected_pair(timeout_s=0.1)
        frame = struct.pack(">I", 6) + b"M" + b"hello"
        left._sock.sendall(frame[:7])  # header + kind + 2 payload bytes
        with pytest.raises(ReceiveTimeout):
            right.read_frame()
        left._sock.sendall(frame[7:])
        assert right.read_frame() == (FRAME_MESSAGE, b"hello")

    def test_timeout_before_any_bytes_then_clean_read(self):
        left, right = connected_pair(timeout_s=0.1)
        with pytest.raises(ReceiveTimeout):
            right.read_frame()
        left.write_frame(FRAME_CONTROL, b"late")
        assert right.read_frame() == (FRAME_CONTROL, b"late")

    def test_write_after_close_fails(self):
        left, _ = connected_pair()
        left.close()
        with pytest.raises(ConnectionClosedError, match="closed"):
            left.write_frame(FRAME_CONTROL, b"")

    def test_concurrent_writers_never_interleave_frames(self):
        """Two threads hammering one connection: every frame arrives
        intact (the write lock covers the whole frame)."""
        left, right = connected_pair(timeout_s=5.0)
        per_thread = 200

        def hammer(tag: bytes):
            for index in range(per_thread):
                left.write_frame(FRAME_MESSAGE,
                                 tag * 3 + str(index).encode())

        threads = [threading.Thread(target=hammer, args=(tag,))
                   for tag in (b"a", b"b")]
        for thread in threads:
            thread.start()
        seen = []
        for _ in range(2 * per_thread):
            kind, payload = right.read_frame()
            assert kind == FRAME_MESSAGE
            assert payload[:3] in (b"aaa", b"bbb")
            seen.append(payload)
        for thread in threads:
            thread.join()
        assert len(seen) == 2 * per_thread

    def test_large_frame_roundtrip(self):
        """Frames above the socket buffer size must reassemble exactly
        (exercises the partial-recv loop)."""
        left, right = connected_pair(timeout_s=5.0)
        blob = bytes(range(256)) * 4096  # 1 MiB
        received = {}

        def reader():
            received["frame"] = right.read_frame()

        thread = threading.Thread(target=reader)
        thread.start()
        left.write_frame(FRAME_MESSAGE, blob)
        thread.join(timeout=10)
        assert received["frame"] == (FRAME_MESSAGE, blob)
