"""Fuzz robustness: arbitrary bytes must never crash the deserializer
with anything but SerializationError, and valid wire data must be
re-encodable to identical bytes."""

from hypothesis import given, strategies as st

from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)

message_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**128), max_value=2**128),
        st.booleans(),
        st.text(max_size=20),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=5),
    max_leaves=20,
)


class TestFuzz:
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_fail_cleanly_or_parse(self, blob):
        try:
            value = deserialize_message(blob)
        except SerializationError:
            return
        except UnicodeDecodeError:
            # Strings are UTF-8; invalid encodings surface as decode
            # errors at the boundary, which is acceptable and explicit.
            return
        # If it parsed, it must round-trip to the same bytes.
        assert serialize_message(value) == blob

    @given(message_values)
    def test_canonical_encoding(self, value):
        """Serialization is canonical: encode(decode(encode(v))) is
        byte-identical to encode(v)."""
        wire = serialize_message(value)
        assert serialize_message(deserialize_message(wire)) == wire

    @given(message_values, st.integers(min_value=0, max_value=50))
    def test_truncation_always_detected(self, value, cut):
        wire = serialize_message(value)
        if cut == 0 or cut >= len(wire):
            return
        truncated = wire[:-cut]
        try:
            restored = deserialize_message(truncated)
        except (SerializationError, UnicodeDecodeError):
            return
        # Extremely rare: a truncation that still parses must at least
        # not equal the original value's canonical bytes.
        assert serialize_message(restored) != wire
