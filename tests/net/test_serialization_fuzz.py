"""Fuzz robustness: arbitrary bytes must never crash the deserializer
with anything but SerializationError, and valid wire data must be
re-encodable to identical bytes.  The TCP message-frame envelope gets
the same treatment: a malicious or corrupted frame must fail with the
explicit boundary errors, never an unhandled exception, and a valid
``(label, serialized value)`` envelope must round-trip exactly."""

from hypothesis import given, strategies as st

from repro.net.framing import (
    FramingError,
    decode_message_payload,
    encode_message_payload,
)
from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)

message_values = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**128), max_value=2**128),
        st.booleans(),
        st.text(max_size=20),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=5),
    max_leaves=20,
)


class TestFuzz:
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_fail_cleanly_or_parse(self, blob):
        try:
            value = deserialize_message(blob)
        except SerializationError:
            return
        except UnicodeDecodeError:
            # Strings are UTF-8; invalid encodings surface as decode
            # errors at the boundary, which is acceptable and explicit.
            return
        # If it parsed, it must round-trip to the same bytes.
        assert serialize_message(value) == blob

    @given(message_values)
    def test_canonical_encoding(self, value):
        """Serialization is canonical: encode(decode(encode(v))) is
        byte-identical to encode(v)."""
        wire = serialize_message(value)
        assert serialize_message(deserialize_message(wire)) == wire

    @given(message_values, st.integers(min_value=0, max_value=50))
    def test_truncation_always_detected(self, value, cut):
        wire = serialize_message(value)
        if cut == 0 or cut >= len(wire):
            return
        truncated = wire[:-cut]
        try:
            restored = deserialize_message(truncated)
        except (SerializationError, UnicodeDecodeError):
            return
        # Extremely rare: a truncation that still parses must at least
        # not equal the original value's canonical bytes.
        assert serialize_message(restored) != wire


class TestFrameEnvelopeFuzz:
    """The TCP frame envelope around the serialization wire format."""

    @given(st.binary(max_size=200))
    def test_arbitrary_frame_payloads_fail_cleanly(self, blob):
        """The full inbound path -- envelope decode, then wire decode --
        must surface only the explicit boundary errors."""
        try:
            _, wire = decode_message_payload(blob)
            deserialize_message(wire)
        except (FramingError, SerializationError, UnicodeDecodeError):
            return

    @given(st.text(max_size=30), message_values)
    def test_label_and_value_roundtrip_exactly(self, label, value):
        wire = serialize_message(value)
        decoded_label, decoded_wire = decode_message_payload(
            encode_message_payload(label, wire))
        assert decoded_label == label
        assert decoded_wire == wire
        assert serialize_message(deserialize_message(decoded_wire)) == wire

    @given(st.text(max_size=30), message_values,
           st.integers(min_value=1, max_value=50))
    def test_truncated_envelopes_never_misparse_silently(self, label,
                                                         value, cut):
        payload = encode_message_payload(label, serialize_message(value))
        if cut >= len(payload):
            return
        truncated = payload[:-cut]
        try:
            _, wire = decode_message_payload(truncated)
            restored = deserialize_message(wire)
        except (FramingError, SerializationError, UnicodeDecodeError):
            return
        # A truncation that still parses end-to-end must not claim to be
        # the original message.
        assert serialize_message(restored) != serialize_message(value)
