"""Communication accounting tests."""

from repro.net.stats import CommunicationStats


def _populated() -> CommunicationStats:
    stats = CommunicationStats()
    stats.record("alice", "bob", "hdp/cross_terms", 100)
    stats.record("alice", "bob", "hdp/threshold", 50)
    stats.record("bob", "alice", "hdp/cross_terms", 120)
    return stats


class TestCommunicationStats:
    def test_totals(self):
        stats = _populated()
        assert stats.total_bytes == 270
        assert stats.total_messages == 3
        assert stats.total_bits == 270 * 8

    def test_direction_breakdown(self):
        stats = _populated()
        assert stats.bytes_by_direction["alice->bob"] == 150
        assert stats.bytes_by_direction["bob->alice"] == 120

    def test_phase_aggregation(self):
        stats = _populated()
        assert stats.bytes_for_phase("hdp/cross_terms") == 220
        assert stats.bytes_for_phase("hdp") == 270
        assert stats.messages_for_phase("hdp/threshold") == 1

    def test_merge(self):
        left = _populated()
        right = _populated()
        left.merge(right)
        assert left.total_bytes == 540
        assert right.total_bytes == 270  # unchanged

    def test_snapshot_is_plain_data(self):
        snapshot = _populated().snapshot()
        assert snapshot["total_bytes"] == 270
        assert isinstance(snapshot["bytes_by_direction"], dict)

    def test_empty(self):
        stats = CommunicationStats()
        assert stats.total_bytes == 0
        assert stats.bytes_for_phase("anything") == 0


class TestMergeSnapshots:
    def test_matches_object_level_merge(self):
        """merge_snapshots over per-link snapshot dicts must equal
        CommunicationStats.merge over the objects, field for field --
        the invariant the socket runtime's cross-process merge rests
        on."""
        from repro.net.stats import merge_snapshots

        links = []
        for offset, (a, b) in enumerate((("p0", "p1"), ("p0", "p2"))):
            stats = CommunicationStats()
            stats.record(a, b, f"phase{offset}/x", 10 + offset)
            stats.record(b, a, f"phase{offset}/y", 20 + offset)
            stats.record(b, a, f"phase{offset}/y", 5)
            stats.record_simulated_wait(a, 0.25 * (offset + 1))
            links.append(stats)

        reference = CommunicationStats()
        for stats in links:
            reference.merge(stats)
        assert merge_snapshots(s.snapshot() for s in links) \
            == reference.snapshot()

    def test_empty_iterable_is_zero_snapshot(self):
        from repro.net.stats import merge_snapshots

        assert merge_snapshots([]) == CommunicationStats().snapshot()
