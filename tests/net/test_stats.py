"""Communication accounting tests."""

from repro.net.stats import CommunicationStats


def _populated() -> CommunicationStats:
    stats = CommunicationStats()
    stats.record("alice", "bob", "hdp/cross_terms", 100)
    stats.record("alice", "bob", "hdp/threshold", 50)
    stats.record("bob", "alice", "hdp/cross_terms", 120)
    return stats


class TestCommunicationStats:
    def test_totals(self):
        stats = _populated()
        assert stats.total_bytes == 270
        assert stats.total_messages == 3
        assert stats.total_bits == 270 * 8

    def test_direction_breakdown(self):
        stats = _populated()
        assert stats.bytes_by_direction["alice->bob"] == 150
        assert stats.bytes_by_direction["bob->alice"] == 120

    def test_phase_aggregation(self):
        stats = _populated()
        assert stats.bytes_for_phase("hdp/cross_terms") == 220
        assert stats.bytes_for_phase("hdp") == 270
        assert stats.messages_for_phase("hdp/threshold") == 1

    def test_merge(self):
        left = _populated()
        right = _populated()
        left.merge(right)
        assert left.total_bytes == 540
        assert right.total_bytes == 270  # unchanged

    def test_snapshot_is_plain_data(self):
        snapshot = _populated().snapshot()
        assert snapshot["total_bytes"] == 270
        assert isinstance(snapshot["bytes_by_direction"], dict)

    def test_empty(self):
        stats = CommunicationStats()
        assert stats.total_bytes == 0
        assert stats.bytes_for_phase("anything") == 0


class TestMergeSnapshots:
    def test_matches_object_level_merge(self):
        """merge_snapshots over per-link snapshot dicts must equal
        CommunicationStats.merge over the objects, field for field --
        the invariant the socket runtime's cross-process merge rests
        on."""
        from repro.net.stats import merge_snapshots

        links = []
        for offset, (a, b) in enumerate((("p0", "p1"), ("p0", "p2"))):
            stats = CommunicationStats()
            stats.record(a, b, f"phase{offset}/x", 10 + offset)
            stats.record(b, a, f"phase{offset}/y", 20 + offset)
            stats.record(b, a, f"phase{offset}/y", 5)
            stats.record_simulated_wait(a, 0.25 * (offset + 1))
            links.append(stats)

        reference = CommunicationStats()
        for stats in links:
            reference.merge(stats)
        assert merge_snapshots(s.snapshot() for s in links) \
            == reference.snapshot()

    def test_empty_iterable_is_zero_snapshot(self):
        from repro.net.stats import merge_snapshots

        assert merge_snapshots([]) == CommunicationStats().snapshot()

    def test_missing_scalar_key_counts_as_zero(self):
        """A snapshot written before a scalar field existed (an old
        report replayed through a newer merge) must fold as zero, not
        raise KeyError."""
        from repro.net.stats import merge_snapshots

        full = _populated().snapshot()
        legacy = dict(full)
        del legacy["simulated_seconds"]
        merged = merge_snapshots([legacy, full])
        assert merged["simulated_seconds"] == full["simulated_seconds"]
        assert merged["total_bytes"] == 2 * full["total_bytes"]

    def test_missing_mapping_key_counts_as_empty(self):
        from repro.net.stats import merge_snapshots

        full = _populated().snapshot()
        legacy = dict(full)
        del legacy["bytes_by_label"]
        merged = merge_snapshots([legacy, full])
        assert merged["bytes_by_label"] == full["bytes_by_label"]

    def test_empty_dict_snapshot_is_ignored(self):
        from repro.net.stats import merge_snapshots

        full = _populated().snapshot()
        assert merge_snapshots([{}, full]) == merge_snapshots([full])


class TestConcurrency:
    def test_concurrent_records_lose_nothing(self):
        """record() from many threads must account every byte --
        the daemon's session threads share per-pair stats objects."""
        import threading

        stats = CommunicationStats()
        per_thread, threads = 500, 8

        def work(index: int) -> None:
            for _ in range(per_thread):
                stats.record("a", "b", f"phase{index}", 1)

        workers = [threading.Thread(target=work, args=(index,))
                   for index in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert stats.total_bytes == per_thread * threads
        assert stats.total_messages == per_thread * threads

    def test_concurrent_merges_into_one_target(self):
        import threading

        source = _populated()
        target = CommunicationStats()
        merges = 6

        def work() -> None:
            target.merge(source)

        workers = [threading.Thread(target=work) for _ in range(merges)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert target.total_bytes == merges * source.total_bytes
