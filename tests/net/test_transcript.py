"""Transcript (Definition 5 view) bookkeeping tests."""

from repro.net.transcript import Transcript


def _populated() -> Transcript:
    transcript = Transcript()
    transcript.record("alice", "bob", "mult/encrypted_x", 111, 10)
    transcript.record("bob", "alice", "mult/masked_product", 222, 12)
    transcript.record("alice", "bob", "cmp/bits", [1, 2], 8)
    return transcript


class TestTranscript:
    def test_ordering_and_indices(self):
        transcript = _populated()
        assert [e.index for e in transcript.entries] == [0, 1, 2]

    def test_received_by_is_the_view(self):
        transcript = _populated()
        bob_view = transcript.received_by("bob")
        assert [e.label for e in bob_view] == ["mult/encrypted_x", "cmp/bits"]
        alice_view = transcript.received_by("alice")
        assert [e.value for e in alice_view] == [222]

    def test_sent_by(self):
        transcript = _populated()
        assert len(transcript.sent_by("alice")) == 2

    def test_label_prefix_filter(self):
        transcript = _populated()
        assert len(transcript.with_label("mult/")) == 2
        assert len(transcript.with_label("cmp")) == 1
        assert transcript.with_label("nothing") == []

    def test_totals(self):
        transcript = _populated()
        assert transcript.total_bytes() == 30
        assert transcript.message_count() == 3

    def test_clear(self):
        transcript = _populated()
        transcript.clear()
        assert transcript.message_count() == 0
