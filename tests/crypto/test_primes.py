"""Tests for Miller-Rabin prime generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import (
    generate_distinct_primes,
    generate_prime,
    is_probable_prime,
    random_prime_in_range,
)

_KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 997, 7919, 104729, 2 ** 31 - 1]
_KNOWN_COMPOSITES = [1, 4, 9, 15, 100, 561, 1105, 6601, 2 ** 31 - 3,
                     7919 * 104729]
# Carmichael numbers (561, 1105, 6601) specifically stress Miller-Rabin.


class TestIsProbablePrime:
    @pytest.mark.parametrize("prime", _KNOWN_PRIMES)
    def test_accepts_primes(self, prime):
        assert is_probable_prime(prime, random.Random(1))

    @pytest.mark.parametrize("composite", _KNOWN_COMPOSITES)
    def test_rejects_composites(self, composite):
        assert not is_probable_prime(composite, random.Random(1))

    def test_rejects_below_two(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=3000))
    def test_agrees_with_trial_division(self, candidate):
        by_trial = all(candidate % d for d in range(2, int(candidate ** 0.5) + 1))
        assert is_probable_prime(candidate, random.Random(0)) == by_trial


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(7)
        for bits in (16, 32, 64, 128):
            prime = generate_prime(bits, rng)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime, rng)

    def test_too_small_raises(self):
        with pytest.raises(ValueError, match="too small"):
            generate_prime(4, random.Random(0))

    def test_deterministic_under_seed(self):
        assert (generate_prime(64, random.Random(3))
                == generate_prime(64, random.Random(3)))

    def test_top_two_bits_set(self):
        # Guarantees products of two such primes have exactly 2*bits bits.
        rng = random.Random(11)
        for _ in range(5):
            prime = generate_prime(32, rng)
            assert prime >> 30 == 0b11


class TestGenerateDistinctPrimes:
    def test_distinct(self):
        p, q = generate_distinct_primes(32, random.Random(5))
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_product_bit_length(self):
        p, q = generate_distinct_primes(64, random.Random(9))
        assert (p * q).bit_length() == 128


class TestRandomPrimeInRange:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=100, max_value=10**6))
    def test_in_range(self, low):
        high = low * 2
        prime = random_prime_in_range(low, high, random.Random(low))
        assert low <= prime < high
        assert is_probable_prime(prime)

    def test_empty_range_raises(self):
        with pytest.raises(ValueError, match="empty range"):
            random_prime_in_range(100, 100, random.Random(0))
