"""Engine-vs-serial equivalence tests for the parallel modexp engine.

The binding property (the PR-2 tentpole contract): a
:class:`~repro.crypto.engine.ModexpEngine` never changes *what* is
computed -- pool fills, batch encryptions, batch decryptions, and DGK
bit batches must be bit-identical to the seed-era serial loops under the
same RNG state, for every worker count and for the serial fallback.
"""

import dataclasses
import random

import pytest

from repro.crypto.engine import EngineError, ModexpEngine, default_engine
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import PaillierError
from repro.crypto.precompute import RandomnessPool
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.bitwise_comparison import dgk_greater_than

KEYS = cached_paillier_keypair(256, 920)
PUB = KEYS.public_key
PRIV = KEYS.private_key


def _parallel_engine(workers=2):
    """An engine that shards even tiny batches (exercises the pool path)."""
    return ModexpEngine(workers=workers, min_parallel_jobs=1)


class TestModexpBatch:
    def test_matches_builtin_pow_serial_and_parallel(self):
        rng = random.Random(0)
        jobs = [(rng.randrange(2, 1 << 64), rng.randrange(1, 1 << 32),
                 rng.randrange(2, 1 << 64)) for _ in range(40)]
        expected = [pow(b, e, m) for b, e, m in jobs]
        assert ModexpEngine(workers=1).modexp_batch(jobs) == expected
        with _parallel_engine() as engine:
            assert engine.modexp_batch(jobs) == expected
            assert engine.report()["parallel_batches"] == 1
            assert engine.report()["parallel_modexps"] == 40

    def test_empty_batch(self):
        assert ModexpEngine(workers=1).modexp_batch([]) == []

    def test_small_batches_stay_serial(self):
        engine = ModexpEngine(workers=2, min_parallel_jobs=64)
        engine.modexp_batch([(2, 10, 1000)] * 8)
        report = engine.report()
        assert report["parallel_batches"] == 0
        assert report["batches"] == 1 and report["jobs"] == 8

    def test_closed_engine_degrades_to_serial(self):
        engine = _parallel_engine()
        engine.close()
        assert engine.modexp_batch([(3, 5, 100)] * 4) == [pow(3, 5, 100)] * 4
        assert engine.report()["fallbacks"] == 1

    def test_validation(self):
        with pytest.raises(EngineError, match="workers"):
            ModexpEngine(workers=-1)
        with pytest.raises(EngineError, match="min_parallel_jobs"):
            ModexpEngine(min_parallel_jobs=0)
        with pytest.raises(EngineError, match="shards_per_worker"):
            ModexpEngine(shards_per_worker=0)

    def test_default_engine_is_serial_singleton(self):
        engine = default_engine()
        assert engine is default_engine()
        assert engine.workers == 1


class TestWarmUp:
    def test_serial_engine_never_warms(self):
        engine = ModexpEngine(workers=1)
        assert engine.warm_up() is False
        assert engine.report()["warmups"] == 0

    def test_closed_engine_never_warms(self):
        engine = _parallel_engine()
        engine.close()
        assert engine.warm_up() is False

    def test_warm_up_spawns_pool_without_changing_results(self):
        jobs = [(3, 5, 100)] * 4
        with _parallel_engine() as engine:
            warmed = engine.warm_up()
            report = engine.report()
            # Warm-up is pure lifecycle: no batches or jobs counted.
            assert report["batches"] == 0 and report["jobs"] == 0
            assert report["warmups"] == (1 if warmed else 0)
            assert engine.modexp_batch(jobs) == [pow(3, 5, 100)] * 4
        # On hosts that cannot spawn a pool, warm_up reports False and
        # the engine keeps running serially -- never an exception.
        assert isinstance(warmed, bool)

    def test_mesh_precompute_warms_each_engine_once(self):
        from repro.multiparty.mesh import PartyMesh
        from repro.smc.session import SmcConfig
        with _parallel_engine() as engine:
            mesh = PartyMesh(["a", "b", "c"],
                             SmcConfig(key_seed=81, engine=engine),
                             seeds=[1, 2, 3])
            mesh.precompute_pools(2)
            # Three pairwise sessions share one engine object; the mesh
            # offline phase warms it exactly once per precompute call.
            assert engine.report()["warmups"] <= 1


class TestPoolFillEquivalence:
    def _pools(self, seed):
        return (RandomnessPool(PUB, random.Random(seed)),
                RandomnessPool(PUB, random.Random(seed)))

    @pytest.mark.parametrize("count", [0, 1, 7, 40])
    def test_engine_fill_matches_serial_refill(self, count):
        serial_pool, engine_pool = self._pools(3)
        serial_pool.refill(count)
        with _parallel_engine() as engine:
            engine.fill_pool(engine_pool, count)
        assert [serial_pool.encryption_factor() for _ in range(count)] \
            == [engine_pool.encryption_factor() for _ in range(count)]
        assert serial_pool.pregenerated == engine_pool.pregenerated == count
        assert engine_pool.misses == 0

    def test_serial_engine_fill_matches_refill(self):
        serial_pool, engine_pool = self._pools(4)
        serial_pool.refill(12)
        ModexpEngine(workers=1).fill_pool(engine_pool, 12)
        assert list(serial_pool._factors) == list(engine_pool._factors)

    def test_session_precompute_uses_engine(self):
        from repro.smc.session import SmcConfig, SmcSession
        with _parallel_engine() as engine:
            session = SmcSession(
                *make_party_pair(Channel(), 1, 2),
                SmcConfig(key_seed=77, engine=engine))
            session.precompute_pools(6)
            report = session.pool_report()
        assert all(entry["pregenerated"] == 6 for entry in report.values())
        assert engine.report()["jobs"] >= 24  # 4 pools x 6 factors


class TestEncryptBatchEquivalence:
    MESSAGES = [0, 1, 17, PUB.n - 1, 123456789]

    def test_no_pool(self):
        serial = PUB.encrypt_batch(self.MESSAGES, random.Random(5))
        with _parallel_engine() as engine:
            pooled = engine.encrypt_batch(PUB, self.MESSAGES,
                                          random.Random(5))
        assert [c.value for c in serial] == [c.value for c in pooled]

    @pytest.mark.parametrize("prefilled", [0, 2, 5])
    def test_pool_with_misses(self, prefilled):
        """Engine consumption must mirror the serial pop/miss order."""
        serial_pool = RandomnessPool(PUB, random.Random(6))
        engine_pool = RandomnessPool(PUB, random.Random(6))
        serial_pool.refill(prefilled)
        engine_pool.refill(prefilled)
        serial = PUB.encrypt_batch(self.MESSAGES, serial_pool.rng,
                                   serial_pool)
        with _parallel_engine() as engine:
            parallel = engine.encrypt_batch(PUB, self.MESSAGES,
                                            engine_pool.rng, engine_pool)
        assert [c.value for c in serial] == [c.value for c in parallel]
        assert serial_pool.report() == engine_pool.report()

    def test_decrypts_back(self):
        with _parallel_engine() as engine:
            ciphers = engine.encrypt_batch(PUB, self.MESSAGES,
                                           random.Random(7))
        assert [PRIV.decrypt(c) for c in ciphers] == self.MESSAGES

    def test_pool_key_mismatch_raises(self):
        other = cached_paillier_keypair(256, 921)
        pool = RandomnessPool(other.public_key, random.Random(0))
        with pytest.raises(PaillierError, match="different key"):
            _parallel_engine().encrypt_batch(PUB, [1], random.Random(0),
                                             pool)


class TestEncryptionFactorsEquivalence:
    """The PR-4 satellite: masker-side encrypt/rerandomize factor
    batches (Section 5 share generation) drawn through the engine must
    be bit-identical to the serial interleaved sequence."""

    def _serial_factors(self, count, rng, pool):
        """The seed-era draw order: one factor per encrypt/rerandomize."""
        factors = []
        for _ in range(count):
            if pool is not None:
                factors.append(pool.encryption_factor())
            else:
                factors.append(pow(PUB.random_unit(rng), PUB.n,
                                   PUB.n_squared))
        return factors

    def test_no_pool(self):
        serial = self._serial_factors(10, random.Random(8), None)
        with _parallel_engine() as engine:
            batched = engine.encryption_factors(PUB, 10, random.Random(8))
        assert serial == batched

    @pytest.mark.parametrize("prefilled", [0, 3, 10])
    def test_pool_with_misses(self, prefilled):
        serial_pool = RandomnessPool(PUB, random.Random(9))
        engine_pool = RandomnessPool(PUB, random.Random(9))
        serial_pool.refill(prefilled)
        engine_pool.refill(prefilled)
        serial = self._serial_factors(6, serial_pool.rng, serial_pool)
        with _parallel_engine() as engine:
            batched = engine.encryption_factors(PUB, 6, engine_pool.rng,
                                                engine_pool)
        assert serial == batched
        assert serial_pool.report() == engine_pool.report()

    def test_pool_key_mismatch_raises(self):
        other = cached_paillier_keypair(256, 921)
        pool = RandomnessPool(other.public_key, random.Random(0))
        with pytest.raises(PaillierError, match="different key"):
            _parallel_engine().encryption_factors(PUB, 1, random.Random(0),
                                                  pool)

    def test_scalar_products_transcript_engine_vs_serial(self):
        """Section 5 sharing routed through the engine is bit-identical
        on the wire (same masker ciphertexts, same results)."""
        from repro.smc.session import SmcConfig, SmcSession

        def run(engine):
            channel = Channel()
            session = SmcSession(
                *make_party_pair(channel, 31, 32),
                SmcConfig(paillier_bits=128, key_seed=922, engine=engine))
            values = session.scalar_products(
                session.alice, [3, -1, 4], session.bob,
                [[1, 5, 9], [2, 6, 5], [0, 0, 1]], [7, 8, 9])
            wire = [(e.sender, e.label, e.value)
                    for e in channel.transcript.entries]
            return values, wire

        serial_values, serial_wire = run(None)
        with _parallel_engine() as engine:
            engine_values, engine_wire = run(engine)
        assert serial_values == engine_values
        assert serial_wire == engine_wire
        assert serial_values == [3 - 5 + 36 + 7, 6 - 6 + 20 + 8, 4 + 9]


class TestDecryptBatchEquivalence:
    def _ciphertexts(self, count=9):
        rng = random.Random(8)
        return [PUB.encrypt(rng.randrange(PUB.n), rng).value
                for _ in range(count)]

    def test_crt_split_matches_serial(self):
        values = self._ciphertexts()
        with _parallel_engine() as engine:
            assert engine.decrypt_raw_batch(PRIV, values) \
                == PRIV.decrypt_raw_batch(values)

    def test_standard_key_matches_serial(self):
        """Keys without CRT constants take the full-modulus job shape."""
        plain_key = dataclasses.replace(PRIV, hp=None, hq=None)
        values = self._ciphertexts()
        with _parallel_engine() as engine:
            assert engine.decrypt_raw_batch(plain_key, values) \
                == plain_key.decrypt_raw_batch(values) \
                == PRIV.decrypt_raw_batch(values)

    def test_out_of_range_ciphertext_rejected(self):
        with pytest.raises(PaillierError, match="Z_"):
            _parallel_engine().decrypt_raw_batch(PRIV, [PUB.n_squared])
        with pytest.raises(PaillierError, match="Z_"):
            ModexpEngine(workers=1).decrypt_raw_batch(PRIV, [-1])


class TestDgkThroughEngine:
    def _transcript(self, engine, seed=9):
        channel = Channel()
        holder, other = make_party_pair(channel, seed, seed + 1)
        result = dgk_greater_than(holder, 13, other, 9, 5, KEYS,
                                  engine=engine)
        return result, [(e.label, e.value) for e in
                        channel.transcript.entries]

    def test_bit_identical_transcripts(self):
        """Same seeds, same messages on the wire -- engine or not."""
        serial_result, serial_transcript = self._transcript(None)
        with _parallel_engine() as engine:
            engine_result, engine_transcript = self._transcript(engine)
        assert serial_result is True and engine_result is True
        assert serial_transcript == engine_transcript

    @pytest.mark.parametrize("x,y", [(0, 0), (0, 7), (7, 0), (5, 5),
                                     (6, 5), (5, 6)])
    def test_comparison_results(self, x, y):
        channel = Channel()
        holder, other = make_party_pair(channel, 11, 12)
        with _parallel_engine() as engine:
            assert dgk_greater_than(holder, x, other, y, 3, KEYS,
                                    engine=engine) == (x > y)


@pytest.mark.slow
class TestWorkerScaling:
    """Heavier fills across worker counts -- excluded from tier-1."""

    def test_fill_identical_across_worker_counts(self):
        reference = RandomnessPool(PUB, random.Random(14))
        reference.refill(120)
        expected = list(reference._factors)
        for workers in (1, 2, 4):
            pool = RandomnessPool(PUB, random.Random(14))
            with ModexpEngine(workers=workers) as engine:
                engine.fill_pool(pool, 120)
            assert list(pool._factors) == expected, workers
