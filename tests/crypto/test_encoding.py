"""Tests for fixed-point and signed encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.encoding import (
    EncodingError,
    FixedPointEncoder,
    SignedEncoder,
)


class TestFixedPointEncoder:
    def test_basic_quantization(self):
        encoder = FixedPointEncoder(100)
        assert encoder.encode(1.25) == 125
        assert encoder.encode(-0.335) == -34  # round half away handled by round()
        assert encoder.decode(125) == 1.25

    def test_scale_one(self):
        encoder = FixedPointEncoder(1)
        assert encoder.encode(3.4) == 3

    def test_invalid_scale(self):
        with pytest.raises(EncodingError, match="scale"):
            FixedPointEncoder(0)

    def test_encode_point(self):
        encoder = FixedPointEncoder(10)
        assert encoder.encode_point((1.0, -2.5)) == (10, -25)

    def test_eps_squared_exact_grid(self):
        encoder = FixedPointEncoder(100)
        # eps = 1.0 -> threshold (100)^2 = 10000.
        assert encoder.encode_eps_squared(1.0) == 10000

    def test_eps_squared_fractional(self):
        encoder = FixedPointEncoder(100)
        assert encoder.encode_eps_squared(0.25) == 625

    @given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
    def test_roundtrip_error_bounded(self, value):
        encoder = FixedPointEncoder(100)
        decoded = encoder.decode(encoder.encode(value))
        assert abs(decoded - value) <= 0.5 / 100 + 1e-9

    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_grid_values_roundtrip_exactly(self, grid_value):
        encoder = FixedPointEncoder(100)
        assert encoder.encode(grid_value / 100) == grid_value

    def test_max_squared_distance_bound(self):
        encoder = FixedPointEncoder(10)
        # coords within +/-5.0 -> per axis diff <= 100 grid steps.
        bound = encoder.max_squared_distance(5.0, 2)
        assert bound == 2 * 100 * 100

    def test_max_squared_distance_is_an_upper_bound(self):
        encoder = FixedPointEncoder(10)
        bound = encoder.max_squared_distance(5.0, 2)
        a = encoder.encode_point((5.0, 5.0))
        b = encoder.encode_point((-5.0, -5.0))
        actual = sum((x - y) ** 2 for x, y in zip(a, b))
        assert actual <= bound

    def test_bad_dimensions(self):
        with pytest.raises(EncodingError, match="dimensions"):
            FixedPointEncoder(10).max_squared_distance(1.0, 0)


class TestSignedEncoder:
    def test_roundtrip(self):
        encoder = SignedEncoder(1009)
        for value in (-504, -1, 0, 1, 504):
            assert encoder.decode(encoder.encode(value)) == value

    def test_overflow_raises(self):
        encoder = SignedEncoder(1009)
        with pytest.raises(EncodingError, match="capacity"):
            encoder.encode(505)

    def test_decode_range_check(self):
        encoder = SignedEncoder(1009)
        with pytest.raises(EncodingError, match="outside"):
            encoder.decode(1009)

    def test_small_modulus_rejected(self):
        with pytest.raises(EncodingError, match="too small"):
            SignedEncoder(2)

    @given(st.integers(min_value=3, max_value=10**9), st.data())
    def test_roundtrip_property(self, modulus, data):
        encoder = SignedEncoder(modulus)
        value = data.draw(st.integers(min_value=-encoder.half_range,
                                      max_value=encoder.half_range))
        encoded = encoder.encode(value)
        assert 0 <= encoded < modulus
        assert encoder.decode(encoded) == value

    @given(st.integers(min_value=3, max_value=10**6), st.data())
    def test_addition_mod_n_matches_integer_addition(self, modulus, data):
        encoder = SignedEncoder(modulus)
        quarter = encoder.half_range // 2
        a = data.draw(st.integers(min_value=-quarter, max_value=quarter))
        b = data.draw(st.integers(min_value=-quarter, max_value=quarter))
        total = (encoder.encode(a) + encoder.encode(b)) % modulus
        assert encoder.decode(total) == a + b
