"""Tests for CRT-accelerated Paillier decryption."""

import random

from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import generate_paillier_keypair

KEYS = cached_paillier_keypair(256, 905)
RNG = random.Random(77)


class TestCrtDecryption:
    def test_constants_present(self):
        assert KEYS.private_key.hp is not None
        assert KEYS.private_key.hq is not None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**120))
    def test_matches_standard_path(self, message):
        cipher = KEYS.public_key.encrypt(message, RNG)
        assert KEYS.private_key.decrypt_raw(cipher.value) \
            == KEYS.private_key.decrypt_raw_standard(cipher.value)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**100),
           st.integers(min_value=0, max_value=2**20))
    def test_matches_after_homomorphic_ops(self, m1, m2):
        combined = (KEYS.public_key.encrypt(m1, RNG) * 3 + m2)
        assert KEYS.private_key.decrypt_raw(combined.value) \
            == KEYS.private_key.decrypt_raw_standard(combined.value)

    def test_random_g_keys_also_crt(self):
        keys = generate_paillier_keypair(128, random.Random(8),
                                         random_g=True)
        for message in (0, 1, 12345, keys.public_key.n - 1):
            cipher = keys.public_key.encrypt(message, random.Random(9))
            assert keys.private_key.decrypt(cipher) == message
            assert keys.private_key.decrypt_raw_standard(cipher.value) \
                == message

    def test_crt_is_faster(self):
        """Not a strict perf assertion -- just that CRT never regresses
        past the standard path on a batch (generous 1.5x allowance for
        scheduler noise)."""
        import time
        keys = cached_paillier_keypair(512, 906)
        ciphers = [keys.public_key.encrypt(i * 999983, RNG).value
                   for i in range(40)]
        started = time.perf_counter()
        crt_results = [keys.private_key.decrypt_raw(c) for c in ciphers]
        crt_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        std_results = [keys.private_key.decrypt_raw_standard(c)
                       for c in ciphers]
        std_elapsed = time.perf_counter() - started
        assert crt_results == std_results
        assert crt_elapsed < 1.5 * std_elapsed

    def test_tampered_ciphertext_still_defined(self):
        cipher = KEYS.public_key.encrypt(42, RNG)
        garbage = KEYS.private_key.decrypt_raw(cipher.value ^ 3)
        assert 0 <= garbage < KEYS.public_key.n
