"""Tests for the deterministic key cache."""

from repro.crypto.keycache import cached_paillier_keypair, cached_rsa_keypair


class TestKeyCache:
    def test_same_arguments_same_object(self):
        assert cached_paillier_keypair(256, 1) is cached_paillier_keypair(256, 1)
        assert cached_rsa_keypair(512, 1) is cached_rsa_keypair(512, 1)

    def test_different_seeds_different_keys(self):
        a = cached_paillier_keypair(256, 2)
        b = cached_paillier_keypair(256, 3)
        assert a.public_key.n != b.public_key.n

    def test_different_sizes_different_keys(self):
        a = cached_paillier_keypair(128, 4)
        b = cached_paillier_keypair(256, 4)
        assert a.public_key.bits < b.public_key.bits

    def test_rsa_and_paillier_independent(self):
        rsa = cached_rsa_keypair(256, 5)
        paillier = cached_paillier_keypair(256, 5)
        assert rsa.public_key.n != paillier.public_key.n

    def test_cached_keys_work(self):
        import random
        keys = cached_paillier_keypair(256, 6)
        cipher = keys.public_key.encrypt(777, random.Random(0))
        assert keys.private_key.decrypt(cipher) == 777
