"""Tests for the Paillier cryptosystem, including the Section 3.7
homomorphic property equations as hypothesis properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierError,
    generate_paillier_keypair,
)

KEYS = cached_paillier_keypair(256, 900)
PUB = KEYS.public_key
PRIV = KEYS.private_key
RNG = random.Random(31337)

plaintexts = st.integers(min_value=0, max_value=2**120)
signed_values = st.integers(min_value=-(2**100), max_value=2**100)


class TestKeyGeneration:
    def test_modulus_size(self):
        assert PUB.bits in (255, 256)
        assert PUB.n_squared == PUB.n * PUB.n

    def test_default_g(self):
        assert PUB.g == PUB.n + 1

    def test_random_g_mode(self):
        keys = generate_paillier_keypair(128, random.Random(5), random_g=True)
        assert keys.public_key.g != keys.public_key.n + 1
        cipher = keys.public_key.encrypt(12345, random.Random(6))
        assert keys.private_key.decrypt(cipher) == 12345

    def test_too_small_raises(self):
        with pytest.raises(PaillierError, match="too small"):
            generate_paillier_keypair(32, random.Random(0))

    def test_deterministic_cache(self):
        assert cached_paillier_keypair(256, 900) is KEYS

    def test_private_factors(self):
        assert PRIV.p * PRIV.q == PUB.n


class TestEncryptDecrypt:
    @settings(max_examples=30, deadline=None)
    @given(plaintexts)
    def test_roundtrip(self, message):
        cipher = PUB.encrypt(message, RNG)
        assert PRIV.decrypt(cipher) == message

    def test_out_of_range_raises(self):
        with pytest.raises(PaillierError, match="outside"):
            PUB.raw_encrypt(PUB.n, 2)

    def test_negative_raises(self):
        with pytest.raises(PaillierError, match="outside"):
            PUB.raw_encrypt(-1, 2)

    def test_probabilistic(self):
        a = PUB.encrypt(42, RNG)
        b = PUB.encrypt(42, RNG)
        assert a.value != b.value
        assert PRIV.decrypt(a) == PRIV.decrypt(b) == 42

    def test_key_mismatch_raises(self):
        other = cached_paillier_keypair(256, 901)
        cipher = other.public_key.encrypt(5, RNG)
        with pytest.raises(PaillierError, match="different key"):
            PRIV.decrypt(cipher)


class TestHomomorphicProperties:
    """The two Section 3.7 equations."""

    @settings(max_examples=30, deadline=None)
    @given(plaintexts, plaintexts)
    def test_homomorphic_addition(self, m1, m2):
        # D(E(m1) * E(m2) mod n^2) = m1 + m2 mod n
        combined = PUB.encrypt(m1, RNG) + PUB.encrypt(m2, RNG)
        assert PRIV.decrypt(combined) == (m1 + m2) % PUB.n

    @settings(max_examples=30, deadline=None)
    @given(plaintexts, st.integers(min_value=0, max_value=2**40))
    def test_homomorphic_scalar_multiplication(self, m1, m2):
        # D(E(m1)^m2 mod n^2) = m1 * m2 mod n
        scaled = PUB.encrypt(m1, RNG) * m2
        assert PRIV.decrypt(scaled) == (m1 * m2) % PUB.n

    @settings(max_examples=20, deadline=None)
    @given(plaintexts, st.integers(min_value=0, max_value=2**40))
    def test_plaintext_constant_addition(self, m1, constant):
        shifted = PUB.encrypt(m1, RNG) + constant
        assert PRIV.decrypt(shifted) == (m1 + constant) % PUB.n

    @settings(max_examples=20, deadline=None)
    @given(plaintexts, plaintexts)
    def test_subtraction(self, m1, m2):
        difference = PUB.encrypt(m1, RNG) - PUB.encrypt(m2, RNG)
        assert PRIV.decrypt(difference) == (m1 - m2) % PUB.n

    def test_add_requires_same_key(self):
        other = cached_paillier_keypair(256, 901)
        with pytest.raises(PaillierError, match="different keys"):
            __ = PUB.encrypt(1, RNG) + other.public_key.encrypt(2, RNG)

    def test_multiply_rejects_non_integer(self):
        with pytest.raises(PaillierError, match="integer"):
            __ = PUB.encrypt(1, RNG) * 2.5


class TestRerandomize:
    def test_preserves_plaintext_changes_ciphertext(self):
        original = PUB.encrypt(777, RNG)
        refreshed = original.rerandomize(RNG)
        assert refreshed.value != original.value
        assert PRIV.decrypt(refreshed) == 777

    @settings(max_examples=15, deadline=None)
    @given(plaintexts)
    def test_rerandomize_property(self, message):
        cipher = PUB.encrypt(message, RNG).rerandomize(RNG)
        assert PRIV.decrypt(cipher) == message


class TestSignedEncryption:
    @settings(max_examples=30, deadline=None)
    @given(signed_values)
    def test_signed_roundtrip(self, value):
        cipher = PUB.encrypt_signed(value, RNG)
        assert PRIV.decrypt_signed(cipher) == value

    def test_signed_overflow_raises(self):
        with pytest.raises(PaillierError, match="exceeds"):
            PUB.encrypt_signed(PUB.n, RNG)

    def test_signed_arithmetic(self):
        total = PUB.encrypt_signed(-50, RNG) + PUB.encrypt_signed(20, RNG)
        assert PRIV.decrypt_signed(total) == -30


class TestCiphertextBehaviour:
    def test_equality_and_hash(self):
        cipher = PUB.encrypt(9, RNG)
        clone = PaillierCiphertext(PUB, cipher.value)
        assert cipher == clone
        assert hash(cipher) == hash(clone)

    def test_repr_hides_value(self):
        assert "value" not in repr(PUB.encrypt(9, RNG))

    def test_random_unit_is_coprime(self):
        import math
        for _ in range(10):
            assert math.gcd(PUB.random_unit(RNG), PUB.n) == 1
