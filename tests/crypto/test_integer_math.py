"""Unit and property tests for modular arithmetic primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.crypto.integer_math import (
    crt_pair,
    egcd,
    int_bit_length_bytes,
    isqrt_exact,
    lcm,
    mod_inverse,
    pow_mod,
)


class TestEgcd:
    def test_coprime_pair(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_zero_operand(self):
        g, x, y = egcd(0, 7)
        assert g == 7
        assert 0 * x + 7 * y == 7

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModInverse:
    def test_small_case(self):
        assert mod_inverse(3, 7) == 5

    def test_identity(self):
        assert mod_inverse(1, 97) == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError, match="no inverse"):
            mod_inverse(6, 9)

    def test_nonpositive_modulus_raises(self):
        with pytest.raises(ValueError, match="positive"):
            mod_inverse(3, 0)

    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=2, max_value=10**9))
    def test_inverse_property(self, a, modulus):
        if math.gcd(a, modulus) != 1:
            with pytest.raises(ValueError):
                mod_inverse(a, modulus)
        else:
            inverse = mod_inverse(a, modulus)
            assert (a * inverse) % modulus == 1
            assert 0 <= inverse < modulus


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12

    def test_zero(self):
        assert lcm(0, 5) == 0

    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_divisibility(self, a, b):
        result = lcm(a, b)
        assert result % a == 0
        assert result % b == 0
        assert result <= a * b


class TestCrtPair:
    def test_small_case(self):
        # x = 2 mod 3, x = 3 mod 5  ->  x = 8 mod 15
        assert crt_pair(2, 3, 3, 5) == 8

    def test_non_coprime_raises(self):
        with pytest.raises(ValueError, match="coprime"):
            crt_pair(1, 4, 3, 6)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_roundtrip(self, x):
        p, q = 10007, 10009
        value = x % (p * q)
        assert crt_pair(value % p, p, value % q, q) == value


class TestBitLengthBytes:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (255, 1), (256, 2), (65535, 2), (65536, 3),
        (-300, 2),
    ])
    def test_cases(self, value, expected):
        assert int_bit_length_bytes(value) == expected


class TestIsqrtExact:
    def test_perfect_square(self):
        assert isqrt_exact(144) == 12

    def test_non_square(self):
        assert isqrt_exact(145) is None

    def test_negative(self):
        assert isqrt_exact(-4) is None

    @given(st.integers(min_value=0, max_value=10**9))
    def test_squares_recognized(self, root):
        assert isqrt_exact(root * root) == root


class TestPowMod:
    def test_positive_exponent(self):
        assert pow_mod(3, 4, 7) == 81 % 7

    def test_negative_exponent(self):
        # 3^-1 mod 7 = 5, so 3^-2 = 25 mod 7 = 4.
        assert pow_mod(3, -2, 7) == 4

    def test_bad_modulus(self):
        with pytest.raises(ValueError, match="positive"):
            pow_mod(2, 2, 0)

    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=-20, max_value=20))
    def test_inverse_consistency(self, base, exponent):
        modulus = 1000003  # prime, so every base is invertible
        forward = pow_mod(base, exponent, modulus)
        backward = pow_mod(base, -exponent, modulus)
        assert (forward * backward) % modulus == 1
