"""Tests for the textbook RSA used inside YMPP."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_rsa_keypair
from repro.crypto.rsa import RsaError, generate_rsa_keypair

KEYS = cached_rsa_keypair(512, 800)


class TestKeyGeneration:
    def test_modulus_size(self):
        assert KEYS.public_key.bits in (511, 512)

    def test_public_exponent(self):
        assert KEYS.public_key.e == 65537

    def test_too_small_raises(self):
        with pytest.raises(RsaError, match="too small"):
            generate_rsa_keypair(32, random.Random(0))

    def test_deterministic_under_seed(self):
        a = generate_rsa_keypair(128, random.Random(4))
        b = generate_rsa_keypair(128, random.Random(4))
        assert a.public_key.n == b.public_key.n


class TestEncryptDecrypt:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**256))
    def test_roundtrip(self, message):
        message %= KEYS.public_key.n
        assert KEYS.private_key.decrypt(
            KEYS.public_key.encrypt(message)) == message

    def test_out_of_range_raises(self):
        with pytest.raises(RsaError, match="outside"):
            KEYS.public_key.encrypt(KEYS.public_key.n)

    def test_decrypt_arbitrary_group_elements(self):
        # YMPP decrypts shifted ciphertexts that were never produced by
        # encrypt(); raw RSA must be a permutation of Z_n.
        n = KEYS.public_key.n
        seen = {KEYS.private_key.decrypt(value)
                for value in (0, 1, 2, n - 1, 12345)}
        assert len(seen) == 5

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**128))
    def test_permutation_property(self, value):
        # decrypt(encrypt(x)) == x and encrypt(decrypt(y)) == y.
        value %= KEYS.public_key.n
        assert KEYS.public_key.encrypt(
            KEYS.private_key.decrypt(value)) == value
