"""Tests for the offline precomputation layer (pools, fixed bases)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import PaillierError, generate_paillier_keypair
from repro.crypto.precompute import (
    FixedBaseExp,
    PrecomputeError,
    RandomnessPool,
)

KEYS = cached_paillier_keypair(256, 910)
PUB = KEYS.public_key
PRIV = KEYS.private_key


def _pool(seed=0):
    return RandomnessPool(PUB, random.Random(seed))


class TestRandomnessPool:
    def test_pooled_encryption_decrypts_identically_to_fresh(self):
        """The binding property: a pooled ciphertext is an ordinary
        ciphertext -- same plaintext back out, under either decrypt path."""
        pool = _pool(1)
        pool.refill(8)
        rng = random.Random(2)
        for message in (0, 1, 17, PUB.n - 1, PUB.n // 2):
            fresh = PUB.encrypt(message, rng)
            pooled = PUB.encrypt(message, rng, pool)
            assert PRIV.decrypt(pooled) == PRIV.decrypt(fresh) == message
            assert PRIV.decrypt_raw_standard(pooled.value) == message

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64))
    def test_pooled_encryption_roundtrip_property(self, message):
        pool = _pool(3)
        assert PRIV.decrypt(PUB.encrypt(message, pool.rng, pool)) == message

    def test_empty_pool_falls_back_and_counts_misses(self):
        pool = _pool(4)
        pool.refill(2)
        for _ in range(5):
            PUB.encrypt(9, pool.rng, pool)
        assert pool.pregenerated == 2
        assert pool.consumed == 5
        assert pool.misses == 3
        assert len(pool) == 0
        assert pool.report() == {"pregenerated": 2, "consumed": 5,
                                 "misses": 3, "available": 0}

    def test_prefilled_pool_has_zero_misses(self):
        pool = _pool(5)
        pool.refill(10)
        for _ in range(10):
            pool.encryption_factor()
        assert pool.misses == 0

    def test_factors_are_consumed_once(self):
        pool = _pool(6)
        pool.refill(4)
        factors = [pool.encryption_factor() for _ in range(4)]
        assert len(set(factors)) == 4  # never handed out twice

    def test_rerandomize_with_pool_preserves_plaintext(self):
        pool = _pool(7)
        pool.refill(3)
        cipher = PUB.encrypt(123, pool.rng)
        refreshed = cipher.rerandomize(pool.rng, pool)
        assert refreshed.value != cipher.value
        assert PRIV.decrypt(refreshed) == 123

    def test_pool_key_mismatch_raises(self):
        other = cached_paillier_keypair(256, 911)
        pool = RandomnessPool(other.public_key, random.Random(0))
        with pytest.raises(PaillierError, match="different key"):
            PUB.encrypt(1, pool.rng, pool)
        with pytest.raises(PaillierError, match="different key"):
            PUB.encrypt(1, pool.rng).rerandomize(pool.rng, pool)

    def test_negative_refill_rejected(self):
        with pytest.raises(PrecomputeError):
            _pool(8).refill(-1)

    def test_rerandomization_unit_draws_same_queue(self):
        pool = _pool(9)
        pool.refill(2)
        pool.rerandomization_unit()
        pool.encryption_factor()
        assert pool.consumed == 2 and pool.misses == 0


class TestBatchEntryPoints:
    def test_encrypt_decrypt_batch_roundtrip(self):
        rng = random.Random(10)
        messages = [0, 5, 999, PUB.n - 1]
        ciphers = PUB.encrypt_batch(messages, rng)
        assert PRIV.decrypt_batch(ciphers) == messages
        assert PRIV.decrypt_raw_batch([c.value for c in ciphers]) == messages

    def test_encrypt_batch_consumes_pool(self):
        pool = _pool(11)
        pool.refill(6)
        PUB.encrypt_batch([1, 2, 3], pool.rng, pool)
        assert pool.consumed == 3 and len(pool) == 3

    @pytest.mark.parametrize("workers,min_parallel", [(1, 32), (2, 2)])
    def test_empty_pool_misses_counted_through_engine_batch(
            self, workers, min_parallel):
        """The batch API's miss accounting: an engine encrypt_batch over
        an empty pool must count one consumed + one miss per plaintext
        (and still decrypt correctly), on both the serial path and the
        sharded path that collects misses into one modexp batch."""
        from repro.crypto.engine import ModexpEngine
        pool = _pool(12)
        messages = [3, 1, 4, 1, 5, 9]
        with ModexpEngine(workers=workers,
                          min_parallel_jobs=min_parallel) as engine:
            ciphers = engine.encrypt_batch(PUB, messages, pool.rng, pool)
        assert [PRIV.decrypt(c) for c in ciphers] == messages
        assert pool.report() == {"pregenerated": 0, "consumed": 6,
                                 "misses": 6, "available": 0}

    def test_partially_filled_pool_misses_only_the_shortfall(self):
        from repro.crypto.engine import ModexpEngine
        pool = _pool(13)
        pool.refill(2)
        with ModexpEngine(workers=2, min_parallel_jobs=2) as engine:
            engine.encrypt_batch(PUB, [7, 7, 7, 7, 7], pool.rng, pool)
        assert pool.report() == {"pregenerated": 2, "consumed": 5,
                                 "misses": 3, "available": 0}


class TestFixedBaseExp:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_matches_builtin_pow(self, exponent):
        table = FixedBaseExp(base=1234567891011, modulus=(1 << 127) - 1,
                             max_bits=64)
        assert table.pow(exponent) == pow(1234567891011, exponent,
                                          (1 << 127) - 1)

    def test_boundaries(self):
        table = FixedBaseExp(base=7, modulus=1000003, max_bits=16, window=3)
        for exponent in (0, 1, 2, (1 << 16) - 1):
            assert table.pow(exponent) == pow(7, exponent, 1000003)
        with pytest.raises(PrecomputeError):
            table.pow(1 << 16)
        with pytest.raises(PrecomputeError):
            table.pow(-1)

    def test_invalid_parameters(self):
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 1, 8)
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 11, 0)
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 11, 8, window=0)

    def test_random_g_keypair_uses_table_path(self):
        """End-to-end through Paillier: a random-g key encrypts via the
        fixed-base table and still round-trips."""
        keys = generate_paillier_keypair(128, random.Random(42),
                                        random_g=True)
        assert keys.public_key.g != keys.public_key.n + 1
        rng = random.Random(43)
        for message in (0, 1, 12345, keys.public_key.n - 1):
            cipher = keys.public_key.encrypt(message, rng)
            assert keys.private_key.decrypt(cipher) == message
