"""Tests for the offline precomputation layer (pools, fixed bases)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import PaillierError, generate_paillier_keypair
from repro.crypto.precompute import (
    FixedBaseExp,
    PrecomputeError,
    RandomnessPool,
)

KEYS = cached_paillier_keypair(256, 910)
PUB = KEYS.public_key
PRIV = KEYS.private_key


def _pool(seed=0):
    return RandomnessPool(PUB, random.Random(seed))


class TestRandomnessPool:
    def test_pooled_encryption_decrypts_identically_to_fresh(self):
        """The binding property: a pooled ciphertext is an ordinary
        ciphertext -- same plaintext back out, under either decrypt path."""
        pool = _pool(1)
        pool.refill(8)
        rng = random.Random(2)
        for message in (0, 1, 17, PUB.n - 1, PUB.n // 2):
            fresh = PUB.encrypt(message, rng)
            pooled = PUB.encrypt(message, rng, pool)
            assert PRIV.decrypt(pooled) == PRIV.decrypt(fresh) == message
            assert PRIV.decrypt_raw_standard(pooled.value) == message

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64))
    def test_pooled_encryption_roundtrip_property(self, message):
        pool = _pool(3)
        assert PRIV.decrypt(PUB.encrypt(message, pool.rng, pool)) == message

    def test_empty_pool_falls_back_and_counts_misses(self):
        pool = _pool(4)
        pool.refill(2)
        for _ in range(5):
            PUB.encrypt(9, pool.rng, pool)
        assert pool.pregenerated == 2
        assert pool.consumed == 5
        assert pool.misses == 3
        assert len(pool) == 0
        assert pool.report() == {"pregenerated": 2, "consumed": 5,
                                 "misses": 3, "available": 0}

    def test_prefilled_pool_has_zero_misses(self):
        pool = _pool(5)
        pool.refill(10)
        for _ in range(10):
            pool.encryption_factor()
        assert pool.misses == 0

    def test_factors_are_consumed_once(self):
        pool = _pool(6)
        pool.refill(4)
        factors = [pool.encryption_factor() for _ in range(4)]
        assert len(set(factors)) == 4  # never handed out twice

    def test_rerandomize_with_pool_preserves_plaintext(self):
        pool = _pool(7)
        pool.refill(3)
        cipher = PUB.encrypt(123, pool.rng)
        refreshed = cipher.rerandomize(pool.rng, pool)
        assert refreshed.value != cipher.value
        assert PRIV.decrypt(refreshed) == 123

    def test_pool_key_mismatch_raises(self):
        other = cached_paillier_keypair(256, 911)
        pool = RandomnessPool(other.public_key, random.Random(0))
        with pytest.raises(PaillierError, match="different key"):
            PUB.encrypt(1, pool.rng, pool)
        with pytest.raises(PaillierError, match="different key"):
            PUB.encrypt(1, pool.rng).rerandomize(pool.rng, pool)

    def test_negative_refill_rejected(self):
        with pytest.raises(PrecomputeError):
            _pool(8).refill(-1)

    def test_rerandomization_unit_draws_same_queue(self):
        pool = _pool(9)
        pool.refill(2)
        pool.rerandomization_unit()
        pool.encryption_factor()
        assert pool.consumed == 2 and pool.misses == 0


class TestBatchEntryPoints:
    def test_encrypt_decrypt_batch_roundtrip(self):
        rng = random.Random(10)
        messages = [0, 5, 999, PUB.n - 1]
        ciphers = PUB.encrypt_batch(messages, rng)
        assert PRIV.decrypt_batch(ciphers) == messages
        assert PRIV.decrypt_raw_batch([c.value for c in ciphers]) == messages

    def test_encrypt_batch_consumes_pool(self):
        pool = _pool(11)
        pool.refill(6)
        PUB.encrypt_batch([1, 2, 3], pool.rng, pool)
        assert pool.consumed == 3 and len(pool) == 3

    @pytest.mark.parametrize("workers,min_parallel", [(1, 32), (2, 2)])
    def test_empty_pool_misses_counted_through_engine_batch(
            self, workers, min_parallel):
        """The batch API's miss accounting: an engine encrypt_batch over
        an empty pool must count one consumed + one miss per plaintext
        (and still decrypt correctly), on both the serial path and the
        sharded path that collects misses into one modexp batch."""
        from repro.crypto.engine import ModexpEngine
        pool = _pool(12)
        messages = [3, 1, 4, 1, 5, 9]
        with ModexpEngine(workers=workers,
                          min_parallel_jobs=min_parallel) as engine:
            ciphers = engine.encrypt_batch(PUB, messages, pool.rng, pool)
        assert [PRIV.decrypt(c) for c in ciphers] == messages
        assert pool.report() == {"pregenerated": 0, "consumed": 6,
                                 "misses": 6, "available": 0}

    def test_partially_filled_pool_misses_only_the_shortfall(self):
        from repro.crypto.engine import ModexpEngine
        pool = _pool(13)
        pool.refill(2)
        with ModexpEngine(workers=2, min_parallel_jobs=2) as engine:
            engine.encrypt_batch(PUB, [7, 7, 7, 7, 7], pool.rng, pool)
        assert pool.report() == {"pregenerated": 2, "consumed": 5,
                                 "misses": 3, "available": 0}


class TestFixedBaseExp:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_matches_builtin_pow(self, exponent):
        table = FixedBaseExp(base=1234567891011, modulus=(1 << 127) - 1,
                             max_bits=64)
        assert table.pow(exponent) == pow(1234567891011, exponent,
                                          (1 << 127) - 1)

    def test_boundaries(self):
        table = FixedBaseExp(base=7, modulus=1000003, max_bits=16, window=3)
        for exponent in (0, 1, 2, (1 << 16) - 1):
            assert table.pow(exponent) == pow(7, exponent, 1000003)
        with pytest.raises(PrecomputeError):
            table.pow(1 << 16)
        with pytest.raises(PrecomputeError):
            table.pow(-1)

    def test_invalid_parameters(self):
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 1, 8)
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 11, 0)
        with pytest.raises(PrecomputeError):
            FixedBaseExp(2, 11, 8, window=0)

    def test_random_g_keypair_uses_table_path(self):
        """End-to-end through Paillier: a random-g key encrypts via the
        fixed-base table and still round-trips."""
        keys = generate_paillier_keypair(128, random.Random(42),
                                        random_g=True)
        assert keys.public_key.g != keys.public_key.n + 1
        rng = random.Random(43)
        for message in (0, 1, 12345, keys.public_key.n - 1):
            cipher = keys.public_key.encrypt(message, rng)
            assert keys.private_key.decrypt(cipher) == message


class TestRandomnessService:
    """The daemon-wide broker: demand learning, leases, idle refill."""

    DIGEST_A = "a" * 64
    DIGEST_B = "b" * 64

    def _service(self, **kwargs):
        from repro.crypto.precompute import RandomnessService
        return RandomnessService(**kwargs)

    def test_released_demand_prefills_the_next_lease(self):
        service = self._service()
        first = service.lease("s1")
        pool = _pool(20)
        assert first.register_pool(pool, self.DIGEST_A, True) == 0
        for _ in range(5):
            pool.encryption_factor()   # all misses: cold first session
        report = service.release("s1")
        assert report["misses"] == 5 and report["hits"] == 0

        second = service.lease("s2")
        warm = _pool(21)
        assert second.register_pool(warm, self.DIGEST_A, True) == 5
        assert len(warm) == 5
        for _ in range(5):
            warm.encryption_factor()
        report = service.release("s2")
        assert report["misses"] == 0 and report["hits"] == 5
        assert report["prefilled"] == 5
        assert service.report()["sessions_served"] == 2

    def test_demand_scoped_by_digest_and_role(self):
        service = self._service()
        grant = service.lease("s1")
        owner_pool, peer_pool = _pool(22), _pool(23)
        grant.register_pool(owner_pool, self.DIGEST_A, True)
        grant.register_pool(peer_pool, self.DIGEST_A, False)
        for _ in range(3):
            owner_pool.encryption_factor()
        peer_pool.encryption_factor()
        service.release("s1")
        assert service.demand_for((self.DIGEST_A[:16], True)) == 3
        assert service.demand_for((self.DIGEST_A[:16], False)) == 1
        # A different keypair shares nothing.
        assert service.demand_for((self.DIGEST_B[:16], True)) == 0
        fresh = service.lease("s2")
        other_key = _pool(24)
        assert fresh.register_pool(other_key, self.DIGEST_B, True) == 0
        assert len(other_key) == 0

    def test_factor_values_never_cross_sessions(self):
        """Only demand *counts* transfer: two sessions' pools draw from
        their own RNG streams, so their factor values are disjoint."""
        service = self._service()
        grant = service.lease("s1")
        pool = _pool(25)
        grant.register_pool(pool, self.DIGEST_A, True)
        for _ in range(4):
            pool.encryption_factor()
        service.release("s1")

        one = service.lease("s2")
        two = service.lease("s3")
        pool_one, pool_two = _pool(26), _pool(27)
        one.register_pool(pool_one, self.DIGEST_A, True)
        two.register_pool(pool_two, self.DIGEST_A, True)
        drawn_one = {pool_one.encryption_factor() for _ in range(4)}
        drawn_two = {pool_two.encryption_factor() for _ in range(4)}
        assert not drawn_one & drawn_two
        # And a same-seeded pool reproduces its stream exactly: warmth
        # changes timing, never values.
        replay = _pool(26)
        replay.refill(4)
        assert {replay.encryption_factor() for _ in range(4)} == drawn_one

    def test_miss_accounting_stays_per_session(self):
        service = self._service()
        grant = service.lease("s1")
        pool = _pool(28)
        grant.register_pool(pool, self.DIGEST_A, True)
        for _ in range(2):
            pool.encryption_factor()
        service.release("s1")

        warm_grant = service.lease("warm")
        cold_grant = service.lease("cold")
        warm = _pool(29)
        warm_grant.register_pool(warm, self.DIGEST_A, True)
        cold = _pool(30)
        cold_grant.register_pool(cold, self.DIGEST_B, True)  # no demand
        for _ in range(2):
            warm.encryption_factor()
            cold.encryption_factor()
        warm_report = service.release("warm")
        cold_report = service.release("cold")
        assert warm_report["hits"] == 2 and warm_report["misses"] == 0
        assert cold_report["hits"] == 0 and cold_report["misses"] == 2

    def test_refill_step_skips_busy_leases(self):
        service = self._service(refill_chunk=3)
        seed_demand = service.lease("s1")
        pool = _pool(31)
        seed_demand.register_pool(pool, self.DIGEST_A, True)
        for _ in range(5):
            pool.encryption_factor()
        service.release("s1")

        grant = service.lease("s2")
        empty = _pool(32)
        # Register with demand already learned: prefilled to 5.
        assert grant.register_pool(empty, self.DIGEST_A, True) == 5
        for _ in range(5):
            empty.encryption_factor()
        grant.busy += 1            # a restartable query is in flight
        assert service.refill_step() == 0
        grant.busy -= 1
        assert service.refill_step() == 3    # one chunk
        assert service.refill_step() == 2    # the remaining shortfall
        assert service.refill_step() == 0    # at target
        assert grant.background_refilled == 5
        report = service.release("s2")
        assert report["background_refilled"] == 5

    def test_refill_idle_coroutine_tops_up_between_work(self):
        import asyncio

        service = self._service(refill_chunk=2, idle_interval_s=0.001)
        seed_demand = service.lease("s1")
        pool = _pool(33)
        seed_demand.register_pool(pool, self.DIGEST_A, True)
        for _ in range(4):
            pool.encryption_factor()
        service.release("s1")

        async def scenario():
            grant = service.lease("s2")
            empty = _pool(34)
            grant.pools.append(((self.DIGEST_A[:16], True), empty))
            refiller = asyncio.get_running_loop().create_task(
                service.refill_idle())
            try:
                async with asyncio.timeout(10):
                    while len(empty) < 4:
                        await asyncio.sleep(0.001)
            finally:
                refiller.cancel()
            assert grant.background_refilled == 4

        asyncio.run(scenario())

    def test_lease_lifecycle_errors(self):
        service = self._service()
        grant = service.lease("s1")
        with pytest.raises(PrecomputeError, match="already holds"):
            service.lease("s1")
        with pytest.raises(PrecomputeError, match="no lease"):
            service.release("unknown")
        service.release("s1")
        with pytest.raises(PrecomputeError, match="already released"):
            grant.register_pool(_pool(35), self.DIGEST_A, True)
        service.close()
        with pytest.raises(PrecomputeError, match="closed"):
            service.lease("s2")

    def test_invalid_refill_chunk(self):
        with pytest.raises(PrecomputeError, match="refill_chunk"):
            self._service(refill_chunk=0)

    def test_fixed_base_tables_shared_per_key_digest(self):
        service = self._service()
        table = service.fixed_base_table(7, 1000003, 16, self.DIGEST_A)
        again = service.fixed_base_table(7, 1000003, 16, self.DIGEST_A)
        assert table is again
        other = service.fixed_base_table(7, 1000003, 16, self.DIGEST_B)
        assert other is not table
        wider = service.fixed_base_table(7, 1000003, 32, self.DIGEST_A)
        assert wider is not table
        assert service.report()["table_builds"] == 3
        assert service.report()["table_hits"] == 1
        assert table.pow(12345) == pow(7, 12345, 1000003)

    def test_engine_fill_matches_serial_fill(self):
        from repro.crypto.engine import ModexpEngine

        with ModexpEngine(workers=2, min_parallel_jobs=2) as engine:
            service = self._service(engine=engine)
            pool = _pool(36)
            service.fill(pool, 5)
        serial = _pool(36)
        serial.refill(5)
        assert list(pool._factors) == list(serial._factors)
