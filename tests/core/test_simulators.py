"""Tests for the Definition 5 simulation harness (Lemmas 7, 8)."""

import random

import pytest

from repro.core.simulators import (
    KsReport,
    ks_two_sample,
    real_hdp_term_samples,
    real_masker_view_samples,
    real_receiver_output_samples,
    simulated_hdp_term_samples,
    simulated_masker_view_samples,
    simulated_receiver_output_samples,
)
from repro.crypto.keycache import cached_paillier_keypair
from repro.smc.session import SmcConfig

CONFIG = SmcConfig(paillier_bits=256, key_seed=150, mask_sigma=16)


class TestKsMachinery:
    def test_identical_samples_pass(self):
        values = [i / 100 for i in range(100)]
        report = ks_two_sample(values, list(values))
        assert report.statistic == 0.0
        assert report.indistinguishable()

    def test_disjoint_samples_fail(self):
        left = [i / 100 for i in range(100)]
        right = [1.0 + i / 100 for i in range(100)]
        report = ks_two_sample(left, right)
        assert report.statistic == 1.0
        assert not report.indistinguishable()

    def test_same_distribution_passes(self):
        rng = random.Random(0)
        left = [rng.random() for _ in range(400)]
        right = [rng.random() for _ in range(400)]
        assert ks_two_sample(left, right).indistinguishable()

    def test_shifted_distribution_fails(self):
        rng = random.Random(1)
        left = [rng.random() for _ in range(400)]
        right = [rng.random() * 0.5 for _ in range(400)]
        assert not ks_two_sample(left, right).indistinguishable()

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ks_two_sample([], [1.0])

    def test_report_fields(self):
        report = ks_two_sample([0.1, 0.2], [0.1, 0.3])
        assert isinstance(report, KsReport)
        assert report.samples == 2
        assert 0.0 <= report.p_value <= 1.0


class TestLemma7Simulators:
    """Multiplication Protocol views vs their simulators."""

    def test_masker_view_indistinguishable(self):
        real = real_masker_view_samples(60, x=37, y=11, config=CONFIG)
        keys = cached_paillier_keypair(256, 2 * CONFIG.key_seed)
        simulated = simulated_masker_view_samples(
            60, keys, random.Random(5))
        assert ks_two_sample(real, simulated).indistinguishable()

    def test_masker_view_depends_not_on_x(self):
        """Views for two different x values are themselves
        indistinguishable -- the ciphertext hides the operand."""
        for_x1 = real_masker_view_samples(60, x=1, y=2, config=CONFIG)
        for_x2 = real_masker_view_samples(60, x=999999, y=2, config=CONFIG,
                                          seed=10_000)
        assert ks_two_sample(for_x1, for_x2).indistinguishable()

    def test_receiver_output_simulatable(self):
        mask_bound = 1 << 24
        real = real_receiver_output_samples(
            120, x=3, y=41, mask_bound=mask_bound, config=CONFIG)
        simulated = simulated_receiver_output_samples(
            120, x=3, y_bound=100, mask_bound=mask_bound,
            rng=random.Random(8))
        # With mask_bound >> x*y both are ~uniform over the mask range.
        assert ks_two_sample(real, simulated).indistinguishable(alpha=0.001)


class TestLemma8Simulators:
    """Protocol HDP's peer view vs the Lemma 8 simulator."""

    def test_masked_terms_indistinguishable_from_uniform(self):
        real = real_hdp_term_samples(
            40, querier_point=(7, -3, 12), peer_point=(2, 9, -5),
            value_bound=1000, config=CONFIG)
        simulated = simulated_hdp_term_samples(
            40, dimensions=3, value_bound=1000, config=CONFIG,
            rng=random.Random(13))
        assert ks_two_sample(real, simulated).indistinguishable()

    def test_broken_masking_detected(self):
        """Sanity check that the harness has teeth: masks drawn from a
        range not covering the products fail the KS test."""
        weak_config = SmcConfig(paillier_bits=256, key_seed=150,
                                mask_sigma=0)
        real = real_hdp_term_samples(
            40, querier_point=(1000, 1000), peer_point=(1000, 1000),
            value_bound=1, config=weak_config)
        simulated = simulated_hdp_term_samples(
            40, dimensions=2, value_bound=1, config=weak_config,
            rng=random.Random(14))
        assert not ks_two_sample(real, simulated).indistinguishable()
