"""Tests for the leakage ledger."""

from repro.core.leakage import Disclosure, LeakageLedger


def _populated() -> LeakageLedger:
    ledger = LeakageLedger()
    ledger.record("hdp", "alice", Disclosure.NEIGHBOR_BIT)
    ledger.record("hdp", "alice", Disclosure.NEIGHBOR_BIT)
    ledger.record("hdp", "bob", Disclosure.DOT_PRODUCT, "masks sum to zero")
    ledger.record("alg4", "alice", Disclosure.NEIGHBOR_COUNT, "count 3")
    return ledger


class TestLeakageLedger:
    def test_counting(self):
        ledger = _populated()
        assert ledger.count(Disclosure.NEIGHBOR_BIT) == 2
        assert ledger.count(Disclosure.NEIGHBOR_BIT, learner="alice") == 2
        assert ledger.count(Disclosure.NEIGHBOR_BIT, learner="bob") == 0
        assert ledger.count(Disclosure.CORE_BIT) == 0

    def test_profile(self):
        profile = _populated().profile()
        assert profile == {"neighbor_bit": 2, "dot_product": 1,
                           "neighbor_count": 1}

    def test_learners(self):
        assert _populated().learners() == {"alice", "bob"}

    def test_extend(self):
        left = _populated()
        right = LeakageLedger()
        right.record("x", "bob", Disclosure.CORE_BIT)
        left.extend(right)
        assert left.count(Disclosure.CORE_BIT) == 1

    def test_event_details_preserved(self):
        ledger = _populated()
        dot_events = [e for e in ledger.events
                      if e.disclosure is Disclosure.DOT_PRODUCT]
        assert dot_events[0].detail == "masks sum to zero"
        assert dot_events[0].protocol == "hdp"

    def test_empty_ledger(self):
        ledger = LeakageLedger()
        assert ledger.profile() == {}
        assert ledger.learners() == set()
