"""Tests for the vertical protocol (Algorithms 5 + 6).

Binding property: exact agreement with centralized DBSCAN on the joint
database.
"""

from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.core.config import ProtocolConfig
from repro.core.leakage import Disclosure
from repro.core.vertical import run_vertical_dbscan
from repro.data.dataset import Dataset
from repro.data.partitioning import partition_vertical
from repro.smc.session import SmcConfig


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.0, min_pts=3, scale=10,
                    smc=SmcConfig(comparison=backend, key_seed=110,
                                  mask_sigma=8),
                    alice_seed=3, bob_seed=4)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


records_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=40)),
    min_size=2, max_size=14)


class TestAgainstCentralized:
    @settings(max_examples=25, deadline=None)
    @given(records_strategy, st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=2))
    def test_random_geometries(self, records, min_pts, alice_attrs):
        dataset = Dataset.from_points(records)
        partition = partition_vertical(dataset, alice_attrs)
        config = _config(min_pts=min_pts)
        result = run_vertical_dbscan(partition, config)
        reference = dbscan(list(dataset.records), config.eps_squared,
                           config.min_pts)
        assert canonicalize(result.labels) \
            == canonicalize(reference.as_tuple())

    def test_known_clusters(self):
        records = [(0, 0, 0), (1, 0, 0), (0, 1, 0),
                   (100, 100, 100), (101, 100, 100), (100, 101, 100)]
        partition = partition_vertical(Dataset.from_points(records), 1)
        config = _config(min_pts=2, eps=2.0)
        result = run_vertical_dbscan(partition, config)
        assert canonicalize(result.labels) == (1, 1, 1, 2, 2, 2)


class TestWithRealCrypto:
    def test_small_geometry(self):
        records = [(0, 0), (1, 0), (0, 1), (50, 50)]
        partition = partition_vertical(Dataset.from_points(records), 1)
        config = _config(backend="bitwise", min_pts=3, eps=2.0)
        result = run_vertical_dbscan(partition, config)
        reference = dbscan(records, config.eps_squared, config.min_pts)
        assert canonicalize(result.labels) \
            == canonicalize(reference.as_tuple())
        assert result.stats["total_bytes"] > 0


class TestCostShape:
    def test_quadratic_comparison_count(self):
        """Sec 4.3.2: every point queried once, n-1 comparisons each."""
        records = [(100 * i, 0) for i in range(6)]  # all isolated
        partition = partition_vertical(Dataset.from_points(records), 1)
        result = run_vertical_dbscan(partition, _config(min_pts=2))
        assert result.comparisons == 6 * 5

    def test_both_parties_learn_counts(self):
        records = [(0, 0), (1, 0), (40, 40)]
        partition = partition_vertical(Dataset.from_points(records), 1)
        result = run_vertical_dbscan(partition, _config(min_pts=2))
        assert result.ledger.count(Disclosure.NEIGHBOR_COUNT,
                                   learner="alice") > 0
        assert result.ledger.count(Disclosure.NEIGHBOR_COUNT,
                                   learner="bob") > 0
