"""Tests for the one-call public API."""

import random

import pytest

from repro.core.api import ApiError, ClusteringRun, cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.partitioning import (
    partition_arbitrary,
    partition_horizontal,
    partition_vertical,
)
from repro.smc.session import SmcConfig

RECORDS = [(0, 0), (1, 0), (0, 1), (50, 50), (51, 50), (50, 51)]
DATASET = Dataset.from_points(RECORDS)


def _config(**kwargs) -> ProtocolConfig:
    defaults = dict(eps=2.0, min_pts=2, scale=10,
                    smc=SmcConfig(comparison="oracle", key_seed=140),
                    alice_seed=9, bob_seed=10)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


class TestDispatch:
    def test_horizontal(self):
        run = cluster_partitioned(partition_horizontal(DATASET, 3),
                                  _config())
        assert run.variant == "horizontal"
        assert len(run.alice_labels) == 3
        assert len(run.bob_labels) == 3

    def test_enhanced(self):
        run = cluster_partitioned(partition_horizontal(DATASET, 3),
                                  _config(), enhanced=True)
        assert run.variant == "enhanced"

    def test_vertical(self):
        run = cluster_partitioned(partition_vertical(DATASET, 1), _config())
        assert run.variant == "vertical"
        assert run.alice_labels == run.bob_labels
        assert len(run.alice_labels) == len(RECORDS)

    def test_arbitrary(self):
        partition = partition_arbitrary(DATASET, random.Random(1))
        run = cluster_partitioned(partition, _config())
        assert run.variant == "arbitrary"
        assert run.alice_labels == run.bob_labels

    def test_enhanced_only_for_horizontal(self):
        with pytest.raises(ApiError, match="horizontal"):
            cluster_partitioned(partition_vertical(DATASET, 1), _config(),
                                enhanced=True)
        partition = partition_arbitrary(DATASET, random.Random(1))
        with pytest.raises(ApiError, match="horizontal"):
            cluster_partitioned(partition, _config(), enhanced=True)

    def test_unsupported_type(self):
        with pytest.raises(ApiError, match="unsupported"):
            cluster_partitioned([(1, 2)], _config())


class TestRunMetadata:
    def test_fields_populated(self):
        run = cluster_partitioned(partition_horizontal(DATASET, 3),
                                  _config())
        assert isinstance(run, ClusteringRun)
        assert run.elapsed_seconds > 0
        assert run.comparisons >= 0
        assert "total_bytes" in run.stats
        assert run.ledger.events

    def test_vertical_and_horizontal_agree_on_clear_geometry(self):
        """With well-separated clusters, the per-party horizontal labels
        agree with the joint vertical clustering on each party's subset."""
        config = _config()
        horizontal = cluster_partitioned(partition_horizontal(DATASET, 3),
                                         config)
        vertical = cluster_partitioned(partition_vertical(DATASET, 1),
                                       config)
        from repro.clustering.labels import canonicalize
        assert canonicalize(horizontal.alice_labels) \
            == canonicalize(vertical.alice_labels[:3])
        assert canonicalize(horizontal.bob_labels) \
            == canonicalize(vertical.alice_labels[3:])
