"""Tests for the enhanced protocol (Section 5, Algorithms 7 + 8).

Binding properties: (1) identical clustering output to the base
horizontal protocol, (2) strictly reduced disclosure profile.
"""

from hypothesis import given, settings, strategies as st

from repro.clustering.labels import canonicalize
from repro.clustering.union_density import union_density_dbscan
from repro.core.config import ProtocolConfig
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import Disclosure
from repro.data.partitioning import HorizontalPartition
from repro.smc.session import SmcConfig


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.0, min_pts=3, scale=10,
                    smc=SmcConfig(comparison=backend, key_seed=130,
                                  mask_sigma=8, paillier_bits=128),
                    alice_seed=7, bob_seed=8)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=9)


class TestMatchesBaseProtocol:
    @settings(max_examples=20, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5),
           st.sampled_from(["scan", "quickselect"]))
    def test_random_geometries(self, alice_points, bob_points, min_pts,
                               selection):
        partition = HorizontalPartition(alice_points=tuple(alice_points),
                                        bob_points=tuple(bob_points))
        config = _config(min_pts=min_pts, selection=selection)
        enhanced = run_enhanced_horizontal_dbscan(partition, config)
        reference_alice = union_density_dbscan(
            list(alice_points), list(bob_points),
            config.eps_squared, config.min_pts)
        reference_bob = union_density_dbscan(
            list(bob_points), list(alice_points),
            config.eps_squared, config.min_pts)
        assert canonicalize(enhanced.alice_labels) \
            == canonicalize(reference_alice.labels.as_tuple())
        assert canonicalize(enhanced.bob_labels) \
            == canonicalize(reference_bob.labels.as_tuple())

    def test_same_labels_as_base(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (30, 30)),
            bob_points=((0, 1), (1, 1), (30, 31), (15, 15)))
        config = _config(min_pts=3)
        base = run_horizontal_dbscan(partition, config)
        enhanced = run_enhanced_horizontal_dbscan(partition, config)
        assert canonicalize(enhanced.alice_labels) \
            == canonicalize(base.alice_labels)
        assert canonicalize(enhanced.bob_labels) \
            == canonicalize(base.bob_labels)


class TestZeroInteractionShortcuts:
    def test_self_sufficient_point_discloses_nothing(self):
        """k <= 0: a point dense among its own party's points engages in
        no protocol at all."""
        cluster = tuple((i, j) for i in range(3) for j in range(3))
        partition = HorizontalPartition(
            alice_points=cluster, bob_points=((100, 100),))
        config = _config(min_pts=3, eps=2.0)
        result = run_enhanced_horizontal_dbscan(partition, config)
        alice_events = [e for e in result.ledger.events
                        if e.learner == "alice"]
        assert not alice_events  # Alice's pass never consulted Bob

    def test_impossible_k_short_circuits(self):
        """k > n_peer: not core, no interaction."""
        partition = HorizontalPartition(
            alice_points=((0, 0),), bob_points=((0, 1),))
        config = _config(min_pts=5)  # needs 4 peer points, peer has 1
        result = run_enhanced_horizontal_dbscan(partition, config)
        assert result.ledger.count(Disclosure.CORE_BIT) == 0
        assert result.alice_labels == (-1,)


class TestDisclosureReduction:
    def test_no_neighbor_counts_disclosed(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0)), bob_points=((0, 1), (20, 20)))
        config = _config(min_pts=3)
        result = run_enhanced_horizontal_dbscan(partition, config)
        profile = result.ledger.profile()
        assert profile.get("neighbor_count", 0) == 0
        assert profile.get("neighbor_bit", 0) == 0
        assert profile.get("dot_product", 0) == 0

    def test_core_bits_bounded_by_queries(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (2, 0)),
            bob_points=((0, 1), (1, 1), (2, 1)))
        config = _config(min_pts=4)
        result = run_enhanced_horizontal_dbscan(partition, config)
        assert result.ledger.count(Disclosure.CORE_BIT) <= 6


class TestWithRealCrypto:
    def test_small_geometry(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (20, 20)),
            bob_points=((0, 1), (1, 1), (40, 0)))
        config = _config(backend="bitwise", min_pts=3)
        enhanced = run_enhanced_horizontal_dbscan(partition, config)
        base = run_horizontal_dbscan(partition, config)
        assert canonicalize(enhanced.alice_labels) \
            == canonicalize(base.alice_labels)
        assert canonicalize(enhanced.bob_labels) \
            == canonicalize(base.bob_labels)

    def test_quickselect_with_crypto(self):
        partition = HorizontalPartition(
            alice_points=((0, 0),),
            bob_points=((0, 1), (1, 0), (1, 1), (30, 30)))
        config = _config(backend="bitwise", min_pts=3,
                         selection="quickselect")
        result = run_enhanced_horizontal_dbscan(partition, config)
        assert result.alice_labels == (1,)
