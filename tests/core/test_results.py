"""Tests for clustering-run serialization."""

import pytest

from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.core.results import (
    ResultSerializationError,
    run_from_dict,
    run_from_json,
    run_to_dict,
    run_to_json,
)
from repro.data.dataset import Dataset
from repro.data.partitioning import partition_horizontal
from repro.smc.session import SmcConfig


def _sample_run():
    dataset = Dataset.from_points([(0, 0), (1, 0), (0, 1), (50, 50)])
    config = ProtocolConfig(eps=2.0, min_pts=2, scale=10,
                            smc=SmcConfig(comparison="oracle", key_seed=240),
                            alice_seed=1, bob_seed=2)
    return cluster_partitioned(partition_horizontal(dataset, 2), config)


class TestRoundTrip:
    def test_dict_roundtrip(self):
        run = _sample_run()
        restored = run_from_dict(run_to_dict(run))
        assert restored.variant == run.variant
        assert restored.alice_labels == run.alice_labels
        assert restored.bob_labels == run.bob_labels
        assert restored.comparisons == run.comparisons
        assert restored.ledger.profile() == run.ledger.profile()

    def test_json_roundtrip(self):
        run = _sample_run()
        restored = run_from_json(run_to_json(run))
        assert restored.alice_labels == run.alice_labels
        assert restored.stats["total_bytes"] == run.stats["total_bytes"]

    def test_json_is_plain(self):
        import json
        payload = run_to_json(_sample_run(), indent=2)
        parsed = json.loads(payload)
        assert "ledger" in parsed
        assert isinstance(parsed["ledger"], list)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ResultSerializationError, match="invalid JSON"):
            run_from_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(ResultSerializationError, match="malformed"):
            run_from_dict({"variant": "horizontal"})

    def test_unknown_disclosure_kind(self):
        data = run_to_dict(_sample_run())
        data["ledger"][0]["disclosure"] = "telepathy"
        with pytest.raises(ResultSerializationError, match="malformed"):
            run_from_dict(data)
