"""Tests for the cached-ciphertext HDP variant (the E12 ablation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.labels import canonicalize
from repro.core.config import ProtocolConfig
from repro.core.distance import PeerCipherCache, hdp_within_eps_cached
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import HorizontalPartition
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

VALUE_BOUND = 8 * 200 * 200
coordinate = st.integers(min_value=-60, max_value=60)
point2d = st.tuples(coordinate, coordinate)


def _session(seed=0):
    channel = Channel()
    alice, bob = make_party_pair(channel, seed, seed + 1)
    return channel, SmcSession(alice, bob, SmcConfig(key_seed=220,
                                                     mask_sigma=8,
                                                     paillier_bits=128))


class TestCachedDistanceProtocol:
    @settings(max_examples=10, deadline=None)
    @given(point2d, point2d, st.integers(min_value=0, max_value=20000))
    def test_agrees_with_plain_predicate(self, qp, pp, eps_squared):
        __, session = _session(1)
        cache = PeerCipherCache()
        result = hdp_within_eps_cached(
            session, session.alice, qp, session.bob, pp, 0, cache,
            eps_squared, VALUE_BOUND)
        truth = sum((a - b) ** 2 for a, b in zip(qp, pp)) <= eps_squared
        assert result == truth

    def test_cache_hit_skips_coordinate_upload(self):
        channel, session = _session(2)
        cache = PeerCipherCache()
        for __ in range(3):
            hdp_within_eps_cached(session, session.alice, (1, 2),
                                  session.bob, (4, 6), 0, cache, 25,
                                  VALUE_BOUND, label="c")
        uploads = [e for e in channel.transcript.entries
                   if e.label == "c/coords"]
        assert len(uploads) == 1
        assert len(cache) == 1

    def test_distinct_points_cached_separately(self):
        __, session = _session(3)
        cache = PeerCipherCache()
        assert hdp_within_eps_cached(session, session.alice, (0, 0),
                                     session.bob, (3, 4), 0, cache, 25,
                                     VALUE_BOUND)
        assert not hdp_within_eps_cached(session, session.alice, (0, 0),
                                         session.bob, (30, 40), 1, cache,
                                         25, VALUE_BOUND)
        assert len(cache) == 2

    def test_ledger_records_linkable_hits(self):
        __, session = _session(4)
        cache = PeerCipherCache()
        ledger = LeakageLedger()
        hdp_within_eps_cached(session, session.alice, (0, 0), session.bob,
                              (3, 4), 7, cache, 25, VALUE_BOUND,
                              ledger=ledger)
        assert ledger.count(Disclosure.LINKED_NEIGHBOR_ID,
                            learner="alice") == 1
        # A miss (out of range) is not a linkable hit.
        hdp_within_eps_cached(session, session.alice, (0, 0), session.bob,
                              (30, 40), 8, cache, 25, VALUE_BOUND,
                              ledger=ledger)
        assert ledger.count(Disclosure.LINKED_NEIGHBOR_ID) == 1


class TestCachedFullProtocol:
    def _partition(self):
        # Clustered data so every point is queried during expansion --
        # the regime where caching actually pays.
        alice = tuple((i * 5, 0) for i in range(4))
        bob = tuple((i * 5, 3) for i in range(4))
        return HorizontalPartition(alice_points=alice, bob_points=bob)

    def _config(self, cached: bool) -> ProtocolConfig:
        return ProtocolConfig(
            eps=1.0, min_pts=3, scale=10,
            smc=SmcConfig(key_seed=221, mask_sigma=8, paillier_bits=128),
            alice_seed=5, bob_seed=6, cache_peer_ciphertexts=cached)

    def test_same_labels_as_base(self):
        base = run_horizontal_dbscan(self._partition(), self._config(False))
        cached = run_horizontal_dbscan(self._partition(), self._config(True))
        assert canonicalize(cached.alice_labels) \
            == canonicalize(base.alice_labels)
        assert canonicalize(cached.bob_labels) \
            == canonicalize(base.bob_labels)

    def test_saves_bytes_on_repeat_queries(self):
        base = run_horizontal_dbscan(self._partition(), self._config(False))
        cached = run_horizontal_dbscan(self._partition(), self._config(True))
        assert cached.stats["total_bytes"] < base.stats["total_bytes"]

    def test_introduces_linkability(self):
        base = run_horizontal_dbscan(self._partition(), self._config(False))
        cached = run_horizontal_dbscan(self._partition(), self._config(True))
        assert base.ledger.count(Disclosure.LINKED_NEIGHBOR_ID) == 0
        assert cached.ledger.count(Disclosure.LINKED_NEIGHBOR_ID) > 0
