"""Tests for protocol configuration."""

import pytest

from repro.core.config import ConfigError, ProtocolConfig


class TestProtocolConfig:
    def test_eps_squared(self):
        config = ProtocolConfig(eps=1.0, min_pts=3, scale=100)
        assert config.eps_squared == 10000

    def test_eps_squared_fractional(self):
        config = ProtocolConfig(eps=0.5, min_pts=3, scale=10)
        assert config.eps_squared == 25

    def test_validation(self):
        with pytest.raises(ConfigError, match="eps"):
            ProtocolConfig(eps=0.0, min_pts=3)
        with pytest.raises(ConfigError, match="min_pts"):
            ProtocolConfig(eps=1.0, min_pts=0)
        with pytest.raises(ConfigError, match="selection"):
            ProtocolConfig(eps=1.0, min_pts=3, selection="bogo")

    def test_defaults(self):
        config = ProtocolConfig(eps=1.0, min_pts=3)
        assert config.selection == "scan"
        assert config.blind_cross_sum is False
        assert config.smc.comparison == "bitwise"

    def test_frozen(self):
        config = ProtocolConfig(eps=1.0, min_pts=3)
        with pytest.raises(AttributeError):
            config.eps = 2.0
