"""Equivalence tests for the batched HDP region query (the PR-1 tentpole).

The binding property: the batched pipeline must be *indistinguishable in
outcome* from the seed-era per-point loop -- identical neighbor sets,
identical ledger disclosure sequences, across random workloads, seeds,
and both ``blind_cross_sum`` modes.  Only wall-clock, message counts,
and encryption counts may differ.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolConfig
from repro.core.distance import (
    PeerCipherCache,
    hdp_region_query,
    hdp_region_query_cached,
    hdp_within_eps,
    hdp_within_eps_cached,
)
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import LeakageLedger
from repro.crypto.paillier import PaillierPublicKey
from repro.data.partitioning import HorizontalPartition
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

VALUE_BOUND = 8 * 200 * 200
coordinate = st.integers(min_value=-60, max_value=60)
point2d = st.tuples(coordinate, coordinate)
points_list = st.lists(point2d, min_size=1, max_size=6)


def _session(seed=0, backend="bitwise", precompute=True):
    channel = Channel()
    alice, bob = make_party_pair(channel, seed, seed + 1)
    # 128-bit keys: the equivalence properties under test do not depend
    # on key size, and tier-1 wall-clock does (benchmarks keep 256).
    session = SmcSession(alice, bob, SmcConfig(
        comparison=backend, key_seed=95, mask_sigma=8,
        paillier_bits=128, precompute=precompute))
    return channel, session


def _truth(querier_point, peer_points, eps_squared):
    return [sum((a - b) ** 2 for a, b in zip(querier_point, point))
            <= eps_squared for point in peer_points]


class TestRegionQueryAgainstPerPoint:
    """Function-level equivalence of one batched region query."""

    @settings(max_examples=10, deadline=None)
    @given(point2d, points_list, st.integers(min_value=0, max_value=20000),
           st.booleans(), st.integers(min_value=0, max_value=1000))
    def test_bits_and_ledger_match_per_point_loop(self, querier_point,
                                                  peer_points, eps_squared,
                                                  blind, seed):
        __, batched_session = _session(seed, backend="oracle")
        batched_ledger = LeakageLedger()
        bits = hdp_region_query(
            batched_session, batched_session.alice, querier_point,
            batched_session.bob, peer_points, eps_squared, VALUE_BOUND,
            ledger=batched_ledger, blind_cross_sum=blind, label="q")

        __, loop_session = _session(seed + 7, backend="oracle")
        loop_ledger = LeakageLedger()
        loop_bits = [hdp_within_eps(
            loop_session, loop_session.alice, querier_point,
            loop_session.bob, point, eps_squared, VALUE_BOUND,
            ledger=loop_ledger, blind_cross_sum=blind, label="q")
            for point in peer_points]

        # The batched bits come back in the peer's permuted order; the
        # neighbor *set* (multiset of bits, i.e. the count) must match
        # the per-point loop and the plaintext truth.
        truth = _truth(querier_point, peer_points, eps_squared)
        assert sorted(bits) == sorted(loop_bits) == sorted(truth)
        assert sum(bits) == sum(truth)
        # Identical disclosure sequences, event for event.
        assert batched_ledger.events == loop_ledger.events

    @settings(max_examples=10, deadline=None)
    @given(point2d, points_list, st.integers(min_value=0, max_value=20000),
           st.booleans(), st.integers(min_value=0, max_value=1000))
    def test_cached_bits_and_ledger_match_per_point_loop(
            self, querier_point, peer_points, eps_squared, blind, seed):
        ids = list(range(len(peer_points)))

        __, batched_session = _session(seed, backend="oracle")
        batched_ledger = LeakageLedger()
        bits = hdp_region_query_cached(
            batched_session, batched_session.alice, querier_point,
            batched_session.bob, peer_points, ids, PeerCipherCache(),
            eps_squared, VALUE_BOUND, ledger=batched_ledger,
            blind_cross_sum=blind, label="q")

        __, loop_session = _session(seed + 7, backend="oracle")
        loop_ledger = LeakageLedger()
        loop_cache = PeerCipherCache()
        loop_bits = [hdp_within_eps_cached(
            loop_session, loop_session.alice, querier_point,
            loop_session.bob, point, point_id, loop_cache, eps_squared,
            VALUE_BOUND, ledger=loop_ledger, blind_cross_sum=blind,
            label="q") for point_id, point in zip(ids, peer_points)]

        # Stable ids fix the order, so bits compare positionally here.
        assert bits == loop_bits == _truth(querier_point, peer_points,
                                           eps_squared)
        assert batched_ledger.events == loop_ledger.events

    def test_real_crypto_boundary_cases(self):
        """Bitwise backend on both sides of the eps boundary."""
        __, session = _session(3)
        peer_points = [(4, 6), (1, 2), (30, 40)]
        for eps_squared, expected_count in ((25, 2), (24, 1), (0, 1)):
            bits = hdp_region_query(
                session, session.alice, (1, 2), session.bob, peer_points,
                eps_squared, VALUE_BOUND)
            assert sum(bits) == expected_count, eps_squared

    def test_real_crypto_blind_mode(self):
        __, session = _session(4)
        bits = hdp_region_query(
            session, session.alice, (1, 2), session.bob,
            [(4, 6), (50, 50)], 25, VALUE_BOUND, blind_cross_sum=True)
        assert sum(bits) == 1

    def test_cached_real_crypto_reuses_uploads(self):
        channel, session = _session(5)
        cache = PeerCipherCache()
        peer_points = [(0, 3), (40, 0)]
        for _ in range(3):
            bits = hdp_region_query_cached(
                session, session.alice, (0, 0), session.bob, peer_points,
                [0, 1], cache, 25, VALUE_BOUND, label="c")
            assert bits == [True, False]
        uploads = [e for e in channel.transcript.entries
                   if e.label == "c/coords"]
        assert len(uploads) == 1 and len(cache) == 2

    def test_empty_peer_set(self):
        __, session = _session(6, backend="oracle")
        assert hdp_region_query(session, session.alice, (0, 0),
                                session.bob, [], 25, VALUE_BOUND) == []

    def test_dimension_mismatch(self):
        from repro.core.distance import DistanceProtocolError
        __, session = _session(7, backend="oracle")
        with pytest.raises(DistanceProtocolError, match="dimension"):
            hdp_region_query(session, session.alice, (0, 0), session.bob,
                             [(1, 2, 3)], 25, VALUE_BOUND)


class TestBatchedComparisons:
    """PR-3 tentpole: the amortized DGK batch inside a region query must
    be indistinguishable in bits and disclosures from the per-point
    comparison loop, under real crypto."""

    @settings(max_examples=6, deadline=None)
    @given(point2d, points_list, st.integers(min_value=0, max_value=20000),
           st.booleans(), st.integers(min_value=0, max_value=1000))
    def test_bits_and_ledger_match_per_point_comparisons(
            self, querier_point, peer_points, eps_squared, blind, seed):
        __, batched_session = _session(seed)
        batched_ledger = LeakageLedger()
        bits = hdp_region_query(
            batched_session, batched_session.alice, querier_point,
            batched_session.bob, peer_points, eps_squared, VALUE_BOUND,
            ledger=batched_ledger, blind_cross_sum=blind,
            batched_comparisons=True, label="q")

        __, loop_session = _session(seed)
        loop_ledger = LeakageLedger()
        loop_bits = hdp_region_query(
            loop_session, loop_session.alice, querier_point,
            loop_session.bob, peer_points, eps_squared, VALUE_BOUND,
            ledger=loop_ledger, blind_cross_sum=blind,
            batched_comparisons=False, label="q")

        # Same seeds -> same presentation permutation, so the bits
        # compare positionally, not just as a multiset.
        assert bits == loop_bits
        assert sum(bits) == sum(_truth(querier_point, peer_points,
                                       eps_squared))
        assert batched_ledger.events == loop_ledger.events
        assert batched_session.comparison_backend.invocations \
            == loop_session.comparison_backend.invocations == len(peer_points)

    def test_cached_query_matches_per_point_comparisons(self):
        for blind in (False, True):
            results = []
            for batched in (True, False):
                __, session = _session(21)
                ledger = LeakageLedger()
                bits = hdp_region_query_cached(
                    session, session.alice, (1, 2), session.bob,
                    [(4, 6), (1, 2), (30, 40), (2, 3)], [0, 1, 2, 3],
                    PeerCipherCache(), 25, VALUE_BOUND, ledger=ledger,
                    blind_cross_sum=blind, batched_comparisons=batched,
                    label="q")
                results.append((bits, ledger.events))
            assert results[0] == results[1], blind

    def test_constant_threshold_shares_one_bit_encryption(self):
        """blind_cross_sum=False keeps the threshold constant across the
        query, so the whole query produces exactly one x_bits message;
        the per-point loop produces one per peer point."""
        def count_x_bits(batched_comparisons):
            channel, session = _session(22)
            hdp_region_query(
                session, session.alice, (0, 0), session.bob,
                [(0, 3), (4, 0), (50, 50), (1, 1)], 25, VALUE_BOUND,
                batched_comparisons=batched_comparisons, label="q")
            return sum(1 for e in channel.transcript.entries
                       if e.label.endswith("/x_bits"))
        assert count_x_bits(True) == 1
        assert count_x_bits(False) == 4


class TestQuerierEncryptionCount:
    """Acceptance criterion: querier-side encryptions per region query are
    O(d) -- independent of the peer point count."""

    def _count_encryptions(self, n_peer: int, dimensions: int) -> dict:
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob, SmcConfig(
            comparison="oracle", key_seed=96, mask_sigma=8))
        counts = {id(alice.rng): 0, id(bob.rng): 0}
        original = PaillierPublicKey.encrypt

        def counting_encrypt(self, plaintext, rng, pool=None):
            counts[id(rng)] += 1
            return original(self, plaintext, rng, pool)

        peer_points = [tuple(5 * i + t for t in range(dimensions))
                       for i in range(n_peer)]
        try:
            PaillierPublicKey.encrypt = counting_encrypt
            hdp_region_query(session, alice, tuple(range(dimensions)),
                             bob, peer_points, 100, VALUE_BOUND)
        finally:
            PaillierPublicKey.encrypt = original
        return {"querier": counts[id(alice.rng)],
                "peer": counts[id(bob.rng)]}

    @pytest.mark.parametrize("dimensions", [1, 2, 3])
    def test_querier_encryptions_independent_of_peer_count(self, dimensions):
        for n_peer in (1, 4, 9):
            counts = self._count_encryptions(n_peer, dimensions)
            # Exactly one encryption per querier coordinate, regardless
            # of how many peer points the query covers.
            assert counts["querier"] == dimensions, (n_peer, counts)
            # The peer pays one blind encryption per point (plus its
            # rerandomizations, which are not encryptions).
            assert counts["peer"] == n_peer


class TestFullRunEquivalence:
    """Driver-level: batched pipeline vs seed-era per-point pipeline."""

    def _config(self, batched, cached=False, blind=False, grid=True):
        return ProtocolConfig(
            eps=1.0, min_pts=3, scale=10,
            smc=SmcConfig(key_seed=97, mask_sigma=8, paillier_bits=128),
            alice_seed=11, bob_seed=12,
            batched_region_queries=batched,
            cache_peer_ciphertexts=cached,
            blind_cross_sum=blind,
            use_grid_index=grid)

    def _random_partition(self, seed):
        rng = random.Random(seed)
        return HorizontalPartition(
            alice_points=tuple(
                (rng.randrange(0, 30), rng.randrange(0, 30))
                for _ in range(rng.randrange(1, 7))),
            bob_points=tuple(
                (rng.randrange(0, 30), rng.randrange(0, 30))
                for _ in range(rng.randrange(1, 7))))

    @pytest.mark.parametrize("cached", [False, True])
    @pytest.mark.parametrize("blind", [False, True])
    def test_labels_and_ledger_bit_identical(self, cached, blind):
        for seed in (0, 1, 2):
            partition = self._random_partition(seed)
            batched = run_horizontal_dbscan(
                partition, self._config(True, cached=cached, blind=blind))
            legacy = run_horizontal_dbscan(
                partition, self._config(False, cached=cached, blind=blind))
            assert batched.alice_labels == legacy.alice_labels, seed
            assert batched.bob_labels == legacy.bob_labels, seed
            # The whole disclosure sequence -- same events, same order,
            # same labels, same details.
            assert batched.ledger.events == legacy.ledger.events, seed

    def test_grid_index_flag_does_not_change_output(self):
        partition = self._random_partition(3)
        with_grid = run_horizontal_dbscan(partition, self._config(True,
                                                                  grid=True))
        without = run_horizontal_dbscan(partition, self._config(True,
                                                                grid=False))
        assert with_grid.alice_labels == without.alice_labels
        assert with_grid.bob_labels == without.bob_labels
        assert with_grid.ledger.events == without.ledger.events


class TestSessionPools:
    def test_precompute_off_disables_pools(self):
        __, session = _session(8, precompute=False)
        assert session.pool(session.alice, session.bob) is None
        from repro.smc.session import SessionError
        with pytest.raises(SessionError, match="precompute"):
            session.precompute_pools(4)

    def test_prefill_plan_eliminates_misses(self):
        """The offline/online contract: prefilling by a probe run's
        consumption makes the online run miss-free."""
        def run_query(session):
            return hdp_region_query(
                session, session.alice, (0, 0), session.bob,
                [(0, 3), (4, 0), (50, 50)], 25, VALUE_BOUND)

        __, probe = _session(9)
        expected = run_query(probe)
        plan = {key: report["consumed"]
                for key, report in probe.pool_report().items()}
        assert sum(plan.values()) > 0

        __, online = _session(9)
        online.precompute_pools(plan)
        # Prefilling reorders RNG draws, so the peer's presentation
        # permutation differs; the neighbor multiset cannot.
        assert sorted(run_query(online)) == sorted(expected)
        report = online.pool_report()
        assert all(entry["misses"] == 0 for entry in report.values())
        assert sum(entry["consumed"] for entry in report.values()) \
            == sum(plan.values())
