"""Tests for the HDP / VDP / ADP distance protocols."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import (
    DistanceProtocolError,
    adp_within_eps,
    hdp_within_eps,
    vdp_within_eps,
)
from repro.core.leakage import Disclosure, LeakageLedger
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

VALUE_BOUND = 8 * 200 * 200  # comfortably above any test distance

coordinate = st.integers(min_value=-100, max_value=100)
point2d = st.tuples(coordinate, coordinate)


def _session(seed=0, backend="bitwise", mask_sigma=8):
    channel = Channel()
    alice, bob = make_party_pair(channel, seed, seed + 1)
    session = SmcSession(alice, bob, SmcConfig(
        comparison=backend, key_seed=90, mask_sigma=mask_sigma))
    return channel, session


def _true_within(a, b, eps_squared):
    return sum((x - y) ** 2 for x, y in zip(a, b)) <= eps_squared


class TestHdp:
    @pytest.mark.parametrize("qp,pp,eps_squared", [
        ((0, 0), (3, 4), 25), ((0, 0), (3, 4), 24), ((0, 0), (0, 0), 1),
        ((-5, 7), (2, -3), 150), ((-5, 7), (2, -3), 148),
        ((10, 10), (10, 11), 1),
    ])
    def test_boundary_cases(self, qp, pp, eps_squared):
        __, session = _session(abs(qp[0]) + abs(pp[1]))
        result = hdp_within_eps(session, session.alice, qp, session.bob, pp,
                                eps_squared, VALUE_BOUND)
        assert result == _true_within(qp, pp, eps_squared)

    @settings(max_examples=10, deadline=None)
    @given(point2d, point2d, st.integers(min_value=0, max_value=40000))
    def test_random_property(self, qp, pp, eps_squared):
        __, session = _session(1)
        result = hdp_within_eps(session, session.alice, qp, session.bob, pp,
                                eps_squared, VALUE_BOUND)
        assert result == _true_within(qp, pp, eps_squared)

    def test_blind_cross_sum_same_result(self):
        """The random-offset compensation must not shift the predicate in
        either direction -- exercised on both sides of the boundary.
        (A sign error here once survived a True-only test.)"""
        __, session = _session(2)
        for blind in (False, True):
            # dist^2((1,2),(4,6)) = 25: exactly on the boundary.
            assert hdp_within_eps(session, session.alice, (1, 2),
                                  session.bob, (4, 6), 25, VALUE_BOUND,
                                  blind_cross_sum=blind) is True
            # One below the boundary: must be rejected.
            assert hdp_within_eps(session, session.alice, (1, 2),
                                  session.bob, (4, 6), 24, VALUE_BOUND,
                                  blind_cross_sum=blind) is False

    @settings(max_examples=10, deadline=None)
    @given(point2d, point2d, st.integers(min_value=0, max_value=40000))
    def test_blind_cross_sum_random_property(self, qp, pp, eps_squared):
        __, session = _session(21)
        result = hdp_within_eps(session, session.alice, qp, session.bob, pp,
                                eps_squared, VALUE_BOUND,
                                blind_cross_sum=True)
        assert result == _true_within(qp, pp, eps_squared)

    def test_roles_can_swap(self):
        """Bob as querier (his pass of Algorithm 3)."""
        __, session = _session(3)
        result = hdp_within_eps(session, session.bob, (0, 0),
                                session.alice, (3, 4), 25, VALUE_BOUND)
        assert result is True

    def test_dimension_mismatch(self):
        __, session = _session(4)
        with pytest.raises(DistanceProtocolError, match="dimension"):
            hdp_within_eps(session, session.alice, (1,), session.bob,
                           (1, 2), 25, VALUE_BOUND)

    def test_ledger_records_dot_product_when_faithful(self):
        __, session = _session(5)
        ledger = LeakageLedger()
        hdp_within_eps(session, session.alice, (1, 2), session.bob, (3, 4),
                       25, VALUE_BOUND, ledger=ledger)
        assert ledger.count(Disclosure.DOT_PRODUCT, learner="bob") == 1
        assert ledger.count(Disclosure.NEIGHBOR_BIT, learner="alice") == 1

    def test_ledger_clean_when_blinded(self):
        __, session = _session(6)
        ledger = LeakageLedger()
        hdp_within_eps(session, session.alice, (1, 2), session.bob, (3, 4),
                       25, VALUE_BOUND, ledger=ledger, blind_cross_sum=True)
        assert ledger.count(Disclosure.DOT_PRODUCT) == 0

    def test_three_dimensions(self):
        __, session = _session(7)
        assert hdp_within_eps(session, session.alice, (1, 2, 3),
                              session.bob, (1, 2, 4), 1, VALUE_BOUND)

    def test_one_dimension(self):
        __, session = _session(8)
        assert hdp_within_eps(session, session.alice, (5,), session.bob,
                              (9,), 16, VALUE_BOUND)
        assert not hdp_within_eps(session, session.alice, (5,), session.bob,
                                  (10,), 16, VALUE_BOUND)


class TestVdp:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10000),
           st.integers(min_value=0, max_value=10000),
           st.integers(min_value=0, max_value=25000))
    def test_random_property(self, alice_part, bob_part, eps_squared):
        __, session = _session(9)
        result = vdp_within_eps(session, session.alice, alice_part,
                                session.bob, bob_part, eps_squared,
                                30000)
        assert result == (alice_part + bob_part <= eps_squared)

    def test_ledger_both_learn(self):
        __, session = _session(10)
        ledger = LeakageLedger()
        vdp_within_eps(session, session.alice, 4, session.bob, 5, 25,
                       VALUE_BOUND, ledger=ledger)
        assert ledger.count(Disclosure.NEIGHBOR_BIT, learner="alice") == 1
        assert ledger.count(Disclosure.NEIGHBOR_BIT, learner="bob") == 1


class TestAdp:
    def _views(self, x_point, y_point, x_owners, y_owners):
        x_values = {k: (owner, value)
                    for k, (owner, value) in enumerate(zip(x_owners, x_point))}
        y_values = {k: (owner, value)
                    for k, (owner, value) in enumerate(zip(y_owners, y_point))}
        return x_values, y_values

    @pytest.mark.parametrize("x_owners,y_owners", [
        (("alice", "alice"), ("alice", "alice")),   # all-Alice (degenerate)
        (("bob", "bob"), ("bob", "bob")),           # all-Bob
        (("alice", "alice"), ("bob", "bob")),       # horizontal-like
        (("alice", "bob"), ("alice", "bob")),       # vertical-like
        (("alice", "bob"), ("bob", "alice")),       # fully mixed
        (("alice", "alice"), ("alice", "bob")),     # single cross attr
    ])
    def test_ownership_patterns(self, x_owners, y_owners):
        __, session = _session(11)
        x_point, y_point = (3, -4), (-1, 2)
        for eps_squared in (0, 51, 52, 53, 1000):
            x_values, y_values = self._views(x_point, y_point,
                                             x_owners, y_owners)
            result = adp_within_eps(session, session.alice, session.bob,
                                    x_values, y_values, eps_squared,
                                    VALUE_BOUND)
            assert result == _true_within(x_point, y_point, eps_squared), \
                (x_owners, y_owners, eps_squared)

    @settings(max_examples=10, deadline=None)
    @given(point2d, point2d,
           st.tuples(st.sampled_from(["alice", "bob"]),
                     st.sampled_from(["alice", "bob"])),
           st.tuples(st.sampled_from(["alice", "bob"]),
                     st.sampled_from(["alice", "bob"])),
           st.integers(min_value=0, max_value=40000))
    def test_random_property(self, x_point, y_point, x_owners, y_owners,
                             eps_squared):
        __, session = _session(12)
        x_values, y_values = self._views(x_point, y_point, x_owners,
                                         y_owners)
        result = adp_within_eps(session, session.alice, session.bob,
                                x_values, y_values, eps_squared, VALUE_BOUND)
        assert result == _true_within(x_point, y_point, eps_squared)

    def test_attribute_mismatch(self):
        __, session = _session(13)
        with pytest.raises(DistanceProtocolError, match="disagree"):
            adp_within_eps(session, session.alice, session.bob,
                           {0: ("alice", 1)}, {1: ("bob", 2)}, 25,
                           VALUE_BOUND)

    def test_single_cross_attribute_hides_product(self):
        """With one cross attribute the random offset must prevent the
        exact-product disclosure (DESIGN.md substitution note)."""
        channel, session = _session(14)
        x_values = {0: ("alice", 7)}
        y_values = {0: ("bob", 3)}
        result = adp_within_eps(session, session.alice, session.bob,
                                x_values, y_values, 16, VALUE_BOUND)
        assert result == ((7 - 3) ** 2 <= 16)
