"""Query-constant blinding: amortized DGK batches in blind mode.

With ``blind_cross_sum`` the PR-3 comparison batch degrades to per-point
runs because every peer point gets its own secret offset (per-point
thresholds).  ``query_constant_blinding`` shares one offset per region
query: predicate bits and labels are unchanged (the offset cancels in
the threshold), the DGK batch amortizes again (one bit-encryption and
round-trip per query), and the ledger records the price -- the peer now
learns the differences between the query's cross dot products
(``DOT_DIFFERENCE``).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ConfigError, ProtocolConfig
from repro.core.distance import hdp_region_query, hdp_within_eps
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import HorizontalPartition
from repro.data.quantize import squared_distance_bound
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=30)),
    min_size=1, max_size=5)


def _config(backend="oracle", *, query_constant, min_pts=3,
            batched_comparisons=True, cached=False):
    return ProtocolConfig(
        eps=1.5, min_pts=min_pts, scale=1,
        smc=SmcConfig(comparison=backend, key_seed=250, mask_sigma=8,
                      paillier_bits=128),
        blind_cross_sum=True,
        query_constant_blinding=query_constant,
        batched_comparisons=batched_comparisons,
        cache_peer_ciphertexts=cached,
        alice_seed=11, bob_seed=12)


class TestConfigValidation:
    def test_requires_blind_cross_sum(self):
        with pytest.raises(ConfigError, match="blind_cross_sum"):
            ProtocolConfig(eps=1.0, min_pts=2,
                           query_constant_blinding=True)


class TestRegionQueryBits:
    def _session(self):
        return SmcSession(
            *make_party_pair(Channel(), 21, 22),
            SmcConfig(comparison="bitwise", key_seed=251, mask_sigma=8,
                      paillier_bits=128))

    @settings(max_examples=8, deadline=None)
    @given(st.tuples(st.integers(0, 20), st.integers(0, 20)),
           points_strategy)
    def test_bits_match_per_point_blind_protocol(self, query, peer_points):
        value_bound = squared_distance_bound([query] + peer_points,
                                             [query] + peer_points)
        eps_squared = 9

        session = self._session()
        batch_bits = hdp_region_query(
            session, session.alice, query, session.bob, peer_points,
            eps_squared, value_bound, blind_cross_sum=True,
            query_constant_blinding=True, label="q")

        # Reference: one per-point blind HDP per peer point over the
        # same permutation (fresh session, same seeds => same view).
        reference = self._session()
        from repro.smc.permutation import PermutedView
        view = PermutedView.fresh(len(peer_points), reference.bob.rng)
        expected = [
            hdp_within_eps(reference, reference.alice, query,
                           reference.bob,
                           peer_points[view.true_index(position)],
                           eps_squared, value_bound, blind_cross_sum=True,
                           label="q")
            for position in range(len(view))]
        assert batch_bits == expected

    def test_one_dgk_batch_per_query(self):
        """The amortization is visible in the message count: the blind
        query-constant batch sends strictly fewer messages than the
        per-point-offset batch (which cannot amortize)."""
        peer_points = [(0, 0), (1, 1), (2, 0), (3, 3)]
        value_bound = squared_distance_bound(peer_points, peer_points)

        def messages(query_constant):
            session = self._session()
            hdp_region_query(
                session, session.alice, (1, 0), session.bob, peer_points,
                5, value_bound, blind_cross_sum=True,
                query_constant_blinding=query_constant, label="q")
            return session.alice.endpoint.stats.total_messages

        assert messages(True) < messages(False)


class TestLedger:
    def test_dot_difference_recorded_instead_of_dot_product(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (10, 10)),
            bob_points=((0, 1), (1, 1), (10, 11)))
        result = run_horizontal_dbscan(
            partition, _config(query_constant=True))
        assert result.ledger.count(Disclosure.DOT_DIFFERENCE) > 0
        assert result.ledger.count(Disclosure.DOT_PRODUCT) == 0
        # Per-point blinding reveals nothing relative: no event.
        per_point = run_horizontal_dbscan(
            partition, _config(query_constant=False))
        assert per_point.ledger.count(Disclosure.DOT_DIFFERENCE) == 0

    def test_single_point_query_has_no_difference_to_reveal(self):
        session = SmcSession(
            *make_party_pair(Channel(), 21, 22),
            SmcConfig(comparison="oracle", key_seed=252, mask_sigma=8,
                      paillier_bits=128))
        ledger = LeakageLedger()
        hdp_region_query(session, session.alice, (0, 0), session.bob,
                         [(1, 0)], 5, 100, ledger=ledger,
                         blind_cross_sum=True,
                         query_constant_blinding=True, label="q")
        assert ledger.count(Disclosure.DOT_DIFFERENCE) == 0


class TestEndToEnd:
    @settings(max_examples=8, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5))
    def test_two_party_labels_match_per_point_blinding(self, alice_pts,
                                                       bob_pts, min_pts):
        partition = HorizontalPartition(alice_points=tuple(alice_pts),
                                        bob_points=tuple(bob_pts))
        constant = run_horizontal_dbscan(
            partition, _config(query_constant=True, min_pts=min_pts))
        per_point = run_horizontal_dbscan(
            partition, _config(query_constant=False, min_pts=min_pts))
        assert constant.alice_labels == per_point.alice_labels
        assert constant.bob_labels == per_point.bob_labels
        assert constant.comparisons == per_point.comparisons

    @pytest.mark.parametrize("cached", [False, True])
    def test_real_crypto_two_party(self, cached):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (30, 30)),
            bob_points=((0, 1), (31, 30)))
        constant = run_horizontal_dbscan(
            partition, _config("bitwise", query_constant=True,
                               cached=cached))
        per_point = run_horizontal_dbscan(
            partition, _config("bitwise", query_constant=False,
                               cached=cached))
        assert constant.alice_labels == per_point.alice_labels
        assert constant.bob_labels == per_point.bob_labels
        assert constant.comparisons == per_point.comparisons
        # The restored amortization: strictly fewer messages online.
        assert constant.stats["total_messages"] \
            < per_point.stats["total_messages"]

    def test_mesh_labels_match(self):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0), (2, 0)],
            "p2": [(0, 1), (31, 30)],
        }

        def run(query_constant):
            config = ProtocolConfig(
                eps=1.5, min_pts=3, scale=1,
                smc=SmcConfig(comparison="bitwise", key_seed=253,
                              mask_sigma=8, paillier_bits=128),
                blind_cross_sum=True,
                query_constant_blinding=query_constant)
            return run_multiparty_horizontal_dbscan(points, config,
                                                    seeds=[1, 2, 3])

        constant = run(True)
        per_point = run(False)
        assert constant.labels_by_party == per_point.labels_by_party
        assert constant.comparisons == per_point.comparisons
        assert constant.stats["total_messages"] \
            < per_point.stats["total_messages"]
