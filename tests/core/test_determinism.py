"""Reproducibility guarantees: seeded runs are bit-identical.

Every protocol draws all randomness from the injected per-party RNGs,
so two runs with the same seeds must agree on *everything* -- labels,
byte counts, message counts, disclosure profiles -- and runs with
different seeds must agree on the clustering (correctness is
randomness-independent) while their transcripts differ (the crypto is
actually randomized).
"""

import pytest

from repro.clustering.labels import canonicalize
from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.partitioning import (
    HorizontalPartition,
    partition_vertical,
)
from repro.smc.session import SmcConfig

POINTS = [(0, 0), (10, 0), (0, 10), (300, 300), (310, 300)]


def _config(alice_seed: int, bob_seed: int, backend="bitwise"):
    return ProtocolConfig(
        eps=2.0, min_pts=2, scale=10,
        smc=SmcConfig(comparison=backend, key_seed=270, mask_sigma=8),
        alice_seed=alice_seed, bob_seed=bob_seed)


def _horizontal():
    return HorizontalPartition(alice_points=tuple(POINTS[:3]),
                               bob_points=tuple(POINTS[3:]))


class TestSameSeedsSameEverything:
    @pytest.mark.parametrize("enhanced", [False, True])
    def test_horizontal_bit_identical(self, enhanced):
        first = cluster_partitioned(_horizontal(), _config(1, 2),
                                    enhanced=enhanced)
        second = cluster_partitioned(_horizontal(), _config(1, 2),
                                     enhanced=enhanced)
        assert first.alice_labels == second.alice_labels
        assert first.bob_labels == second.bob_labels
        assert first.stats["total_bytes"] == second.stats["total_bytes"]
        assert first.stats["total_messages"] \
            == second.stats["total_messages"]
        assert first.ledger.profile() == second.ledger.profile()
        assert first.comparisons == second.comparisons

    def test_vertical_bit_identical(self):
        partition = partition_vertical(Dataset.from_points(POINTS), 1)
        first = cluster_partitioned(partition, _config(3, 4))
        second = cluster_partitioned(partition, _config(3, 4))
        assert first.alice_labels == second.alice_labels
        assert first.stats["total_bytes"] == second.stats["total_bytes"]


class TestDifferentSeedsSameClustering:
    @pytest.mark.parametrize("enhanced", [False, True])
    def test_labels_independent_of_randomness(self, enhanced):
        first = cluster_partitioned(_horizontal(), _config(1, 2),
                                    enhanced=enhanced)
        second = cluster_partitioned(_horizontal(), _config(99, 77),
                                     enhanced=enhanced)
        assert canonicalize(first.alice_labels) \
            == canonicalize(second.alice_labels)
        assert canonicalize(first.bob_labels) \
            == canonicalize(second.bob_labels)

    def test_transcripts_actually_differ(self):
        """Different randomness must produce different ciphertext bytes
        somewhere -- otherwise the 'randomness' is not flowing."""
        from repro.net.channel import Channel
        from repro.core.horizontal import run_horizontal_dbscan

        channel_a = Channel()
        run_horizontal_dbscan(_horizontal(), _config(1, 2),
                              channel=channel_a)
        channel_b = Channel()
        run_horizontal_dbscan(_horizontal(), _config(99, 77),
                              channel=channel_b)
        def flatten(entries):
            out = []
            for entry in entries:
                value = entry.value
                if isinstance(value, list):
                    out.extend(v for v in value if isinstance(v, int))
                elif isinstance(value, int):
                    out.append(value)
            return out

        values_a = flatten(channel_a.transcript.entries)
        values_b = flatten(channel_b.transcript.entries)
        assert values_a and values_a != values_b

    def test_multiparty_deterministic(self):
        from repro.multiparty.horizontal import (
            run_multiparty_horizontal_dbscan,
        )
        points = {"p0": POINTS[:2], "p1": POINTS[2:4], "p2": POINTS[4:]}
        config = _config(0, 0, backend="oracle")
        first = run_multiparty_horizontal_dbscan(points, config,
                                                 seeds=[1, 2, 3])
        second = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2, 3])
        assert first.labels_by_party == second.labels_by_party
        assert first.stats["total_bytes"] == second.stats["total_bytes"]
