"""Tests for the horizontal protocol (Algorithms 3 + 4).

The binding correctness property: the secure run must reproduce the
union-density plaintext reference bit-for-bit, per party.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.labels import canonicalize
from repro.clustering.union_density import union_density_dbscan
from repro.core.config import ProtocolConfig
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import Disclosure
from repro.data.partitioning import HorizontalPartition
from repro.smc.session import SmcConfig


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.0, min_pts=3, scale=10,
                    smc=SmcConfig(comparison=backend, key_seed=100,
                                  mask_sigma=8, paillier_bits=128),
                    alice_seed=1, bob_seed=2)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


def _assert_matches_reference(partition, config):
    result = run_horizontal_dbscan(partition, config)
    ref_alice = union_density_dbscan(
        list(partition.alice_points), list(partition.bob_points),
        config.eps_squared, config.min_pts)
    ref_bob = union_density_dbscan(
        list(partition.bob_points), list(partition.alice_points),
        config.eps_squared, config.min_pts)
    assert canonicalize(result.alice_labels) \
        == canonicalize(ref_alice.labels.as_tuple())
    assert canonicalize(result.bob_labels) \
        == canonicalize(ref_bob.labels.as_tuple())
    return result


points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=10)


class TestAgainstReferenceOracle:
    """Control-flow correctness over many geometries (ideal comparisons)."""

    @settings(max_examples=25, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5))
    def test_random_geometries(self, alice_points, bob_points, min_pts):
        partition = HorizontalPartition(alice_points=tuple(alice_points),
                                        bob_points=tuple(bob_points))
        _assert_matches_reference(partition, _config(min_pts=min_pts))

    def test_empty_bob_side(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (5, 5), (5, 6)), bob_points=())
        _assert_matches_reference(partition, _config(min_pts=2))

    def test_cross_party_density_support(self):
        """Alice's lone point becomes core only through Bob's points.

        Grid scale is 10, so (0, 50) sits 5.0 units from the origin.
        """
        partition = HorizontalPartition(
            alice_points=((0, 0),),
            bob_points=((0, 50), (50, 0), (-50, 0)))
        config = _config(min_pts=4, eps=1.0)
        result = _assert_matches_reference(partition, config)
        assert result.alice_labels == (-1,)  # eps=1.0: too far, noise
        config_wide = _config(min_pts=4, eps=6.0)
        result_wide = _assert_matches_reference(partition, config_wide)
        assert result_wide.alice_labels == (1,)


class TestWithRealCrypto:
    """End-to-end with the bitwise comparison backend (small inputs)."""

    def test_small_geometry(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0), (20, 20)),
            bob_points=((0, 1), (1, 1), (40, 0)))
        result = _assert_matches_reference(
            partition, _config(backend="bitwise", min_pts=3))
        assert result.stats["total_bytes"] > 0

    def test_deterministic_under_seeds(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0)), bob_points=((0, 1),))
        config = _config(backend="bitwise", min_pts=2)
        first = run_horizontal_dbscan(partition, config)
        second = run_horizontal_dbscan(partition, config)
        assert first.alice_labels == second.alice_labels
        assert first.stats["total_bytes"] == second.stats["total_bytes"]


class TestDisclosureProfile:
    def test_ledger_contents(self):
        partition = HorizontalPartition(
            alice_points=((0, 0), (1, 0)), bob_points=((0, 1), (30, 30)))
        result = run_horizontal_dbscan(partition, _config(min_pts=2))
        profile = result.ledger.profile()
        # Base protocol: neighbor bits + counts; no core bits.
        assert profile.get("neighbor_count", 0) > 0
        assert profile.get("neighbor_bit", 0) > 0
        assert profile.get("core_bit", 0) == 0

    def test_faithful_hdp_reveals_dot_products(self):
        partition = HorizontalPartition(
            alice_points=((0, 0),), bob_points=((0, 1),))
        result = run_horizontal_dbscan(partition, _config(min_pts=1))
        assert result.ledger.count(Disclosure.DOT_PRODUCT) > 0

    def test_blinded_hdp_does_not(self):
        partition = HorizontalPartition(
            alice_points=((0, 0),), bob_points=((0, 1),))
        result = run_horizontal_dbscan(
            partition, _config(min_pts=1, blind_cross_sum=True))
        assert result.ledger.count(Disclosure.DOT_PRODUCT) == 0

    def test_query_count_bound(self):
        """Every driver point is queried at most once per pass, so
        neighbor-count disclosures are bounded by n."""
        alice_points = tuple((i, 0) for i in range(5))
        bob_points = tuple((i, 1) for i in range(4))
        partition = HorizontalPartition(alice_points=alice_points,
                                        bob_points=bob_points)
        result = run_horizontal_dbscan(partition, _config(min_pts=2))
        assert result.ledger.count(Disclosure.NEIGHBOR_COUNT) \
            <= len(alice_points) + len(bob_points)


class TestCommunicationScaling:
    def test_bytes_scale_with_cross_pairs(self):
        """Sec 4.2.2: cost driver is l*(n-l)."""
        def run_bytes(alice_count, bob_count):
            partition = HorizontalPartition(
                alice_points=tuple((10 * i, 0) for i in range(alice_count)),
                bob_points=tuple((10 * i, 300) for i in range(bob_count)))
            result = run_horizontal_dbscan(
                partition, _config(backend="bitwise", min_pts=2))
            return result.stats["total_bytes"]

        small = run_bytes(2, 2)    # 2*2*2 = 8 cross queries
        large = run_bytes(4, 4)    # 4*4*2 = 32 cross queries
        assert 2.5 < large / small < 6.0
