"""Tests for the arbitrary-partition protocol (Section 4.4)."""

import random

from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.core.arbitrary import run_arbitrary_dbscan
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.partitioning import (
    partition_arbitrary,
    partition_from_masks,
)
from repro.smc.session import SmcConfig


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.0, min_pts=3, scale=10,
                    smc=SmcConfig(comparison=backend, key_seed=120,
                                  mask_sigma=8),
                    alice_seed=5, bob_seed=6)
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


records_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=40)),
    min_size=2, max_size=12)


class TestAgainstCentralized:
    @settings(max_examples=20, deadline=None)
    @given(records_strategy, st.integers(min_value=1, max_value=4),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=1000))
    def test_random_partitions(self, records, min_pts, shared_fraction,
                               seed):
        dataset = Dataset.from_points(records)
        partition = partition_arbitrary(dataset, random.Random(seed),
                                        shared_fraction=shared_fraction)
        config = _config(min_pts=min_pts)
        result = run_arbitrary_dbscan(partition, config)
        reference = dbscan(list(dataset.records), config.eps_squared,
                           config.min_pts)
        assert canonicalize(result.labels) \
            == canonicalize(reference.as_tuple())

    def test_figure_4_example_shape(self):
        """Two records, four attributes, mixed ownership as in Figure 4."""
        dataset = Dataset.from_points([(1, 2, 3, 4), (5, 6, 7, 8)])
        partition = partition_from_masks(dataset, [
            ("alice", "bob", "alice", "alice"),
            ("alice", "bob", "bob", "bob"),
        ])
        config = _config(min_pts=1, eps=10.0)
        result = run_arbitrary_dbscan(partition, config)
        reference = dbscan(list(dataset.records), config.eps_squared, 1)
        assert canonicalize(result.labels) \
            == canonicalize(reference.as_tuple())


class TestWithRealCrypto:
    def test_mixed_ownership(self):
        dataset = Dataset.from_points([(0, 0), (1, 0), (0, 1), (50, 50)])
        partition = partition_from_masks(dataset, [
            ("alice", "alice"), ("bob", "bob"),
            ("alice", "bob"), ("bob", "alice"),
        ])
        config = _config(backend="bitwise", min_pts=3, eps=2.0)
        result = run_arbitrary_dbscan(partition, config)
        reference = dbscan(list(dataset.records), config.eps_squared, 3)
        assert canonicalize(result.labels) \
            == canonicalize(reference.as_tuple())

    def test_degenerate_vertical_and_horizontal_mixes(self):
        dataset = Dataset.from_points([(0, 0), (1, 1), (30, 30)])
        for shared_fraction in (0.0, 1.0):
            partition = partition_arbitrary(dataset, random.Random(4),
                                            shared_fraction=shared_fraction)
            config = _config(backend="bitwise", min_pts=2, eps=2.0)
            result = run_arbitrary_dbscan(partition, config)
            reference = dbscan(list(dataset.records), config.eps_squared, 2)
            assert canonicalize(result.labels) \
                == canonicalize(reference.as_tuple())
