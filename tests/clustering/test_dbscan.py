"""Tests for centralized DBSCAN, including the definitional invariants
of Section 3.1 as properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import core_points, dbscan
from repro.clustering.labels import NOISE, UNCLASSIFIED
from repro.clustering.neighborhoods import BruteForceIndex

points_strategy = st.lists(
    st.tuples(st.integers(min_value=-100, max_value=100),
              st.integers(min_value=-100, max_value=100)),
    min_size=1, max_size=50)


class TestKnownGeometries:
    def test_single_cluster(self):
        points = [(0, 0), (1, 0), (2, 0), (3, 0)]
        labels = dbscan(points, eps_squared=1, min_pts=2)
        assert set(labels.as_tuple()) == {1}

    def test_two_separated_clusters(self):
        points = [(0, 0), (1, 0), (2, 0), (100, 0), (101, 0), (102, 0)]
        labels = dbscan(points, eps_squared=1, min_pts=2)
        assert labels.as_tuple() == (1, 1, 1, 2, 2, 2)

    def test_all_noise(self):
        points = [(0, 0), (100, 0), (200, 0)]
        labels = dbscan(points, eps_squared=1, min_pts=2)
        assert set(labels.as_tuple()) == {NOISE}

    def test_border_point_joins_cluster(self):
        # Dense chain plus one boundary point reachable from a core point
        # but itself not core.
        points = [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]
        labels = dbscan(points, eps_squared=1, min_pts=3)
        assert labels.as_tuple() == (1, 1, 1, 1, 1)

    def test_min_pts_one_no_noise(self):
        points = [(0, 0), (50, 50)]
        labels = dbscan(points, eps_squared=1, min_pts=1)
        assert labels.as_tuple() == (1, 2)

    def test_ring_engulfing_cluster(self):
        """DBSCAN's signature: a cluster surrounded by another."""
        import math
        inner = [(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1)]
        outer = [(int(20 * math.cos(a * math.pi / 8)),
                  int(20 * math.sin(a * math.pi / 8))) for a in range(16)]
        labels = dbscan(inner + outer, eps_squared=36, min_pts=3)
        inner_labels = set(labels.as_tuple()[:len(inner)])
        outer_labels = set(labels.as_tuple()[len(inner):])
        assert len(inner_labels) == 1
        assert len(outer_labels) == 1
        assert inner_labels != outer_labels

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_pts"):
            dbscan([(0, 0)], eps_squared=1, min_pts=0)
        with pytest.raises(ValueError, match="eps_squared"):
            dbscan([(0, 0)], eps_squared=-1, min_pts=1)


class TestDefinitionalInvariants:
    """Definitions 1-4 of the paper, checked on random inputs."""

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6))
    def test_no_unclassified_remains(self, points, eps_squared, min_pts):
        labels = dbscan(points, eps_squared, min_pts)
        assert UNCLASSIFIED not in labels.as_tuple()

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6))
    def test_core_points_never_noise(self, points, eps_squared, min_pts):
        labels = dbscan(points, eps_squared, min_pts)
        for core in core_points(points, eps_squared, min_pts):
            assert labels[core] != NOISE

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6))
    def test_noise_points_have_no_core_neighbor(self, points, eps_squared,
                                                min_pts):
        """A noise point is density-unreachable: no core point covers it."""
        labels = dbscan(points, eps_squared, min_pts)
        index = BruteForceIndex(points)
        cores = set(core_points(points, eps_squared, min_pts))
        for i, label in enumerate(labels.as_tuple()):
            if label == NOISE:
                neighbors = index.region_query(points[i], eps_squared)
                assert not (set(neighbors) & cores)

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6))
    def test_core_neighborhoods_single_cluster(self, points, eps_squared,
                                               min_pts):
        """Maximality: everything a core point covers shares its cluster."""
        labels = dbscan(points, eps_squared, min_pts)
        index = BruteForceIndex(points)
        for core in core_points(points, eps_squared, min_pts):
            cluster = labels[core]
            for neighbor in index.region_query(points[core], eps_squared):
                assert labels[neighbor] == cluster

    @settings(max_examples=30, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6))
    def test_grid_index_equivalence(self, points, eps_squared, min_pts):
        plain = dbscan(points, eps_squared, min_pts)
        accelerated = dbscan(points, eps_squared, min_pts,
                             use_grid_index=True)
        assert plain.as_tuple() == accelerated.as_tuple()

    @settings(max_examples=20, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=100))
    def test_insensitive_to_duplicated_run(self, points, eps_squared,
                                           min_pts, seed):
        """Determinism: same input, same output."""
        __ = random.Random(seed)
        assert dbscan(points, eps_squared, min_pts).as_tuple() \
            == dbscan(points, eps_squared, min_pts).as_tuple()
