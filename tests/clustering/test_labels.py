"""Tests for label containers and canonicalization."""

import pytest

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    canonicalize,
    next_cluster_id,
)


class TestClusterLabels:
    def test_initial_state(self):
        labels = ClusterLabels(3)
        assert labels.as_tuple() == (UNCLASSIFIED,) * 3
        assert labels.is_unclassified(0)

    def test_change_single(self):
        labels = ClusterLabels(3)
        labels.change_cluster_id(1, 5)
        assert labels[1] == 5
        assert not labels.is_unclassified(1)

    def test_change_many(self):
        labels = ClusterLabels(4)
        labels.change_cluster_ids([0, 2], 7)
        assert labels.as_tuple() == (7, UNCLASSIFIED, 7, UNCLASSIFIED)

    def test_noise(self):
        labels = ClusterLabels(2)
        labels.change_cluster_id(0, NOISE)
        assert labels.is_noise(0)
        assert not labels.is_noise(1)

    def test_cluster_ids_in_order(self):
        labels = ClusterLabels(5, labels=[2, NOISE, 1, 2, UNCLASSIFIED])
        assert labels.cluster_ids() == [2, 1]

    def test_size_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            ClusterLabels(2, labels=[1, 2, 3])


class TestNextClusterId:
    def test_from_noise(self):
        assert next_cluster_id(NOISE) == 1

    def test_from_unclassified(self):
        assert next_cluster_id(UNCLASSIFIED) == 1

    def test_increments(self):
        assert next_cluster_id(1) == 2
        assert next_cluster_id(7) == 8


class TestCanonicalize:
    def test_identity_for_canonical(self):
        assert canonicalize((1, 1, 2, NOISE)) == (1, 1, 2, NOISE)

    def test_renames_by_first_appearance(self):
        assert canonicalize((5, 5, 3, NOISE, 3)) == (1, 1, 2, NOISE, 2)

    def test_noise_and_unclassified_fixed(self):
        assert canonicalize((NOISE, UNCLASSIFIED, 9)) \
            == (NOISE, UNCLASSIFIED, 1)

    def test_equivalent_labelings_share_canonical_form(self):
        assert canonicalize((7, 7, 2)) == canonicalize((1, 1, 9))

    def test_different_structures_differ(self):
        assert canonicalize((1, 1, 2)) != canonicalize((1, 2, 2))
