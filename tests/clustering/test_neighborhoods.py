"""Tests for region queries; the grid index must agree with brute force."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.neighborhoods import (
    BruteForceIndex,
    GridIndex,
    squared_distance,
)

points_strategy = st.lists(
    st.tuples(st.integers(min_value=-500, max_value=500),
              st.integers(min_value=-500, max_value=500)),
    min_size=1, max_size=60)


class TestSquaredDistance:
    def test_basic(self):
        assert squared_distance((0, 0), (3, 4)) == 25

    def test_zero(self):
        assert squared_distance((7, -2), (7, -2)) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            squared_distance((1,), (1, 2))

    @given(st.tuples(st.integers(), st.integers()),
           st.tuples(st.integers(), st.integers()))
    def test_symmetry(self, a, b):
        assert squared_distance(a, b) == squared_distance(b, a)


class TestBruteForceIndex:
    def test_includes_self(self):
        index = BruteForceIndex([(0, 0), (10, 10)])
        assert index.region_query((0, 0), 4) == [0]

    def test_radius_boundary_inclusive(self):
        index = BruteForceIndex([(0, 0), (3, 4)])
        assert index.region_query((0, 0), 25) == [0, 1]
        assert index.region_query((0, 0), 24) == [0]

    def test_empty(self):
        assert BruteForceIndex([]).region_query((0, 0), 100) == []


class TestGridIndex:
    def test_wrong_eps_rejected(self):
        index = GridIndex([(0, 0)], eps_squared=25)
        with pytest.raises(ValueError, match="built for"):
            index.region_query((0, 0), 16)

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            GridIndex([(0, 0)], eps_squared=-1)

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.integers(min_value=0, max_value=40000),
           st.integers(min_value=0, max_value=1000))
    def test_agrees_with_brute_force(self, points, eps_squared, seed):
        brute = BruteForceIndex(points)
        grid = GridIndex(points, eps_squared)
        rng = random.Random(seed)
        center = points[rng.randrange(len(points))]
        assert grid.region_query(center, eps_squared) \
            == brute.region_query(center, eps_squared)

    @settings(max_examples=20, deadline=None)
    @given(points_strategy)
    def test_agrees_on_offgrid_centers(self, points):
        eps_squared = 10000
        brute = BruteForceIndex(points)
        grid = GridIndex(points, eps_squared)
        for center in [(-1000, -1000), (0, 0), (501, 499)]:
            assert grid.region_query(center, eps_squared) \
                == brute.region_query(center, eps_squared)

    def test_three_dimensional(self):
        points = [(0, 0, 0), (1, 1, 1), (100, 100, 100)]
        grid = GridIndex(points, eps_squared=3)
        assert grid.region_query((0, 0, 0), 3) == [0, 1]
