"""Tests for the sorted k-dist parameter heuristic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.parameter_estimation import (
    EstimationError,
    k_distance_profile,
    knee_index,
    suggest_eps,
    suggest_parameters,
)
from repro.data.workloads import standard_workload
from repro.data.quantize import quantize_eps


class TestKDistanceProfile:
    def test_descending(self):
        points = [(0, 0), (1, 0), (2, 0), (50, 50)]
        profile = k_distance_profile(points, 1)
        assert profile == sorted(profile, reverse=True)

    def test_known_values(self):
        points = [(0, 0), (3, 4), (6, 8)]
        profile = k_distance_profile(points, 1)
        # Nearest-neighbour distances: 5, 5, 5.
        assert profile == [5.0, 5.0, 5.0]

    def test_k_two(self):
        points = [(0, 0), (1, 0), (3, 0)]
        profile = k_distance_profile(points, 2)
        # 2nd-NN distances: 3 (from 0), 2 (from 1), 3 (from 3).
        assert sorted(profile, reverse=True) == [3.0, 3.0, 2.0]

    def test_validation(self):
        with pytest.raises(EstimationError, match="k must be"):
            k_distance_profile([(0, 0), (1, 1)], 0)
        with pytest.raises(EstimationError, match="more than"):
            k_distance_profile([(0, 0)], 1)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=-50, max_value=50),
                              st.integers(min_value=-50, max_value=50)),
                    min_size=4, max_size=25, unique=True))
    def test_profile_length_and_order(self, points):
        profile = k_distance_profile(points, 2)
        assert len(profile) == len(points)
        assert all(a >= b for a, b in zip(profile, profile[1:]))


class TestKnee:
    def test_obvious_knee(self):
        profile = [100.0, 95.0, 90.0, 10.0, 9.0, 8.0, 7.0]
        index = knee_index(profile)
        assert index in (2, 3)

    def test_flat_profile(self):
        assert 0 <= knee_index([5.0, 5.0, 5.0, 5.0]) < 4

    def test_tiny_profiles(self):
        assert knee_index([1.0]) == 0
        assert knee_index([2.0, 1.0]) == 1


class TestSuggestions:
    def test_suggestion_separates_clusters_from_noise(self):
        """On the grid workload (tight clusters, far apart) the suggested
        eps must recover the designed structure."""
        workload = standard_workload("grid")
        eps, min_pts = suggest_parameters(list(workload.points), k=3,
                                          scale=100)
        labels = dbscan(list(workload.points),
                        quantize_eps(eps, 100), min_pts)
        found = {label for label in labels.as_tuple() if label != -1}
        assert len(found) == workload.expected_clusters

    def test_suggested_eps_between_intra_and_inter(self):
        workload = standard_workload("grid")
        eps = suggest_eps(list(workload.points), k=3, scale=100)
        # Intra-cluster spacing 0.2, inter-cluster gap 5.0.
        assert 0.2 <= eps < 5.0

    def test_min_pts_is_k_plus_one(self):
        points = [(i, 0) for i in range(10)]
        __, min_pts = suggest_parameters(points, k=4)
        assert min_pts == 5
