"""Tests for clustering comparison metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.labels import NOISE
from repro.clustering.metrics import (
    adjusted_rand_index,
    labelings_equivalent,
    noise_agreement,
    purity,
    rand_index,
)

labelings = st.lists(
    st.integers(min_value=-1, max_value=4), min_size=1, max_size=30)


class TestLabelingsEquivalent:
    def test_identical(self):
        assert labelings_equivalent((1, 1, 2), (1, 1, 2))

    def test_renamed(self):
        assert labelings_equivalent((1, 1, 2), (9, 9, 4))

    def test_different_structure(self):
        assert not labelings_equivalent((1, 1, 2), (1, 2, 2))

    def test_noise_respected(self):
        assert labelings_equivalent((NOISE, 1), (NOISE, 7))
        assert not labelings_equivalent((NOISE, 1), (1, NOISE))

    def test_length_mismatch(self):
        assert not labelings_equivalent((1,), (1, 1))


class TestRandIndex:
    def test_perfect(self):
        assert rand_index((1, 1, 2, 2), (5, 5, 9, 9)) == 1.0

    def test_total_disagreement(self):
        # One big cluster vs all singletons: no agreeing same-pairs, and
        # no agreeing different-pairs either.
        assert rand_index((1, 1, 1), (1, 2, 3)) == 0.0

    def test_single_point(self):
        assert rand_index((1,), (2,)) == 1.0

    @given(labelings)
    def test_self_comparison_is_one(self, labels):
        assert rand_index(labels, labels) == 1.0

    @given(labelings, labelings)
    def test_symmetric_and_bounded(self, left, right):
        if len(left) != len(right):
            left = (left * len(right))[:max(len(left), len(right))]
            right = (right * len(left))[:len(left)]
        value = rand_index(left, right)
        assert 0.0 <= value <= 1.0
        assert value == rand_index(right, left)


class TestAdjustedRandIndex:
    def test_perfect(self):
        assert adjusted_rand_index((1, 1, 2, 2), (3, 3, 8, 8)) == 1.0

    def test_known_value(self):
        # Classic example: ARI is lower than RI for partial agreement.
        left = (1, 1, 1, 2, 2, 2)
        right = (1, 1, 2, 2, 3, 3)
        ari = adjusted_rand_index(left, right)
        assert 0.0 < ari < 1.0
        assert ari < rand_index(left, right)

    @given(labelings)
    def test_self_comparison_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(labelings, labelings)
    def test_symmetry(self, left, right):
        size = min(len(left), len(right))
        left, right = left[:size], right[:size]
        assert adjusted_rand_index(left, right) \
            == pytest.approx(adjusted_rand_index(right, left))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            adjusted_rand_index((1,), (1, 2))


class TestPurity:
    def test_perfect(self):
        assert purity((1, 1, 2, 2), (1, 1, 2, 2)) == 1.0

    def test_mixed_cluster(self):
        assert purity((1, 1, 1, 1), (1, 1, 2, 2)) == 0.5

    def test_noise_excluded(self):
        assert purity((NOISE, NOISE, 1), (1, 2, 3)) == 1.0

    def test_all_noise_vacuous(self):
        assert purity((NOISE, NOISE), (1, 2)) == 1.0

    @given(labelings, labelings)
    def test_bounded(self, predicted, reference):
        size = min(len(predicted), len(reference))
        value = purity(predicted[:size], reference[:size])
        assert 0.0 <= value <= 1.0


class TestNoiseAgreement:
    def test_perfect(self):
        assert noise_agreement((NOISE, 1, 2), (NOISE, 5, 5)) == 1.0

    def test_half(self):
        assert noise_agreement((NOISE, 1), (NOISE, NOISE)) == 0.5

    def test_empty(self):
        assert noise_agreement((), ()) == 1.0

    @given(labelings)
    def test_self_is_one(self, labels):
        assert noise_agreement(labels, labels) == 1.0
