"""Cross-validation of DBSCAN against an independent by-definition model.

The implementation in ``repro.clustering.dbscan`` follows the original
ExpandCluster control flow.  This module checks it against a *different*
construction built straight from Definitions 1-4 of the paper:

- core points: ``|N_eps(p)| >= MinPts``;
- clusters: connected components of the "core points within eps of each
  other" graph (density-reachability restricted to cores);
- border points: non-core points with at least one core neighbour join
  one of its core neighbours' clusters (which one is
  implementation-defined -- the original algorithm assigns first-found);
- noise: everything else.

Agreement is checked up to the border-assignment freedom: core-point
partitions must match exactly, border points must be assigned to the
cluster of SOME core neighbour, and noise must match exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE
from repro.clustering.neighborhoods import BruteForceIndex

points_strategy = st.lists(
    st.tuples(st.integers(min_value=-60, max_value=60),
              st.integers(min_value=-60, max_value=60)),
    min_size=1, max_size=40)


def _by_definition(points, eps_squared, min_pts):
    """Independent model: (core_components, border_options, noise_set).

    Returns:
        core_component: dict core_index -> component id
        border_options: dict border_index -> set of component ids it may
            legally join
        noise: set of indices
    """
    index = BruteForceIndex(points)
    neighborhoods = [index.region_query(p, eps_squared) for p in points]
    cores = {i for i, neighbors in enumerate(neighborhoods)
             if len(neighbors) >= min_pts}

    # Union-find over core points.
    parent = {c: c for c in cores}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for core in cores:
        for neighbor in neighborhoods[core]:
            if neighbor in cores:
                parent[find(core)] = find(neighbor)

    core_component = {core: find(core) for core in cores}
    border_options = {}
    noise = set()
    for i in range(len(points)):
        if i in cores:
            continue
        reachable = {core_component[n] for n in neighborhoods[i]
                     if n in cores}
        if reachable:
            border_options[i] = reachable
        else:
            noise.add(i)
    return core_component, border_options, noise


class TestAgainstDefinition:
    @settings(max_examples=60, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=600),
           st.integers(min_value=1, max_value=6))
    def test_full_agreement(self, points, eps_squared, min_pts):
        labels = dbscan(points, eps_squared, min_pts).as_tuple()
        core_component, border_options, noise = _by_definition(
            points, eps_squared, min_pts)

        # 1. Noise matches exactly.
        assert {i for i, l in enumerate(labels) if l == NOISE} == noise

        # 2. Core partition matches: same component <=> same label.
        by_component = {}
        for core, component in core_component.items():
            by_component.setdefault(component, set()).add(labels[core])
        for labels_in_component in by_component.values():
            assert len(labels_in_component) == 1
        distinct_components = len(by_component)
        distinct_core_labels = len(
            {labels[c] for c in core_component})
        assert distinct_components == distinct_core_labels

        # 3. Every border point is assigned to a legal component.
        component_label = {component: labels[core]
                           for core, component in core_component.items()}
        for border, options in border_options.items():
            legal_labels = {component_label[c] for c in options}
            assert labels[border] in legal_labels

    @settings(max_examples=30, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=600))
    def test_min_pts_one_means_singletons_cluster(self, points, eps_squared):
        """With MinPts=1 every point is core: no noise can exist."""
        labels = dbscan(points, eps_squared, 1).as_tuple()
        assert NOISE not in labels

    @settings(max_examples=30, deadline=None)
    @given(points_strategy, st.integers(min_value=1, max_value=6))
    def test_huge_eps_single_cluster(self, points, min_pts):
        """With eps covering everything, either one cluster or all noise."""
        eps_squared = 4 * 60 * 60 * 2 + 1
        labels = dbscan(points, eps_squared, min_pts).as_tuple()
        if len(points) >= min_pts:
            assert set(labels) == {1}
        else:
            assert set(labels) == {NOISE}
