"""Tests for the union-density per-party semantics (Algorithm 3/4 model)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE, UNCLASSIFIED
from repro.clustering.union_density import union_density_dbscan

points_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50),
              st.integers(min_value=-50, max_value=50)),
    min_size=1, max_size=25)


class TestBasicBehaviour:
    def test_no_other_points_reduces_to_dbscan(self):
        points = [(0, 0), (1, 0), (2, 0), (50, 50)]
        result = union_density_dbscan(points, [], eps_squared=1, min_pts=2)
        assert result.labels.as_tuple() \
            == dbscan(points, eps_squared=1, min_pts=2).as_tuple()

    def test_peer_density_promotes_core(self):
        """A lone own-point becomes core thanks to peer support."""
        own = [(0, 0)]
        other = [(1, 0), (0, 1), (-1, 0)]
        result = union_density_dbscan(own, other, eps_squared=1, min_pts=4)
        assert result.labels.as_tuple() == (1,)
        assert result.core_flags == (True,)
        assert result.other_neighbor_counts == (3,)

    def test_no_expansion_through_peer_points(self):
        """Two own points bridged ONLY by peer density stay separate --
        the defining divergence from centralized DBSCAN."""
        own = [(0, 0), (10, 0)]
        other = [(2, 0), (4, 0), (5, 0), (6, 0), (8, 0),
                 (1, 0), (3, 0), (7, 0), (9, 0)]
        eps_squared = 4  # eps = 2
        result = union_density_dbscan(own, other, eps_squared, min_pts=3)
        # Each own point is core (peer support) but they are 10 apart.
        assert result.core_flags == (True, True)
        labels = result.labels.as_tuple()
        assert labels[0] != labels[1]
        # Centralized DBSCAN on the union merges everything into one.
        joint = dbscan(own + other, eps_squared, 3)
        assert joint.as_tuple()[0] == joint.as_tuple()[1]

    def test_counts_include_self(self):
        result = union_density_dbscan([(0, 0)], [], eps_squared=1, min_pts=1)
        assert result.own_neighbor_counts == (1,)

    def test_min_pts_validation(self):
        with pytest.raises(ValueError, match="min_pts"):
            union_density_dbscan([(0, 0)], [], eps_squared=1, min_pts=0)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=5))
    def test_no_unclassified(self, own, other, eps_squared, min_pts):
        result = union_density_dbscan(own, other, eps_squared, min_pts)
        assert UNCLASSIFIED not in result.labels.as_tuple()

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=5))
    def test_core_flags_match_counts(self, own, other, eps_squared, min_pts):
        result = union_density_dbscan(own, other, eps_squared, min_pts)
        for own_count, other_count, flag in zip(
                result.own_neighbor_counts, result.other_neighbor_counts,
                result.core_flags):
            assert flag == (own_count + other_count >= min_pts)

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=5))
    def test_core_points_clustered(self, own, other, eps_squared, min_pts):
        result = union_density_dbscan(own, other, eps_squared, min_pts)
        for index, flag in enumerate(result.core_flags):
            if flag:
                assert result.labels[index] != NOISE

    @settings(max_examples=40, deadline=None)
    @given(points_strategy,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=5))
    def test_reduces_to_dbscan_property(self, own, eps_squared, min_pts):
        result = union_density_dbscan(own, [], eps_squared, min_pts)
        assert result.labels.as_tuple() \
            == dbscan(own, eps_squared, min_pts).as_tuple()

    @settings(max_examples=30, deadline=None)
    @given(points_strategy, points_strategy,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=5))
    def test_more_peer_support_never_loses_members(self, own, other,
                                                   eps_squared, min_pts):
        """Monotonicity: adding peer points can only turn noise into
        cluster members, never the reverse."""
        sparse = union_density_dbscan(own, [], eps_squared, min_pts)
        dense = union_density_dbscan(own, other, eps_squared, min_pts)
        for before, after in zip(sparse.labels.as_tuple(),
                                 dense.labels.as_tuple()):
            if before != NOISE:
                assert after != NOISE
