"""Span tracing: the privacy guard, JSONL emission, and summaries.

The property tests are the PR's privacy bar: no integer large enough to
be a plaintext, randomness factor, or key component -- and no long or
numeric string, and no byte payload -- can appear in an emitted trace.
The guard reduces them to sizes and truncated digests, which are too
short to contain the original decimal expansion.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.trace import (
    INT_BOUND,
    NULL_SPAN,
    format_trace_summary,
    guard_value,
    read_trace_dir,
    summarize_trace_dir,
    tracer_for,
)


class TestGuardValue:
    def test_safe_shapes_pass_through(self):
        for value in (None, True, False, 7, -12, 0.25, "pass0",
                      "party0-party1"):
            assert guard_value(value) == value

    def test_big_int_reduced_to_digest(self):
        secret = 2 ** 512 + 12345
        guarded = guard_value(secret)
        assert set(guarded) == {"digest", "bits"}
        assert guarded["bits"] == secret.bit_length()
        assert guarded["digest"].startswith("sha256:")

    def test_bytes_reduced_to_digest_and_len(self):
        guarded = guard_value(b"\x00\x01wire payload")
        assert set(guarded) == {"digest", "len"}
        assert guarded["len"] == 14

    def test_containers_reduced_to_sizes(self):
        assert guard_value([1, 2, 3]) == {"len": 3}
        assert guard_value((1,)) == {"len": 1}
        assert guard_value({"a": 1, "b": 2}) == {"keys": 2}

    def test_unknown_object_reduced_to_type_name(self):
        class Opaque:
            pass

        assert guard_value(Opaque()) == {"type": "Opaque"}

    @given(st.integers(min_value=INT_BOUND, max_value=2 ** 2048))
    def test_no_big_int_survives(self, secret):
        """Crypto material is arbitrary precision: its decimal expansion
        must never appear in the guarded output, in either sign."""
        for value in (secret, -secret):
            emitted = json.dumps(guard_value(value))
            assert str(abs(value)) not in emitted

    @given(st.integers(max_value=INT_BOUND - 1,
                       min_value=-(INT_BOUND - 1)))
    def test_protocol_sized_ints_pass(self, value):
        assert guard_value(value) == value

    @given(st.text(alphabet="0123456789", min_size=19, max_size=700))
    def test_no_numeric_string_survives(self, digits):
        """A stringified plaintext or factor is digested, and the
        16-hex-char digest is too short to contain the original run."""
        emitted = json.dumps(guard_value(digits))
        assert digits not in emitted

    @given(st.text(min_size=121, max_size=500))
    def test_no_long_string_survives(self, text):
        guarded = guard_value(text)
        assert set(guarded) == {"digest", "len"}
        assert guarded["len"] == len(text)

    @given(st.binary(min_size=1, max_size=200))
    def test_no_bytes_survive(self, payload):
        guarded = guard_value(payload)
        assert set(guarded) == {"digest", "len"}
        assert len(guarded["digest"]) == len("sha256:") + 16


class TestTracer:
    def test_disabled_tracer_hands_out_null_span(self, tmp_path):
        tracer = tracer_for(None, "party0")
        assert not tracer.enabled
        span = tracer.span("session", "s0")
        assert span is NULL_SPAN
        assert span.child("pass", "p0") is NULL_SPAN
        assert list(tmp_path.iterdir()) == []

    def test_spans_emit_jsonl_with_parent_ids(self, tmp_path):
        tracer = tracer_for(tmp_path, "party0")
        with tracer.span("session", "s0", parties=3) as session:
            with session.child("pass", "pass0", index=0) as span:
                span.set(served=2)
        tracer.close()
        records = read_trace_dir(tmp_path)
        assert [record["kind"] for record in records] == ["pass",
                                                          "session"]
        by_kind = {record["kind"]: record for record in records}
        assert by_kind["pass"]["parent"] == by_kind["session"]["id"]
        assert by_kind["session"]["parent"] is None
        assert by_kind["pass"]["attrs"] == {"index": 0, "served": 2}
        assert by_kind["session"]["party"] == "party0"
        assert by_kind["session"]["dur"] >= by_kind["pass"]["dur"] >= 0

    def test_span_attrs_pass_the_guard(self, tmp_path):
        tracer = tracer_for(tmp_path, "party0")
        secret = 2 ** 256 + 7
        with tracer.span("session", "s0", plaintext=secret):
            pass
        tracer.close()
        raw = (tmp_path / "party0.jsonl").read_text()
        assert str(secret) not in raw
        assert "bits" in raw

    def test_exception_recorded_as_error_attr(self, tmp_path):
        tracer = tracer_for(tmp_path, "party0")
        with pytest.raises(RuntimeError):
            with tracer.span("session", "s0"):
                raise RuntimeError("boom")
        tracer.close()
        [record] = read_trace_dir(tmp_path)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_close_is_idempotent_and_final(self, tmp_path):
        tracer = tracer_for(tmp_path, "party0")
        span = tracer.span("session", "s0")
        span.close()
        span.close()
        tracer.close()
        tracer.close()
        assert len(read_trace_dir(tmp_path)) == 1


def _write_trace(path, party, records):
    path.mkdir(exist_ok=True)
    with open(path / f"{party}.jsonl", "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def _span(party, span_id, parent, kind, name, dur, **attrs):
    return {"id": span_id, "parent": parent, "kind": kind, "name": name,
            "party": party, "t0": 0.0, "t1": dur, "dur": dur,
            "attrs": attrs}


class TestSummaries:
    def test_critical_path_is_per_step_max(self, tmp_path):
        """Two peers per step overlap: the pass waits for the slower
        one, so the critical path sums the per-step maxima."""
        _write_trace(tmp_path, "p0", [
            _span("p0", 1, None, "session", "s0", 10.0),
            _span("p0", 2, 1, "pass", "pass0", 9.0, role="drive"),
            _span("p0", 3, 2, "peer_query", "step0:p1", 2.0,
                  step=0, peer="p1"),
            _span("p0", 4, 2, "peer_query", "step0:p2", 3.0,
                  step=0, peer="p2"),
            _span("p0", 5, 2, "peer_query", "step1:p1", 1.5,
                  step=1, peer="p1"),
            _span("p0", 6, 3, "attempt", "attempt0", 1.0, attempt=0),
            _span("p0", 7, 3, "attempt", "attempt1", 1.0, attempt=1),
            _span("p0", 8, 4, "attempt", "attempt0", 3.0, attempt=0),
        ])
        summary = summarize_trace_dir(tmp_path)
        entry = summary["sessions"]["s0"]["parties"]["p0"]
        assert entry["duration"] == 10.0
        [row] = entry["passes"]
        assert row["role"] == "drive"
        assert row["queries"] == 3
        assert row["critical_path"] == pytest.approx(3.0 + 1.5)
        assert row["attempts"] == 3
        assert row["restarts"] == 1  # one query needed a second attempt

    def test_parties_grouped_under_one_session(self, tmp_path):
        _write_trace(tmp_path, "p0", [
            _span("p0", 1, None, "session", "s0", 4.0),
            _span("p0", 2, 1, "pass", "pass0", 3.0, role="drive"),
        ])
        _write_trace(tmp_path, "p1", [
            _span("p1", 1, None, "session", "s0", 4.5),
            _span("p1", 2, 1, "pass", "pass0", 3.5, role="respond",
                  served=2),
        ])
        summary = summarize_trace_dir(tmp_path)
        parties = summary["sessions"]["s0"]["parties"]
        assert set(parties) == {"p0", "p1"}
        assert parties["p1"]["passes"][0]["role"] == "respond"

    def test_orphan_spans_are_skipped(self, tmp_path):
        _write_trace(tmp_path, "p0", [
            _span("p0", 9, 99, "pass", "pass0", 1.0),
        ])
        assert summarize_trace_dir(tmp_path) == {"sessions": {}}

    def test_format_renders_every_pass_line(self, tmp_path):
        _write_trace(tmp_path, "p0", [
            _span("p0", 1, None, "session", "s0", 4.0),
            _span("p0", 2, 1, "pass", "pass0", 3.0, role="drive"),
            _span("p0", 3, 1, "pass", "pass1", 1.0, role="respond"),
        ])
        text = format_trace_summary(summarize_trace_dir(tmp_path))
        assert "session s0" in text
        assert "party p0: 4.000s total" in text
        assert "pass0 [drive] 3.000s" in text
        assert "pass1 [respond] 1.000s" in text

    def test_non_jsonl_files_ignored(self, tmp_path):
        _write_trace(tmp_path, "p0", [
            _span("p0", 1, None, "session", "s0", 1.0)])
        (tmp_path / "notes.txt").write_text("not a trace")
        assert len(read_trace_dir(tmp_path)) == 1
