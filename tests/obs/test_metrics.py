"""Metrics registry semantics, privacy bounds, and the null fast path."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    VALUE_BOUND,
    MetricsRegistry,
    parse_series_key,
    series_key,
)


class TestSeriesKeys:
    def test_unlabeled_key_is_the_name(self):
        assert series_key("repro_x_total", {}) == "repro_x_total"

    def test_labels_sorted_into_key(self):
        key = series_key("repro_x", {"b": "2", "a": "1"})
        assert key == "repro_x{a=1,b=2}"

    def test_parse_inverts_render(self):
        name, labels = parse_series_key("repro_x{a=1,b=2}")
        assert (name, labels) == ("repro_x", {"a": "1", "b": "2"})
        assert parse_series_key("repro_x") == ("repro_x", {})

    @given(st.dictionaries(
        st.text(alphabet="abcdef_", min_size=1, max_size=8),
        st.text(alphabet="xyz-0123456789", min_size=1, max_size=8),
        max_size=4))
    def test_roundtrip_property(self, labels):
        name, parsed = parse_series_key(series_key("metric", labels))
        assert name == "metric"
        assert parsed == labels


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_frames_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_parked")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("repro_pass_seconds")
        for value in (0.5, 1.5, 2.5):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(4.5)
        assert summary["min"] == 0.5
        assert summary["max"] == 2.5

    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x", pair="a-b", dir="out")
        second = registry.counter("repro_x", dir="out", pair="a-b")
        assert first is second
        assert registry.counter("repro_x", pair="a-b", dir="in") \
            is not first


class TestPrivacyBounds:
    def test_value_at_bound_rejected(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError, match="2\\*\\*63"):
            counter.inc(VALUE_BOUND)

    def test_bool_value_rejected(self):
        gauge = MetricsRegistry().gauge("repro_x")
        with pytest.raises(ValueError, match="int or float"):
            gauge.set(True)

    @given(st.integers(min_value=VALUE_BOUND))
    def test_any_crypto_sized_value_rejected(self, value):
        """Paillier/RSA material is arbitrary-precision: no metric can
        ever record it, in either sign."""
        gauge = MetricsRegistry().gauge("repro_x")
        with pytest.raises(ValueError):
            gauge.set(value)
        with pytest.raises(ValueError):
            gauge.set(-value)

    @given(st.integers(min_value=0, max_value=VALUE_BOUND - 1))
    def test_protocol_sized_values_pass(self, value):
        gauge = MetricsRegistry().gauge("repro_x")
        gauge.set(value)
        assert gauge.value == value

    def test_label_digit_run_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="digit run"):
            registry.counter("repro_x", pair="1" * 19)

    def test_label_too_long_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="longer"):
            registry.counter("repro_x", pair="a" * 121)


class TestDisabledRegistry:
    def test_hands_out_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("repro_x_total") is NULL_INSTRUMENT
        assert registry.gauge("repro_y") is NULL_INSTRUMENT
        assert registry.histogram("repro_z") is NULL_INSTRUMENT

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.dec()
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(0.5)
        assert NULL_INSTRUMENT.value == 0

    def test_snapshot_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("repro_x_total").inc()
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}

    def test_collectors_ignored(self):
        registry = MetricsRegistry(enabled=False)
        registry.register_collector(
            lambda _: (_ for _ in ()).throw(AssertionError))
        assert registry.snapshot()["gauges"] == {}


class TestSnapshot:
    def test_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total").inc(2)
        registry.counter("repro_a_total").inc()
        registry.gauge("repro_level").set(7)
        registry.histogram("repro_seconds").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert list(snapshot["counters"]) == ["repro_a_total",
                                              "repro_b_total"]
        assert snapshot["gauges"]["repro_level"] == 7
        assert snapshot["histograms"]["repro_seconds"]["count"] == 1

    def test_collector_runs_at_snapshot_time(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.gauge("repro_threads").set(11))
        assert registry.snapshot()["gauges"]["repro_threads"] == 11

    def test_failing_collector_cannot_break_snapshot(self):
        registry = MetricsRegistry()

        def dead(reg):
            raise RuntimeError("subsystem gone")

        registry.register_collector(dead)
        registry.register_collector(
            lambda reg: reg.gauge("repro_alive").set(1))
        assert registry.snapshot()["gauges"]["repro_alive"] == 1

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_frames_total", pair="a-b").inc(3)
        registry.gauge("repro_level").set(2)
        registry.histogram("repro_seconds").observe(1.0)
        text = registry.render_text()
        assert 'repro_frames_total{pair="a-b"} 3' in text
        assert "repro_level 2" in text
        assert "repro_seconds_count 1" in text
        assert "repro_seconds_sum 1.0" in text


class TestConcurrency:
    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")
        per_thread, threads = 2000, 8

        def work() -> None:
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == per_thread * threads

    def test_concurrent_series_creation_is_single_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work() -> None:
            barrier.wait()
            seen.append(registry.counter("repro_x_total", pair="a-b"))

        workers = [threading.Thread(target=work) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(set(map(id, seen))) == 1
