"""Tests for the communication-complexity models and fitting."""

import pytest

from repro.analysis.communication import (
    bytes_per_unit,
    enhanced_predicted_bits,
    fit_through_origin,
    horizontal_pair_term,
    horizontal_predicted_bits,
    horizontal_work_term,
    vertical_predicted_bits,
    vertical_work_term,
    ympp_predicted_bits,
)


class TestFormulas:
    def test_horizontal_formula(self):
        # c1*m*l*(n-l) + c2*n0*l*(n-l) with all parameters distinguishable.
        assert horizontal_predicted_bits(n=10, l=4, m=3, c1=8, c2=16,
                                         n0=32) \
            == 8 * 3 * 4 * 6 + 16 * 32 * 4 * 6

    def test_vertical_formula(self):
        assert vertical_predicted_bits(n=10, c2=16, n0=32) == 16 * 32 * 100

    def test_enhanced_same_order_as_horizontal(self):
        for n, l, m in [(10, 5, 2), (20, 7, 4)]:
            assert enhanced_predicted_bits(n, l, m, 8, 16, 32) \
                == horizontal_predicted_bits(n, l, m, 8, 16, 32)

    def test_ympp_linear_in_domain(self):
        assert ympp_predicted_bits(64, c2=16) == 16 * 66
        assert ympp_predicted_bits(128, 16) > 1.9 * ympp_predicted_bits(64, 16)

    def test_work_terms(self):
        assert horizontal_work_term(10, 4, 3) == 72
        assert horizontal_pair_term(10, 4) == 24
        assert vertical_work_term(10) == 90


class TestFitting:
    def test_perfect_proportionality(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [10.0, 20.0, 30.0, 40.0]
        fit = fit_through_origin(xs, ys)
        assert fit.coefficient == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(5.0) == pytest.approx(50.0)

    def test_noisy_fit_good_r2(self):
        xs = [float(x) for x in range(1, 20)]
        ys = [7.0 * x + ((-1) ** x) * 0.5 for x in xs]
        fit = fit_through_origin(xs, ys)
        assert fit.coefficient == pytest.approx(7.0, abs=0.1)
        assert fit.r_squared > 0.99

    def test_non_proportional_low_r2(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [50.0, 10.0, 40.0, 5.0, 30.0]  # uncorrelated with xs
        fit = fit_through_origin(xs, ys)
        assert fit.r_squared < 0.9

    def test_constant_data_is_vacuously_perfect(self):
        # Zero variance: R^2 is defined as 1.0 by convention.
        fit = fit_through_origin([1.0, 2.0], [5.0, 5.0])
        assert fit.r_squared == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            fit_through_origin([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="two observations"):
            fit_through_origin([1.0], [1.0])
        with pytest.raises(ValueError, match="zero"):
            fit_through_origin([0.0, 0.0], [1.0, 2.0])

    def test_bytes_per_unit_wrapper(self):
        fit = bytes_per_unit([100, 200, 300], [1, 2, 3])
        assert fit.coefficient == pytest.approx(100.0)
