"""Tests for table rendering."""

import pytest

from repro.analysis.report import format_bytes, format_ratio, render_table


class TestRenderTable:
    def test_basic_shape(self):
        table = render_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        table = render_table(["x"], [[1]], title="E1 results")
        assert table.splitlines()[0] == "E1 results"

    def test_column_alignment(self):
        table = render_table(["col"], [["short"], ["a longer cell"]])
        lines = table.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_row_width_validation(self):
        with pytest.raises(ValueError, match="header"):
            render_table(["a"], [[1, 2]])


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(500) == "500 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.00 MiB"

    def test_format_ratio(self):
        assert format_ratio(0) == "0"
        assert format_ratio(0.25) == "0.250"
        assert "e" in format_ratio(0.00001)
