"""Tests for the Figure 2-4 renderings."""

import random

from repro.analysis.figures import (
    ownership_summary,
    render_arbitrary_figure,
    render_horizontal_figure,
    render_vertical_figure,
)
from repro.data.dataset import Dataset
from repro.data.partitioning import (
    partition_arbitrary,
    partition_from_masks,
    partition_horizontal,
    partition_vertical,
)

DATASET = Dataset.from_points([(1, 2, 3), (4, 5, 6), (7, 8, 9)])


class TestHorizontalFigure:
    def test_figure_2_shape(self):
        figure = render_horizontal_figure(partition_horizontal(DATASET, 2))
        lines = figure.splitlines()
        assert len(lines) == 4  # header + 3 records
        assert lines[1].count("A") == 3
        assert lines[3].count("B") == 3

    def test_record_ids_sequential(self):
        figure = render_horizontal_figure(partition_horizontal(DATASET, 1))
        assert "d1" in figure and "d3" in figure


class TestVerticalFigure:
    def test_figure_3_shape(self):
        figure = render_vertical_figure(partition_vertical(DATASET, 2))
        lines = figure.splitlines()
        assert len(lines) == 4
        for line in lines[1:]:
            # Alice's two columns then Bob's one, on every record row.
            assert line.count("A") == 2
            assert line.count("B") == 1


class TestArbitraryFigure:
    def test_figure_4_shape(self):
        partition = partition_from_masks(DATASET, [
            ("alice", "bob", "alice"),
            ("bob", "bob", "bob"),
            ("alice", "alice", "bob"),
        ])
        figure = render_arbitrary_figure(partition)
        lines = figure.splitlines()
        assert lines[1].count("A") == 2 and lines[1].count("B") == 1
        assert lines[2].count("B") == 3
        assert lines[3].count("A") == 2

    def test_summary_counts_cells(self):
        partition = partition_arbitrary(DATASET, random.Random(0))
        summary = ownership_summary(partition)
        assert summary["alice"] + summary["bob"] == 9

    def test_header_names_attributes(self):
        partition = partition_arbitrary(DATASET, random.Random(0))
        header = render_arbitrary_figure(partition).splitlines()[0]
        assert "attr1" in header and "attr3" in header
