"""Tests for the Figure 1 intersection attack quantification."""

import random

import pytest

from repro.analysis.attacks import (
    AttackError,
    Domain2D,
    disk_intersection_area,
    disk_union_area,
    intersection_attack_report,
    ring_of_observers,
)

DOMAIN = Domain2D(x_min=-10, x_max=10, y_min=-10, y_max=10)


class TestAreaEstimation:
    def test_single_disk_area(self):
        rng = random.Random(0)
        area = disk_intersection_area([(0.0, 0.0)], 2.0, DOMAIN, rng,
                                      samples=50000)
        import math
        assert area == pytest.approx(math.pi * 4.0, rel=0.1)

    def test_union_at_least_intersection(self):
        rng = random.Random(1)
        centers = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]
        intersection = disk_intersection_area(centers, 2.0, DOMAIN, rng,
                                              samples=20000)
        union = disk_union_area(centers, 2.0, DOMAIN, random.Random(1),
                                samples=20000)
        assert union >= intersection

    def test_disjoint_disks_empty_intersection(self):
        rng = random.Random(2)
        centers = [(-8.0, 0.0), (8.0, 0.0)]
        assert disk_intersection_area(centers, 1.0, DOMAIN, rng,
                                      samples=20000) == 0.0

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(AttackError, match="radius"):
            disk_intersection_area([(0, 0)], 0.0, DOMAIN, rng)
        with pytest.raises(AttackError, match="center"):
            disk_intersection_area([], 1.0, DOMAIN, rng)
        with pytest.raises(AttackError, match="samples"):
            disk_intersection_area([(0, 0)], 1.0, DOMAIN, rng, samples=0)


class TestRingOfObservers:
    def test_count_and_distance(self):
        observers = ring_of_observers((0.0, 0.0), 6, 1.5)
        assert len(observers) == 6
        for x, y in observers:
            assert (x * x + y * y) ** 0.5 == pytest.approx(1.5)

    def test_invalid_count(self):
        with pytest.raises(AttackError, match="count"):
            ring_of_observers((0, 0), 0, 1.0)


class TestAttackReport:
    def test_more_observers_shrink_kumar_posterior(self):
        """The paper's Figure 1 narrative: the linkable adversary's
        region shrinks as hit count grows; the count-only posterior
        (ours) does not shrink below one disk.

        Common random numbers (the same seed per estimate) plus nested
        observer rings make the estimated areas deterministically
        monotone, so the assertion cannot flake on Monte Carlo noise.
        """
        eps = 2.0
        areas = []
        union_areas = []
        for count in (2, 4, 8):
            observers = ring_of_observers((0.0, 0.0), count, eps * 0.8)
            report = intersection_attack_report(
                observers, eps, DOMAIN, random.Random(42), samples=60000)
            areas.append(report.kumar_posterior_area)
            union_areas.append(report.permuted_posterior_area)
        assert areas[0] >= areas[1] >= areas[2] > 0
        assert areas[0] > areas[2]
        import math
        single_disk = math.pi * eps * eps
        assert all(area >= single_disk * 0.8 for area in union_areas)

    def test_localization_ratios(self):
        observers = ring_of_observers((0.0, 0.0), 3, 1.5)
        report = intersection_attack_report(observers, 2.0, DOMAIN,
                                            random.Random(3), samples=20000)
        assert 0.0 < report.kumar_localization < 1.0
        assert report.kumar_localization <= report.permuted_localization
        assert report.observer_points == 3
