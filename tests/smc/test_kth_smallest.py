"""Tests for secure k-th order statistic selection (Section 5)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.kth_smallest import (
    SelectionError,
    kth_smallest_quickselect,
    kth_smallest_scan,
)
from repro.smc.secret_sharing import SharedValues, share_additively
from repro.smc.session import SmcConfig, SmcSession


def _setup(values, *, backend="oracle", seed=0, mask_sigma=12):
    """Build a session plus shares of ``values``."""
    alice, bob = make_party_pair(Channel(), seed, seed + 1)
    session = SmcSession(alice, bob,
                         SmcConfig(comparison=backend, key_seed=60,
                                   mask_sigma=mask_sigma,
                                   paillier_bits=128, rsa_bits=256))
    value_bound = max(values) + 1
    mask_bound = session.config.mask_bound(value_bound)
    rng = random.Random(seed + 999)
    pairs = [share_additively(v, rng, mask_bound) for v in values]
    shares = SharedValues(
        u_values=tuple(p[0] for p in pairs),
        v_values=tuple(p[1] for p in pairs),
        value_bound=value_bound,
        mask_bound=mask_bound,
    )
    return session, shares


class TestScanSelection:
    @pytest.mark.parametrize("values,k", [
        ([5], 1), ([5, 3], 1), ([5, 3], 2), ([9, 1, 5, 7, 3], 3),
        ([2, 2, 2], 2), ([10, 20, 10, 20], 3),
    ])
    def test_cases(self, values, k):
        session, shares = _setup(values, seed=k)
        index = kth_smallest_scan(session.comparison_backend, session.alice,
                                  session.bob, shares, k)
        assert values[index] == sorted(values)[k - 1]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=25),
           st.data())
    def test_random_property(self, values, data):
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        session, shares = _setup(values, seed=k)
        index = kth_smallest_scan(session.comparison_backend, session.alice,
                                  session.bob, shares, k)
        assert values[index] == sorted(values)[k - 1]

    def test_rank_validation(self):
        session, shares = _setup([1, 2, 3])
        with pytest.raises(SelectionError, match="rank"):
            kth_smallest_scan(session.comparison_backend, session.alice,
                              session.bob, shares, 0)
        with pytest.raises(SelectionError, match="rank"):
            kth_smallest_scan(session.comparison_backend, session.alice,
                              session.bob, shares, 4)

    def test_comparison_count_is_k_scaled(self):
        values = list(range(20))
        session, shares = _setup(values)
        backend = session.comparison_backend
        kth_smallest_scan(backend, session.alice, session.bob, shares, 1)
        after_k1 = backend.invocations
        kth_smallest_scan(backend, session.alice, session.bob, shares, 5)
        after_k5 = backend.invocations - after_k1
        assert after_k1 == 19        # n - 1 comparisons for the minimum
        assert after_k5 == 19 + 18 + 17 + 16 + 15


class TestQuickselect:
    @pytest.mark.parametrize("values,k", [
        ([5], 1), ([5, 3], 1), ([9, 1, 5, 7, 3], 3), ([2, 2, 2], 2),
    ])
    def test_cases(self, values, k):
        session, shares = _setup(values, seed=k + 50)
        index = kth_smallest_quickselect(
            session.comparison_backend, session.alice, session.bob,
            shares, k)
        assert values[index] == sorted(values)[k - 1]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=25),
           st.data())
    def test_random_property(self, values, data):
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        session, shares = _setup(values, seed=k + 7)
        index = kth_smallest_quickselect(
            session.comparison_backend, session.alice, session.bob,
            shares, k)
        assert values[index] == sorted(values)[k - 1]

    def test_rank_validation(self):
        session, shares = _setup([1])
        with pytest.raises(SelectionError, match="rank"):
            kth_smallest_quickselect(session.comparison_backend,
                                     session.alice, session.bob, shares, 2)

    def test_expected_linear_comparisons(self):
        """For small k, quickselect should use far fewer comparisons than
        a full sort would; scan with k=n/2 should use more."""
        values = list(range(64))
        session, shares = _setup(values, seed=13)
        backend = session.comparison_backend
        kth_smallest_quickselect(backend, session.alice, session.bob,
                                 shares, 32)
        quickselect_count = backend.invocations
        before = backend.invocations
        kth_smallest_scan(backend, session.alice, session.bob, shares, 32)
        scan_count = backend.invocations - before
        assert quickselect_count < scan_count


class TestWithCryptoBackend:
    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=2, max_size=6),
           st.data())
    def test_bitwise_backend_agrees(self, values, data):
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        session, shares = _setup(values, backend="bitwise", seed=k,
                                 mask_sigma=8)
        index = kth_smallest_scan(session.comparison_backend, session.alice,
                                  session.bob, shares, k)
        assert values[index] == sorted(values)[k - 1]
