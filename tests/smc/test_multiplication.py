"""Tests for the Multiplication Protocol (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.multiplication import MultiplicationError, secure_multiplication

KEYS = cached_paillier_keypair(256, 820)


def _fresh_parties(seed: int = 0):
    channel = Channel()
    alice, bob = make_party_pair(channel, seed, seed + 1)
    return channel, alice, bob


class TestCorrectness:
    @pytest.mark.parametrize("x,y,mask", [
        (0, 0, 0), (1, 1, 0), (7, 9, 100), (-7, 9, 100), (7, -9, -100),
        (-7, -9, 0), (12345, 67890, -999999), (1, 0, 5), (0, 1, -5),
    ])
    def test_cases(self, x, y, mask):
        __, alice, bob = _fresh_parties(abs(x) + abs(y))
        assert secure_multiplication(alice, x, bob, y, mask, KEYS) \
            == x * y + mask

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=-(2**40), max_value=2**40),
           st.integers(min_value=-(2**40), max_value=2**40),
           st.integers(min_value=-(2**40), max_value=2**40))
    def test_random_property(self, x, y, mask):
        __, alice, bob = _fresh_parties(1)
        assert secure_multiplication(alice, x, bob, y, mask, KEYS) \
            == x * y + mask

    def test_faithful_shared_r_mode(self):
        __, alice, bob = _fresh_parties(5)
        result = secure_multiplication(alice, 11, bob, 13, 7, KEYS,
                                       faithful_shared_r=True)
        assert result == 11 * 13 + 7


class TestOverflowProtection:
    def test_overflow_raises(self):
        __, alice, bob = _fresh_parties()
        huge = 1 << 130
        with pytest.raises(MultiplicationError, match="capacity"):
            secure_multiplication(alice, huge, bob, huge, 0, KEYS)


class TestWireBehaviour:
    def test_message_sequence_default(self):
        channel, alice, bob = _fresh_parties()
        secure_multiplication(alice, 3, bob, 4, 5, KEYS, label="m")
        labels = [e.label for e in channel.transcript.entries]
        assert labels == ["m/encrypted_x", "m/masked_product"]

    def test_message_sequence_faithful(self):
        channel, alice, bob = _fresh_parties()
        secure_multiplication(alice, 3, bob, 4, 5, KEYS, label="m",
                              faithful_shared_r=True)
        labels = [e.label for e in channel.transcript.entries]
        assert labels == ["m/encrypted_x", "m/shared_r", "m/masked_product"]

    def test_masker_sees_only_ciphertext(self):
        """The value on the wire decrypts to x but is not x itself."""
        channel, alice, bob = _fresh_parties()
        secure_multiplication(alice, 42, bob, 2, 0, KEYS, label="m")
        wire_value = channel.transcript.with_label("m/encrypted_x")[0].value
        assert wire_value != 42
        assert KEYS.private_key.decrypt_raw(wire_value) == 42

    def test_faithful_r_exposes_g_to_the_x(self):
        """The documented defect of Algorithm 2's shared r: with r on the
        wire the masker can strip r^n and brute-force a small domain."""
        channel, alice, bob = _fresh_parties()
        secure_multiplication(alice, 42, bob, 2, 0, KEYS, label="m",
                              faithful_shared_r=True)
        cipher = channel.transcript.with_label("m/encrypted_x")[0].value
        shared_r = channel.transcript.with_label("m/shared_r")[0].value
        public = KEYS.public_key
        from repro.crypto.integer_math import mod_inverse
        g_to_x = (cipher * mod_inverse(
            pow(shared_r, public.n, public.n_squared),
            public.n_squared)) % public.n_squared
        # Brute force the small domain, as a semi-honest masker could.
        recovered = next(x for x in range(100)
                         if public.raw_encrypt_constant(x) == g_to_x)
        assert recovered == 42

    def test_fresh_r_resists_the_same_attack(self):
        channel, alice, bob = _fresh_parties()
        secure_multiplication(alice, 42, bob, 2, 0, KEYS, label="m")
        cipher = channel.transcript.with_label("m/encrypted_x")[0].value
        public = KEYS.public_key
        assert all(public.raw_encrypt_constant(x) != cipher
                   for x in range(100))

    def test_runs_are_probabilistic(self):
        channel, alice, bob = _fresh_parties(9)
        secure_multiplication(alice, 3, bob, 4, 5, KEYS, label="a")
        secure_multiplication(alice, 3, bob, 4, 5, KEYS, label="b")
        first = channel.transcript.with_label("a/encrypted_x")[0].value
        second = channel.transcript.with_label("b/encrypted_x")[0].value
        assert first != second
