"""Cross-backend tests of the unified ``a <= b`` interface.

Every backend must implement the identical functionality; these tests
are parametrized over all three so any semantic drift between YMPP,
DGK-style, and the oracle fails loudly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.comparison import ComparisonError, make_comparison_backend
from repro.smc.session import SmcConfig, SmcSession

BACKENDS = ("oracle", "bitwise", "ympp")


def _session(backend: str, seed: int = 0) -> SmcSession:
    alice, bob = make_party_pair(Channel(), seed, seed + 1)
    return SmcSession(alice, bob,
                      SmcConfig(comparison=backend, key_seed=50 + seed % 7))


class TestAllBackendsAgree:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("a,b", [
        (0, 0), (0, 1), (1, 0), (5, 5), (-10, 10), (10, -10),
        (-7, -7), (-8, -7), (-7, -8), (100, 100), (99, 100),
    ])
    def test_boundary_pairs(self, backend, a, b):
        session = _session(backend, seed=abs(a * 13 + b))
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-10, hi=100, reveal_to="both")
        assert out.result == (a <= b)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("reveal", ["a", "b", "both"])
    def test_reveal_targets(self, backend, reveal):
        session = _session(backend, seed=3)
        out = session.compare_leq(session.alice, 4, session.bob, 9,
                                  lo=0, hi=16, reveal_to=reveal)
        assert out.result is True
        if reveal == "both":
            assert set(out.revealed_to) == {"alice", "bob"}
        else:
            expected = "alice" if reveal == "a" else "bob"
            assert out.revealed_to == (expected,)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50))
    def test_bitwise_random(self, a, b):
        session = _session("bitwise", seed=1)
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-50, hi=50, reveal_to="a")
        assert out.result == (a <= b)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=-20, max_value=20),
           st.integers(min_value=-20, max_value=20))
    def test_ympp_random(self, a, b):
        session = _session("ympp", seed=2)
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-20, hi=20, reveal_to="b")
        assert out.result == (a <= b)


class TestKeyOwnership:
    """Key material must follow party identity, not argument roles.

    The seed-era backends bound keys to the ``a``/``b`` slots, so
    passing ``a_party=bob`` ran the protocol under alice's keypair.
    """

    def test_bitwise_key_holder_uses_own_keypair(self, monkeypatch):
        import repro.smc.comparison as comparison
        captured = {}
        real = comparison.dgk_greater_than

        def spy(key_holder, x, other, y, bits, keypair, **kwargs):
            captured[key_holder.name] = keypair
            return real(key_holder, x, other, y, bits, keypair, **kwargs)

        monkeypatch.setattr(comparison, "dgk_greater_than", spy)
        session = _session("bitwise", seed=6)
        # a_party=bob, reveal "a": bob is the DGK key holder and must
        # run under *bob's* keypair.
        out = session.compare_leq(session.bob, 3, session.alice, 5,
                                  lo=0, hi=10, reveal_to="a")
        assert out.result is True
        assert captured["bob"] is session.paillier_keys("bob")
        # Symmetric check: reveal "b" makes alice the key holder.
        captured.clear()
        session.compare_leq(session.bob, 3, session.alice, 5,
                            lo=0, hi=10, reveal_to="b")
        assert captured["alice"] is session.paillier_keys("alice")

    def test_ympp_i_holder_uses_own_keypair(self, monkeypatch):
        import repro.smc.comparison as comparison
        captured = {}
        real = comparison.ympp_less_than

        def spy(i_party, i, j_party, j, n0, keypair, **kwargs):
            captured[i_party.name] = keypair
            return real(i_party, i, j_party, j, n0, keypair, **kwargs)

        monkeypatch.setattr(comparison, "ympp_less_than", spy)
        session = _session("ympp", seed=7)
        # a_party=bob, reveal "a": bob plays Algorithm 1's j-holder (he
        # learns), alice is the i-holder and must own the RSA keys --
        # the seed-era code would have used bob's here.
        session.compare_leq(session.bob, 2, session.alice, 4,
                            lo=0, hi=8, reveal_to="a")
        assert captured["alice"] is session._contexts["alice"].rsa

    def test_unknown_party_rejected(self):
        from repro.crypto.keycache import cached_paillier_keypair
        from repro.smc.comparison import BitwiseComparison
        backend = BitwiseComparison(
            {"carol": cached_paillier_keypair(256, 60)})
        session = _session("oracle", seed=8)
        with pytest.raises(ComparisonError, match="no Paillier key"):
            backend.leq(session.alice, 1, session.bob, 2, lo=0, hi=4,
                        reveal_to="a")


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ComparisonError, match="unknown"):
            make_comparison_backend("quantum")

    def test_missing_keys(self):
        with pytest.raises(ComparisonError, match="requires"):
            make_comparison_backend("ympp")
        with pytest.raises(ComparisonError, match="requires"):
            make_comparison_backend("bitwise")

    def test_out_of_interval(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="outside"):
            session.compare_leq(session.alice, 11, session.bob, 5,
                                lo=0, hi=10)

    def test_empty_interval(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="empty"):
            session.compare_leq(session.alice, 1, session.bob, 1,
                                lo=5, hi=4)

    def test_bad_reveal_target(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="reveal_to"):
            session.compare_leq(session.alice, 1, session.bob, 2,
                                lo=0, hi=3, reveal_to="everyone")


class TestInvocationCounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_increments(self, backend):
        session = _session(backend, seed=4)
        backend_obj = session.comparison_backend
        assert backend_obj.invocations == 0
        for round_number in range(3):
            session.compare_leq(session.alice, round_number, session.bob, 2,
                                lo=0, hi=4, reveal_to="a")
        assert backend_obj.invocations == 3


class TestCommunication:
    def test_oracle_sends_nothing(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob,
                             SmcConfig(comparison="oracle", key_seed=51))
        baseline = channel.stats.total_bytes  # key exchange only
        session.compare_leq(alice, 1, bob, 2, lo=0, hi=3)
        assert channel.stats.total_bytes == baseline

    def test_crypto_backends_send_bytes(self):
        for backend in ("bitwise", "ympp"):
            channel = Channel()
            alice, bob = make_party_pair(channel, 1, 2)
            session = SmcSession(alice, bob,
                                 SmcConfig(comparison=backend, key_seed=52))
            baseline = channel.stats.total_bytes
            session.compare_leq(alice, 1, bob, 2, lo=0, hi=3)
            assert channel.stats.total_bytes > baseline
