"""Cross-backend tests of the unified ``a <= b`` interface.

Every backend must implement the identical functionality; these tests
are parametrized over all three so any semantic drift between YMPP,
DGK-style, and the oracle fails loudly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.comparison import ComparisonError, make_comparison_backend
from repro.smc.session import SmcConfig, SmcSession

BACKENDS = ("oracle", "bitwise", "ympp")


def _session(backend: str, seed: int = 0) -> SmcSession:
    alice, bob = make_party_pair(Channel(), seed, seed + 1)
    return SmcSession(alice, bob,
                      SmcConfig(comparison=backend, key_seed=50 + seed % 7))


class TestAllBackendsAgree:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("a,b", [
        (0, 0), (0, 1), (1, 0), (5, 5), (-10, 10), (10, -10),
        (-7, -7), (-8, -7), (-7, -8), (100, 100), (99, 100),
    ])
    def test_boundary_pairs(self, backend, a, b):
        session = _session(backend, seed=abs(a * 13 + b))
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-10, hi=100, reveal_to="both")
        assert out.result == (a <= b)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("reveal", ["a", "b", "both"])
    def test_reveal_targets(self, backend, reveal):
        session = _session(backend, seed=3)
        out = session.compare_leq(session.alice, 4, session.bob, 9,
                                  lo=0, hi=16, reveal_to=reveal)
        assert out.result is True
        if reveal == "both":
            assert set(out.revealed_to) == {"alice", "bob"}
        else:
            expected = "alice" if reveal == "a" else "bob"
            assert out.revealed_to == (expected,)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50))
    def test_bitwise_random(self, a, b):
        session = _session("bitwise", seed=1)
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-50, hi=50, reveal_to="a")
        assert out.result == (a <= b)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=-20, max_value=20),
           st.integers(min_value=-20, max_value=20))
    def test_ympp_random(self, a, b):
        session = _session("ympp", seed=2)
        out = session.compare_leq(session.alice, a, session.bob, b,
                                  lo=-20, hi=20, reveal_to="b")
        assert out.result == (a <= b)


class TestBatchApi:
    """``leq_batch``: same semantics as one ``leq`` per pair."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("reveal", ["a", "b", "both"])
    def test_matches_per_item_loop(self, backend, reveal):
        a_values = [0, 3, -7, 12, 12, -10]
        b_values = [0, 3, 12, -7, 12, 12]
        batch_session = _session(backend, seed=11)
        outcomes = batch_session.compare_leq_batch(
            batch_session.alice, a_values, batch_session.bob, b_values,
            lo=-10, hi=12, reveal_to=reveal)
        loop_session = _session(backend, seed=11)
        loop = [loop_session.compare_leq(
            loop_session.alice, a, loop_session.bob, b,
            lo=-10, hi=12, reveal_to=reveal)
            for a, b in zip(a_values, b_values)]
        assert [o.result for o in outcomes] == [o.result for o in loop] \
            == [a <= b for a, b in zip(a_values, b_values)]
        assert [o.revealed_to for o in outcomes] == \
            [o.revealed_to for o in loop]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("reveal", ["a", "b", "both"])
    def test_amortized_constant_key_side(self, backend, reveal):
        """The region-query shape: every item compared to one declared-
        constant value on the learning party's side."""
        session = _session(backend, seed=12)
        values = [-5, 0, 4, 5, 6, 20]
        if reveal in ("a", "both"):
            a_values, b_values = [5] * len(values), values
            expected = [5 <= v for v in values]
        else:
            a_values, b_values = values, [5] * len(values)
            expected = [v <= 5 for v in values]
        outcomes = session.compare_leq_batch(
            session.alice, a_values, session.bob, b_values,
            lo=-5, hi=20, reveal_to=reveal, amortize=True)
        assert [o.result for o in outcomes] == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_invocations_count_pairs_not_round_trips(self, backend):
        session = _session(backend, seed=13)
        session.compare_leq_batch(session.alice, [1, 2, 3], session.bob,
                                  [2, 2, 2], lo=0, hi=4, reveal_to="b")
        assert session.comparison_backend.invocations == 3

    def test_empty_batch(self):
        session = _session("bitwise", seed=14)
        assert session.compare_leq_batch(session.alice, [], session.bob, [],
                                         lo=0, hi=4) == []
        assert session.comparison_backend.invocations == 0

    def test_per_item_interval_checks(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="a=11 outside"):
            session.compare_leq_batch(session.alice, [1, 11], session.bob,
                                      [2, 2], lo=0, hi=10)
        with pytest.raises(ComparisonError, match="b=-1 outside"):
            session.compare_leq_batch(session.alice, [1, 2], session.bob,
                                      [2, -1], lo=0, hi=10)

    def test_length_mismatch(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="a-values"):
            session.compare_leq_batch(session.alice, [1, 2], session.bob,
                                      [2], lo=0, hi=10)

    def test_bad_reveal_target(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="reveal_to"):
            session.compare_leq_batch(session.alice, [1], session.bob, [2],
                                      lo=0, hi=3, reveal_to="everyone")

    def test_amortize_declaration_controls_bit_encryption_sharing(self):
        """The amortization is declaration-driven: amortize=True shares
        one x_bits message for the whole batch; without the declaration
        every pair re-encrypts -- even when the values *happen* to be
        equal, because inferring amortization from private-value
        equality would leak collisions through the message pattern."""
        def x_bits_messages(b_values, amortize):
            channel = Channel()
            alice, bob = make_party_pair(channel, 1, 2)
            session = SmcSession(alice, bob, SmcConfig(
                comparison="bitwise", key_seed=53))
            session.compare_leq_batch(
                alice, [1] * len(b_values), bob, b_values,
                lo=0, hi=10, reveal_to="b", amortize=amortize, label="t")
            return sum(1 for e in channel.transcript.entries
                       if e.label.endswith("/x_bits"))
        assert x_bits_messages([5, 5, 5, 5], amortize=True) == 1
        # Undeclared: per-pair messages, independent of value equality.
        assert x_bits_messages([5, 5, 5, 5], amortize=False) == 4
        assert x_bits_messages([5, 6, 7], amortize=False) == 3

    def test_amortize_with_varying_key_side_rejected(self):
        """A false constant-side declaration fails loudly before any
        message is sent, for every backend."""
        for backend in BACKENDS:
            channel = Channel()
            alice, bob = make_party_pair(channel, 1, 2)
            session = SmcSession(alice, bob, SmcConfig(
                comparison=backend, key_seed=54))
            baseline = len(channel.transcript.entries)
            with pytest.raises(ComparisonError, match="amortize"):
                session.compare_leq_batch(alice, [1, 2], bob, [5, 6],
                                          lo=0, hi=10, reveal_to="b",
                                          amortize=True)
            assert len(channel.transcript.entries) == baseline
        # The a side is the key side under reveal "a"; varying b is fine.
        session = _session("bitwise", seed=16)
        outcomes = session.compare_leq_batch(
            session.alice, [4, 4], session.bob, [3, 5],
            lo=0, hi=10, reveal_to="a", amortize=True)
        assert [o.result for o in outcomes] == [False, True]

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=-30, max_value=30), min_size=1,
                    max_size=8),
           st.integers(min_value=-30, max_value=30))
    def test_bitwise_random_batches_against_threshold(self, a_values, b):
        session = _session("bitwise", seed=15)
        outcomes = session.compare_leq_batch(
            session.alice, a_values, session.bob, [b] * len(a_values),
            lo=-30, hi=30, reveal_to="b", amortize=True)
        assert [o.result for o in outcomes] == [a <= b for a in a_values]


class TestWidthBoundary:
    """The backend width choice ``bits = max(1, (domain + 1).bit_length())``
    must cover every shifted input *and* the ``b + 1`` strict-to-loose
    carry -- including intervals where ``b + 1`` needs one bit more than
    ``domain`` itself (``domain = 2^k - 1``)."""

    # Interval sizes around bit-width edges: domain = hi - lo.
    #   0 -> degenerate single-value interval (bits floor of 1)
    #   1 -> b + 1 can reach 2, needing the extra bit
    #   2^k - 1 -> b + 1 carries into bit k + 1
    #   2^k -> b + 1 fits the existing width
    DOMAINS = (0, 1, 3, 4, 7, 8, 255, 256)

    @pytest.mark.parametrize("domain", DOMAINS)
    @pytest.mark.parametrize("reveal", ["a", "b", "both"])
    def test_corner_pairs_per_point(self, domain, reveal):
        lo = -3  # asymmetric shift so lo != 0 is exercised too
        hi = lo + domain
        session = _session("bitwise", seed=domain % 5)
        for a in (lo, hi):
            for b in (lo, hi):
                out = session.compare_leq(session.alice, a, session.bob, b,
                                          lo=lo, hi=hi, reveal_to=reveal)
                assert out.result == (a <= b), (domain, a, b)

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_corner_pairs_batch(self, domain):
        lo = -3
        hi = lo + domain
        pairs = [(a, b) for a in (lo, hi) for b in (lo, hi)]
        session = _session("bitwise", seed=domain % 5)
        outcomes = session.compare_leq_batch(
            session.alice, [a for a, _ in pairs],
            session.bob, [b for _, b in pairs],
            lo=lo, hi=hi, reveal_to="b")
        assert [o.result for o in outcomes] == [a <= b for a, b in pairs]

    def test_b_plus_one_carry_needs_extra_bit(self):
        """domain = 3: shifted b = 3 = 0b11, b + 1 = 0b100 -- the DGK
        key holder's value only fits because the width covers
        domain + 1.  a = b = hi is the exact carry case."""
        from repro.smc.comparison import BitwiseComparison
        assert max(1, (3 + 1).bit_length()) == 3  # not 2
        session = _session("bitwise", seed=1)
        assert isinstance(session.comparison_backend, BitwiseComparison)
        out = session.compare_leq(session.alice, 3, session.bob, 3,
                                  lo=0, hi=3, reveal_to="b")
        assert out.result is True
        outcomes = session.compare_leq_batch(
            session.alice, [3, 3], session.bob, [3, 2],
            lo=0, hi=3, reveal_to="b")
        assert [o.result for o in outcomes] == [True, False]


class TestKeyOwnership:
    """Key material must follow party identity, not argument roles.

    The seed-era backends bound keys to the ``a``/``b`` slots, so
    passing ``a_party=bob`` ran the protocol under alice's keypair.
    """

    def test_bitwise_key_holder_uses_own_keypair(self, monkeypatch):
        import repro.smc.comparison as comparison
        captured = {}
        real = comparison.dgk_greater_than

        def spy(key_holder, x, other, y, bits, keypair, **kwargs):
            captured[key_holder.name] = keypair
            return real(key_holder, x, other, y, bits, keypair, **kwargs)

        monkeypatch.setattr(comparison, "dgk_greater_than", spy)
        session = _session("bitwise", seed=6)
        # a_party=bob, reveal "a": bob is the DGK key holder and must
        # run under *bob's* keypair.
        out = session.compare_leq(session.bob, 3, session.alice, 5,
                                  lo=0, hi=10, reveal_to="a")
        assert out.result is True
        assert captured["bob"] is session.paillier_keys("bob")
        # Symmetric check: reveal "b" makes alice the key holder.
        captured.clear()
        session.compare_leq(session.bob, 3, session.alice, 5,
                            lo=0, hi=10, reveal_to="b")
        assert captured["alice"] is session.paillier_keys("alice")

    def test_ympp_i_holder_uses_own_keypair(self, monkeypatch):
        import repro.smc.comparison as comparison
        captured = {}
        real = comparison.ympp_less_than

        def spy(i_party, i, j_party, j, n0, keypair, **kwargs):
            captured[i_party.name] = keypair
            return real(i_party, i, j_party, j, n0, keypair, **kwargs)

        monkeypatch.setattr(comparison, "ympp_less_than", spy)
        session = _session("ympp", seed=7)
        # a_party=bob, reveal "a": bob plays Algorithm 1's j-holder (he
        # learns), alice is the i-holder and must own the RSA keys --
        # the seed-era code would have used bob's here.
        session.compare_leq(session.bob, 2, session.alice, 4,
                            lo=0, hi=8, reveal_to="a")
        assert captured["alice"] is session._contexts["alice"].rsa

    def test_unknown_party_rejected(self):
        from repro.crypto.keycache import cached_paillier_keypair
        from repro.smc.comparison import BitwiseComparison
        backend = BitwiseComparison(
            {"carol": cached_paillier_keypair(256, 60)})
        session = _session("oracle", seed=8)
        with pytest.raises(ComparisonError, match="no Paillier key"):
            backend.leq(session.alice, 1, session.bob, 2, lo=0, hi=4,
                        reveal_to="a")


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ComparisonError, match="unknown"):
            make_comparison_backend("quantum")

    def test_missing_keys(self):
        with pytest.raises(ComparisonError, match="requires"):
            make_comparison_backend("ympp")
        with pytest.raises(ComparisonError, match="requires"):
            make_comparison_backend("bitwise")

    def test_out_of_interval(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="outside"):
            session.compare_leq(session.alice, 11, session.bob, 5,
                                lo=0, hi=10)

    def test_empty_interval(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="empty"):
            session.compare_leq(session.alice, 1, session.bob, 1,
                                lo=5, hi=4)

    def test_bad_reveal_target(self):
        session = _session("oracle")
        with pytest.raises(ComparisonError, match="reveal_to"):
            session.compare_leq(session.alice, 1, session.bob, 2,
                                lo=0, hi=3, reveal_to="everyone")


class TestInvocationCounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_increments(self, backend):
        session = _session(backend, seed=4)
        backend_obj = session.comparison_backend
        assert backend_obj.invocations == 0
        for round_number in range(3):
            session.compare_leq(session.alice, round_number, session.bob, 2,
                                lo=0, hi=4, reveal_to="a")
        assert backend_obj.invocations == 3


class TestCommunication:
    def test_oracle_sends_nothing(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        session = SmcSession(alice, bob,
                             SmcConfig(comparison="oracle", key_seed=51))
        baseline = channel.stats.total_bytes  # key exchange only
        session.compare_leq(alice, 1, bob, 2, lo=0, hi=3)
        assert channel.stats.total_bytes == baseline

    def test_crypto_backends_send_bytes(self):
        for backend in ("bitwise", "ympp"):
            channel = Channel()
            alice, bob = make_party_pair(channel, 1, 2)
            session = SmcSession(alice, bob,
                                 SmcConfig(comparison=backend, key_seed=52))
            baseline = channel.stats.total_bytes
            session.compare_leq(alice, 1, bob, 2, lo=0, hi=3)
            assert channel.stats.total_bytes > baseline
