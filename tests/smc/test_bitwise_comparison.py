"""Tests for the DGK-style bitwise comparison."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.bitwise_comparison import (
    BitwiseComparisonError,
    dgk_greater_than,
    dgk_greater_than_batch,
)

KEYS = cached_paillier_keypair(256, 810)


def _fresh_parties(seed: int = 0):
    return make_party_pair(Channel(), alice_seed=seed, bob_seed=seed + 1)


class TestCorrectness:
    @pytest.mark.parametrize("x,y,bits", [
        (0, 0, 1), (1, 0, 1), (0, 1, 1),
        (5, 3, 4), (3, 5, 4), (7, 7, 4),
        (15, 0, 4), (0, 15, 4), (255, 254, 8), (254, 255, 8),
        (2**30, 2**30 - 1, 32),
    ])
    def test_boundary_cases(self, x, y, bits):
        alice, bob = _fresh_parties(x * 31 + y)
        assert dgk_greater_than(alice, x, bob, y, bits, KEYS) == (x > y)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=0, max_value=100))
    def test_random_pairs(self, x, y, seed):
        alice, bob = _fresh_parties(seed)
        assert dgk_greater_than(alice, x, bob, y, 20, KEYS) == (x > y)


class TestValidation:
    def test_x_out_of_range(self):
        alice, bob = _fresh_parties()
        with pytest.raises(BitwiseComparisonError, match="x=8"):
            dgk_greater_than(alice, 8, bob, 1, 3, KEYS)

    def test_y_out_of_range(self):
        alice, bob = _fresh_parties()
        with pytest.raises(BitwiseComparisonError, match="y=-1"):
            dgk_greater_than(alice, 1, bob, -1, 3, KEYS)

    def test_zero_bits(self):
        alice, bob = _fresh_parties()
        with pytest.raises(BitwiseComparisonError, match="bits"):
            dgk_greater_than(alice, 0, bob, 0, 0, KEYS)


class TestCommunicationShape:
    def test_two_messages_per_run(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        dgk_greater_than(alice, 9, bob, 5, 8, KEYS, label="t")
        labels = [e.label for e in channel.transcript.entries]
        assert labels == ["t/x_bits", "t/witnesses"]

    def test_batch_sizes_equal_bit_width(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        bits = 12
        dgk_greater_than(alice, 9, bob, 5, bits, KEYS, label="t")
        for entry in channel.transcript.entries:
            assert len(entry.value) == bits

    def test_cost_logarithmic_vs_ympp(self):
        # The whole point of the substitution: 2*bits ciphertexts instead
        # of n0 numbers.  For a 2^20 domain the DGK transfer is far below
        # what YMPP's 2^20-number sequence would be.
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        dgk_greater_than(alice, 2**19, bob, 2**19 - 1, 20, KEYS)
        n_squared_bytes = (KEYS.public_key.n_squared.bit_length() + 7) // 8
        assert channel.stats.total_bytes < 3 * 20 * (n_squared_bytes + 8)


class TestBatch:
    """Amortized batches: one bit-encryption, per-point predicate bits."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.lists(st.integers(min_value=0, max_value=2**16 - 1),
                    min_size=0, max_size=8),
           st.integers(min_value=0, max_value=100))
    def test_matches_per_point_predicates(self, x, ys, seed):
        alice, bob = _fresh_parties(seed)
        assert dgk_greater_than_batch(alice, x, bob, ys, 16, KEYS) \
            == [x > y for y in ys]

    def test_empty_batch_sends_nothing(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        assert dgk_greater_than_batch(alice, 3, bob, [], 4, KEYS) == []
        assert channel.transcript.entries == []

    def test_one_round_trip_regardless_of_batch_size(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        dgk_greater_than_batch(alice, 9, bob, [5, 11, 9, 0], 8, KEYS,
                               label="t")
        labels = [e.label for e in channel.transcript.entries]
        assert labels == ["t/x_bits", "t/witnesses"]

    def test_witness_batches_per_point_shape(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        bits = 12
        dgk_greater_than_batch(alice, 9, bob, [5, 3000, 9], bits, KEYS,
                               label="t")
        x_bits = channel.transcript.with_label("t/x_bits")[0].value
        assert len(x_bits) == bits  # encrypted once, not per point
        batches = channel.transcript.with_label("t/witnesses")[0].value
        assert len(batches) == 3
        assert all(len(batch) == bits for batch in batches)

    def test_each_batch_obliviously_witnesses_its_predicate(self):
        # Per point: exactly one zero when x > y_i, none otherwise --
        # the shared bit-encryption must not cross-contaminate batches.
        channel = Channel()
        alice, bob = make_party_pair(channel, 3, 4)
        ys = [13, 700, 699, 701]
        dgk_greater_than_batch(alice, 700, bob, ys, 10, KEYS, label="t")
        batches = channel.transcript.with_label("t/witnesses")[0].value
        for y, batch in zip(ys, batches):
            zeros = sum(1 for value in batch
                        if KEYS.private_key.decrypt_raw(value) == 0)
            assert zeros == (1 if 700 > y else 0), y

    def test_validation_covers_every_item(self):
        alice, bob = _fresh_parties()
        with pytest.raises(BitwiseComparisonError, match="y=8"):
            dgk_greater_than_batch(alice, 1, bob, [0, 8], 3, KEYS)
        with pytest.raises(BitwiseComparisonError, match="x=8"):
            dgk_greater_than_batch(alice, 8, bob, [0], 3, KEYS)
        with pytest.raises(BitwiseComparisonError, match="bits"):
            dgk_greater_than_batch(alice, 0, bob, [0], 0, KEYS)


class TestObliviousness:
    def test_witness_batch_has_at_most_one_zero(self):
        # The decryptor must learn only the predicate: by construction at
        # most one witness decrypts to zero.
        channel = Channel()
        alice, bob = make_party_pair(channel, 3, 4)
        dgk_greater_than(alice, 700, bob, 13, 10, KEYS, label="t")
        witnesses = channel.transcript.with_label("t/witnesses")[0].value
        zeros = sum(1 for value in witnesses
                    if KEYS.private_key.decrypt_raw(value) == 0)
        assert zeros == 1  # x > y here, exactly one witness

    def test_no_zero_when_not_greater(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 5, 6)
        dgk_greater_than(alice, 13, bob, 700, 10, KEYS, label="t")
        witnesses = channel.transcript.with_label("t/witnesses")[0].value
        zeros = sum(1 for value in witnesses
                    if KEYS.private_key.decrypt_raw(value) == 0)
        assert zeros == 0
