"""Tests for Yao's Millionaires' Problem Protocol (Algorithm 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_rsa_keypair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.millionaires import (
    YmppError,
    _pairwise_separated,
    ympp_bit_parameter,
    ympp_less_than,
)

KEYS = cached_rsa_keypair(512, 801)


def _fresh_parties(seed: int = 0):
    return make_party_pair(Channel(), alice_seed=seed, bob_seed=seed + 1)


class TestCorrectness:
    @pytest.mark.parametrize("i,j", [
        (1, 2), (2, 1), (5, 5), (1, 1), (64, 64), (1, 64), (64, 1),
        (31, 32), (32, 31),
    ])
    def test_boundary_cases(self, i, j):
        alice, bob = _fresh_parties(i * 100 + j)
        assert ympp_less_than(alice, i, bob, j, 64, KEYS) == (i < j)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=1000))
    def test_random_pairs(self, i, j, seed):
        alice, bob = _fresh_parties(seed)
        assert ympp_less_than(alice, i, bob, j, 50, KEYS) == (i < j)

    def test_no_announce_same_result(self):
        alice, bob = _fresh_parties(7)
        assert ympp_less_than(alice, 3, bob, 9, 16, KEYS,
                              announce=False) is True


class TestDomainValidation:
    def test_i_out_of_domain(self):
        alice, bob = _fresh_parties()
        with pytest.raises(YmppError, match="i=0"):
            ympp_less_than(alice, 0, bob, 5, 10, KEYS)

    def test_j_out_of_domain(self):
        alice, bob = _fresh_parties()
        with pytest.raises(YmppError, match="j=11"):
            ympp_less_than(alice, 5, bob, 11, 10, KEYS)

    def test_modulus_too_small(self):
        small_keys = cached_rsa_keypair(64, 802)
        alice, bob = _fresh_parties()
        with pytest.raises(YmppError, match="too small"):
            ympp_less_than(alice, 1, bob, 2, 2 ** 40, small_keys)


class TestCommunicationShape:
    def test_message_sequence(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        ympp_less_than(alice, 4, bob, 9, 16, KEYS, label="test")
        labels = [e.label for e in channel.transcript.entries]
        assert labels == ["test/step2_shifted_cipher", "test/step5_prime",
                          "test/step5_sequence", "test/step7_conclusion"]

    def test_sequence_length_is_n0(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        n0 = 23
        ympp_less_than(alice, 4, bob, 9, n0, KEYS, label="test")
        sequence_entry = channel.transcript.with_label("test/step5_sequence")[0]
        assert len(sequence_entry.value) == n0

    def test_cost_linear_in_n0(self):
        def run_bytes(n0: int) -> int:
            channel = Channel()
            alice, bob = make_party_pair(channel, 1, 2)
            ympp_less_than(alice, 1, bob, 2, n0, KEYS)
            return channel.stats.total_bytes

        small, large = run_bytes(16), run_bytes(64)
        # 4x the domain should cost roughly 4x the sequence bytes;
        # allow generous slack for the fixed-size messages.
        assert 2.0 < large / small < 6.0


class TestBitParameter:
    def test_monotone_in_domain(self):
        assert ympp_bit_parameter(1000) >= ympp_bit_parameter(10)

    def test_minimum(self):
        assert ympp_bit_parameter(2) == 32


class TestSeparation:
    def test_accepts_separated(self):
        assert _pairwise_separated([2, 5, 9], 101)

    def test_rejects_adjacent(self):
        assert not _pairwise_separated([2, 3, 9], 101)

    def test_rejects_wraparound_collision(self):
        # 100 and 0 differ by 1 mod 101.
        assert not _pairwise_separated([0, 50, 100], 101)

    def test_single_value(self):
        assert _pairwise_separated([7], 101)
