"""Tests for the per-query permutation machinery."""

import random
from collections import Counter

from hypothesis import given, strategies as st

from repro.smc.permutation import PermutedView, random_permutation


class TestRandomPermutation:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=1000))
    def test_is_a_permutation(self, size, seed):
        order = random_permutation(size, random.Random(seed))
        assert sorted(order) == list(range(size))

    def test_uniformity_rough(self):
        """Each element should land in each position roughly uniformly --
        a chi-squared style sanity bound, not a strict test."""
        rng = random.Random(42)
        trials = 3000
        counts = Counter()
        for _ in range(trials):
            order = random_permutation(3, rng)
            counts[tuple(order)] += 1
        # 6 permutations of 3 elements: each expected trials/6 = 500.
        for permutation, count in counts.items():
            assert 350 < count < 650, (permutation, count)

    def test_fresh_per_call(self):
        rng = random.Random(1)
        orders = {tuple(random_permutation(10, rng)) for _ in range(20)}
        assert len(orders) > 1


class TestPermutedView:
    def test_fresh_view(self):
        view = PermutedView.fresh(5, random.Random(3))
        assert len(view) == 5
        assert sorted(view.order) == list(range(5))

    def test_true_index_lookup(self):
        view = PermutedView(order=(2, 0, 1))
        assert view.true_index(0) == 2
        assert view.true_index(1) == 0
        assert view.true_index(2) == 1

    def test_unlinkability_across_queries(self):
        """Two queries see different orders (with overwhelming probability
        for 20 elements) -- the property defeating the Figure 1 attack."""
        rng = random.Random(9)
        first = PermutedView.fresh(20, rng)
        second = PermutedView.fresh(20, rng)
        assert first.order != second.order
