"""Tests for additive secret shares."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.smc.secret_sharing import (
    SecretSharingError,
    SharedValues,
    share_additively,
)


class TestShareAdditively:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**12),
           st.integers(min_value=0, max_value=1000))
    def test_reconstruction(self, value, mask_bound, seed):
        u, v = share_additively(value, random.Random(seed), mask_bound)
        assert u - v == value
        assert 0 <= v < mask_bound

    def test_bad_mask_bound(self):
        with pytest.raises(SecretSharingError, match="mask_bound"):
            share_additively(5, random.Random(0), 0)

    def test_mask_varies(self):
        rng = random.Random(1)
        masks = {share_additively(7, rng, 10**9)[1] for _ in range(10)}
        assert len(masks) > 1


class TestSharedValues:
    def _shares(self, values, mask_bound=1 << 20, seed=0):
        rng = random.Random(seed)
        pairs = [share_additively(v, rng, mask_bound) for v in values]
        return SharedValues(
            u_values=tuple(p[0] for p in pairs),
            v_values=tuple(p[1] for p in pairs),
            value_bound=max(values) if values else 1,
            mask_bound=mask_bound,
        )

    def test_reconstruct(self):
        values = [5, 100, 0, 42]
        shares = self._shares(values)
        assert [shares.reconstruct(i) for i in range(4)] == values

    def test_length(self):
        assert len(self._shares([1, 2, 3])) == 3

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SecretSharingError, match="length"):
            SharedValues(u_values=(1, 2), v_values=(1,),
                         value_bound=10, mask_bound=10)

    def test_difference_interval_contains_all_differences(self):
        shares = self._shares([3, 500, 77, 0])
        lo, hi = shares.difference_interval()
        for i in range(len(shares)):
            for j in range(len(shares)):
                assert lo <= shares.u_values[i] - shares.u_values[j] <= hi
                assert lo <= shares.v_values[i] - shares.v_values[j] <= hi

    def test_threshold_interval_contains_operands(self):
        shares = self._shares([3, 500, 77])
        threshold = 250
        lo, hi = shares.threshold_interval(threshold)
        for i in range(len(shares)):
            assert lo <= shares.u_values[i] - threshold <= hi
            assert lo <= shares.v_values[i] <= hi

    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=20),
           st.integers(min_value=0, max_value=100))
    def test_interval_property(self, values, seed):
        shares = self._shares(values, seed=seed)
        lo, hi = shares.difference_interval()
        diffs = [shares.u_values[i] - shares.u_values[j]
                 for i in range(len(values)) for j in range(len(values))]
        diffs += [shares.v_values[i] - shares.v_values[j]
                  for i in range(len(values)) for j in range(len(values))]
        assert all(lo <= d <= hi for d in diffs)
