"""Tests for the batched masked scalar-product protocols."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keycache import cached_paillier_keypair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.scalar_product import (
    ScalarProductError,
    secure_masked_dot_terms,
    secure_scalar_products,
)

KEYS = cached_paillier_keypair(256, 830)


def _fresh_parties(seed: int = 0):
    channel = Channel()
    alice, bob = make_party_pair(channel, seed, seed + 1)
    return channel, alice, bob


class TestMaskedDotTerms:
    def test_basic(self):
        __, alice, bob = _fresh_parties()
        terms = secure_masked_dot_terms(alice, [2, 3, 4], bob, [5, 6, 7],
                                        [10, -10, 0], KEYS)
        assert terms == [2 * 5 + 10, 3 * 6 - 10, 4 * 7 + 0]

    def test_zero_sum_masks_reveal_dot_product(self):
        """The HDP construction: masks summing to zero make the received
        terms sum to the exact dot product."""
        __, alice, bob = _fresh_parties()
        masks = [17, -20, 3]
        terms = secure_masked_dot_terms(alice, [1, 2, 3], bob, [4, 5, 6],
                                        masks, KEYS)
        assert sum(terms) == 1 * 4 + 2 * 5 + 3 * 6

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-10**6, max_value=10**6)),
        min_size=1, max_size=6))
    def test_random_property(self, rows):
        __, alice, bob = _fresh_parties(len(rows))
        xs = [row[0] for row in rows]
        ys = [row[1] for row in rows]
        masks = [row[2] for row in rows]
        terms = secure_masked_dot_terms(alice, xs, bob, ys, masks, KEYS)
        assert terms == [x * y + m for x, y, m in rows]

    def test_length_mismatch(self):
        __, alice, bob = _fresh_parties()
        with pytest.raises(ScalarProductError, match="length mismatch"):
            secure_masked_dot_terms(alice, [1, 2], bob, [1], [0, 0], KEYS)

    def test_two_messages_total(self):
        channel, alice, bob = _fresh_parties()
        secure_masked_dot_terms(alice, [1] * 8, bob, [2] * 8, [0] * 8, KEYS)
        assert channel.stats.total_messages == 2


class TestScalarProducts:
    def test_basic(self):
        __, alice, bob = _fresh_parties()
        alpha = [30, -2, -4, 1]
        betas = [[1, 3, 5, 34], [1, 0, 0, 0], [1, -1, -1, 2]]
        masks = [55, -7, 0]
        results = secure_scalar_products(alice, alpha, bob, betas, masks,
                                         KEYS)
        expected = [sum(a * b for a, b in zip(alpha, beta)) + mask
                    for beta, mask in zip(betas, masks)]
        assert results == expected

    def test_distance_sharing_shape(self):
        """The Section 5 encoding: <alpha, beta_i> equals the squared
        distance between A and B_i."""
        __, alice, bob = _fresh_parties()
        point_a = (3, -4)
        points_b = [(0, 0), (3, -4), (10, 2)]
        alpha = [sum(c * c for c in point_a), -2 * point_a[0],
                 -2 * point_a[1], 1]
        betas = [[1, b[0], b[1], b[0] ** 2 + b[1] ** 2] for b in points_b]
        masks = [100, 200, 300]
        results = secure_scalar_products(alice, alpha, bob, betas, masks,
                                         KEYS)
        for result, point_b, mask in zip(results, points_b, masks):
            true_distance = sum((a - b) ** 2 for a, b in zip(point_a, point_b))
            assert result - mask == true_distance

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10**6))
    def test_random_property(self, width, count, seed):
        import random
        rng = random.Random(seed)
        __, alice, bob = _fresh_parties(seed % 97)
        alpha = [rng.randrange(-100, 101) for _ in range(width)]
        betas = [[rng.randrange(-100, 101) for _ in range(width)]
                 for _ in range(count)]
        masks = [rng.randrange(-1000, 1001) for _ in range(count)]
        results = secure_scalar_products(alice, alpha, bob, betas, masks,
                                         KEYS)
        assert results == [
            sum(a * b for a, b in zip(alpha, beta)) + mask
            for beta, mask in zip(betas, masks)]

    def test_mask_count_mismatch(self):
        __, alice, bob = _fresh_parties()
        with pytest.raises(ScalarProductError, match="masks"):
            secure_scalar_products(alice, [1], bob, [[2]], [0, 0], KEYS)

    def test_beta_width_mismatch(self):
        __, alice, bob = _fresh_parties()
        with pytest.raises(ScalarProductError, match="length"):
            secure_scalar_products(alice, [1, 2], bob, [[3]], [0], KEYS)

    def test_alpha_sent_once(self):
        """The batching advantage: alpha ciphertexts go out once no matter
        how many betas are evaluated."""
        channel, alice, bob = _fresh_parties()
        secure_scalar_products(alice, [1, 2, 3], bob,
                               [[1, 1, 1]] * 10, [0] * 10, KEYS, label="sp")
        alpha_entries = channel.transcript.with_label("sp/encrypted_alpha")
        assert len(alpha_entries) == 1
        assert len(alpha_entries[0].value) == 3
        reply = channel.transcript.with_label("sp/masked_products")[0]
        assert len(reply.value) == 10
