"""Tests for the SMC session layer (keys, exchange, dispatch)."""

import pytest

from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SessionError, SmcConfig, SmcSession


class TestSessionSetup:
    def test_key_exchange_is_counted(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        SmcSession(alice, bob, SmcConfig(key_seed=70))
        assert channel.stats.messages_for_phase("keys/paillier_pub") == 2
        assert channel.stats.total_bytes > 0

    def test_rsa_keys_only_for_ympp(self):
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        SmcSession(alice, bob, SmcConfig(comparison="bitwise", key_seed=70))
        assert channel.stats.messages_for_phase("keys/rsa_pub") == 0

        channel2 = Channel()
        alice2, bob2 = make_party_pair(channel2, 1, 2)
        SmcSession(alice2, bob2, SmcConfig(comparison="ympp", key_seed=70))
        assert channel2.stats.messages_for_phase("keys/rsa_pub") == 2

    def test_distinct_party_keys(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=70))
        assert (session.paillier_keys("alice").public_key.n
                != session.paillier_keys("bob").public_key.n)

    def test_party_lookup(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=70))
        assert session.party("alice") is alice
        assert session.party("bob") is bob
        assert session.peer_of("alice") is bob
        assert session.peer_of("bob") is alice
        with pytest.raises(SessionError, match="unknown"):
            session.party("carol")

    def test_duplicate_names_rejected(self):
        channel = Channel(left_name="x", right_name="y")
        alice, bob = make_party_pair(channel, 1, 2)
        bob.endpoint.name = "x"  # sabotage
        with pytest.raises(SessionError, match="distinct"):
            SmcSession(alice, bob, SmcConfig(key_seed=70))

    def test_unknown_selection_method(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=70))
        from repro.smc.secret_sharing import SharedValues
        shares = SharedValues(u_values=(1,), v_values=(0,),
                              value_bound=2, mask_bound=2)
        with pytest.raises(SessionError, match="selection"):
            session.kth_smallest(alice, bob, shares, 1, method="bogosort")


class TestConfig:
    def test_mask_bound_scales(self):
        config = SmcConfig(mask_sigma=10)
        assert config.mask_bound(100) == 100 << 10

    def test_mask_bound_floor(self):
        config = SmcConfig(mask_sigma=4)
        assert config.mask_bound(0) == 2 << 4

    def test_defaults(self):
        config = SmcConfig()
        assert config.comparison == "bitwise"
        assert config.faithful_shared_r is False


class TestSessionProtocols:
    def test_multiplication_both_directions(self):
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob, SmcConfig(key_seed=71))
        assert session.multiplication(alice, 6, bob, 7, 1) == 43
        assert session.multiplication(bob, 6, alice, 7, 1) == 43

    def test_deterministic_under_seeds(self):
        def run() -> tuple:
            channel = Channel()
            alice, bob = make_party_pair(channel, 5, 6)
            session = SmcSession(alice, bob, SmcConfig(key_seed=72))
            session.multiplication(alice, 3, bob, 4, 9)
            return tuple(e.value for e in channel.transcript.entries
                         if isinstance(e.value, int))

        assert run() == run()
