"""Equivalence tests for the batched k-party mesh (the PR-2 port).

The binding property: with ``batched_region_queries=True`` the k-party
protocol must be *indistinguishable in outcome* from the seed-era
per-point mesh -- bit-identical labels for every party and identical
leakage-ledger disclosure sequences, across random workloads, party
counts >= 3, and both ``blind_cross_sum`` modes.  Only wall-clock,
message counts, and encryption counts may differ.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolConfig
from repro.core.leakage import Disclosure
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import MeshError, PartyMesh
from repro.smc.session import SmcConfig

points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=30)),
    min_size=1, max_size=5)


def _config(backend="oracle", *, batched, blind=False, cached=False,
            min_pts=3, key_seed=230, batched_comparisons=True):
    return ProtocolConfig(
        eps=1.5, min_pts=min_pts, scale=1,
        smc=SmcConfig(comparison=backend, key_seed=key_seed, mask_sigma=8,
                      paillier_bits=128),
        batched_region_queries=batched,
        batched_comparisons=batched_comparisons,
        blind_cross_sum=blind,
        cache_peer_ciphertexts=cached)


def _run(points, *, batched, seeds, **kwargs):
    return run_multiparty_horizontal_dbscan(
        points, _config(batched=batched, **kwargs), seeds=seeds)


class TestBatchedMeshAgainstSeedPath:
    @settings(max_examples=12, deadline=None)
    @given(points_strategy, points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5), st.booleans())
    def test_three_parties_labels_and_ledger_bit_identical(
            self, p0, p1, p2, min_pts, blind):
        points = {"p0": p0, "p1": p1, "p2": p2}
        batched = _run(points, batched=True, seeds=[1, 2, 3],
                       min_pts=min_pts, blind=blind)
        legacy = _run(points, batched=False, seeds=[4, 5, 6],
                      min_pts=min_pts, blind=blind)
        # Bit-identical labels (not merely canonically equal) and the
        # whole disclosure sequence: same events, same order, same
        # labels, same details.
        assert batched.labels_by_party == legacy.labels_by_party
        assert batched.ledger.events == legacy.ledger.events

    @pytest.mark.parametrize("blind", [False, True])
    def test_four_parties(self, blind):
        points = {
            "h0": [(0, 0), (1, 0)],
            "h1": [(0, 1)],
            "h2": [(1, 1), (20, 20)],
            "h3": [(21, 20), (0, 2)],
        }
        batched = _run(points, batched=True, seeds=[1, 2, 3, 4],
                       min_pts=4, blind=blind)
        legacy = _run(points, batched=False, seeds=[1, 2, 3, 4],
                      min_pts=4, blind=blind)
        assert batched.labels_by_party == legacy.labels_by_party
        assert batched.ledger.events == legacy.ledger.events

    @pytest.mark.parametrize("blind", [False, True])
    def test_real_crypto_three_parties(self, blind):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0)],
            "p2": [(0, 1), (31, 30)],
        }
        batched = _run(points, backend="bitwise", batched=True,
                       seeds=[1, 2, 3], blind=blind)
        legacy = _run(points, backend="bitwise", batched=False,
                      seeds=[1, 2, 3], blind=blind)
        assert batched.labels_by_party == legacy.labels_by_party
        assert batched.ledger.events == legacy.ledger.events

    def test_empty_party_skipped_in_both_paths(self):
        points = {"p0": [(0, 0), (1, 0), (0, 1)], "p1": [], "p2": [(1, 1)]}
        batched = _run(points, batched=True, seeds=[1, 2, 3])
        legacy = _run(points, batched=False, seeds=[1, 2, 3])
        assert batched.labels_by_party == legacy.labels_by_party
        assert batched.ledger.events == legacy.ledger.events


class TestBatchedComparisonsMesh:
    """PR-3 tentpole at mesh level: amortized DGK batches inside every
    per-peer region query vs the per-point comparison loop."""

    @settings(max_examples=8, deadline=None)
    @given(points_strategy, points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5), st.booleans())
    def test_labels_and_ledger_bit_identical(self, p0, p1, p2, min_pts,
                                             blind):
        points = {"p0": p0, "p1": p1, "p2": p2}
        amortized = _run(points, batched=True, seeds=[1, 2, 3],
                         min_pts=min_pts, blind=blind,
                         batched_comparisons=True)
        per_point = _run(points, batched=True, seeds=[1, 2, 3],
                         min_pts=min_pts, blind=blind,
                         batched_comparisons=False)
        assert amortized.labels_by_party == per_point.labels_by_party
        assert amortized.ledger.events == per_point.ledger.events
        assert amortized.comparisons == per_point.comparisons

    @pytest.mark.parametrize("blind", [False, True])
    def test_real_crypto_three_parties(self, blind):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0), (2, 0)],
            "p2": [(0, 1), (31, 30)],
        }
        amortized = _run(points, backend="bitwise", batched=True,
                         seeds=[1, 2, 3], blind=blind,
                         batched_comparisons=True)
        per_point = _run(points, backend="bitwise", batched=True,
                         seeds=[1, 2, 3], blind=blind,
                         batched_comparisons=False)
        assert amortized.labels_by_party == per_point.labels_by_party
        assert amortized.ledger.events == per_point.ledger.events
        assert amortized.comparisons == per_point.comparisons
        if not blind:
            # Constant thresholds: one DGK round-trip per region query
            # instead of one per peer point, so strictly fewer messages.
            # (Blinded thresholds are per-point random, so the batch
            # degrades to per-point runs and saves nothing.)
            assert amortized.stats["total_messages"] \
                < per_point.stats["total_messages"]


class TestCachedMesh:
    def test_cached_mesh_matches_uncached_labels(self):
        points = {"p0": [(0, 0), (2, 0)], "p1": [(1, 0)], "p2": [(0, 1)]}
        cached = _run(points, batched=True, cached=True, seeds=[1, 2, 3])
        plain = _run(points, batched=True, seeds=[1, 2, 3])
        assert cached.labels_by_party == plain.labels_by_party
        # The cached path discloses linkable ids on hits; the plain
        # batched path never does.
        assert cached.ledger.count(Disclosure.LINKED_NEIGHBOR_ID) > 0
        assert plain.ledger.count(Disclosure.LINKED_NEIGHBOR_ID) == 0

    def test_cached_per_point_path_matches_cached_batched(self):
        points = {"p0": [(0, 0), (2, 0)], "p1": [(1, 0)], "p2": [(0, 1)]}
        batched = _run(points, batched=True, cached=True, seeds=[1, 2, 3])
        per_point = _run(points, batched=False, cached=True,
                         seeds=[1, 2, 3])
        assert batched.labels_by_party == per_point.labels_by_party
        assert batched.ledger.events == per_point.ledger.events


class TestMeshOfflinePhase:
    def test_prefilled_mesh_is_miss_free_and_label_identical(self):
        """The mesh offline/online contract: prefill by a probe run's
        consumption, then the online run never misses a pool."""
        points = {"p0": [(0, 0), (1, 1)], "p1": [(1, 0)], "p2": [(0, 1)]}
        config = _config(backend="bitwise", batched=True)

        probe_mesh = PartyMesh(list(points), config.smc, seeds=[1, 2, 3])
        probe = run_multiparty_horizontal_dbscan(points, config,
                                                 mesh=probe_mesh)
        plan = {pair: {key: entry["consumed"]
                       for key, entry in report.items()}
                for pair, report in probe_mesh.pool_report().items()}
        assert sum(sum(p.values()) for p in plan.values()) > 0

        online_mesh = PartyMesh(list(points), config.smc, seeds=[1, 2, 3])
        online_mesh.precompute_pools(plan)
        online = run_multiparty_horizontal_dbscan(points, config,
                                                  mesh=online_mesh)
        # Prefilling reorders RNG draws, so permutations differ; labels
        # cannot (the predicate bits are exact).
        assert online.labels_by_party == probe.labels_by_party
        for report in online_mesh.pool_report().values():
            assert all(entry["misses"] == 0 for entry in report.values())

    def test_mesh_party_mismatch_rejected(self):
        points = {"p0": [(0, 0)], "p1": [(1, 0)]}
        mesh = PartyMesh(["a", "b"], _config(batched=True).smc)
        with pytest.raises(MeshError, match="do not match"):
            run_multiparty_horizontal_dbscan(points, _config(batched=True),
                                             mesh=mesh)
