"""Tests for the k-party horizontal protocol."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.labels import canonicalize
from repro.clustering.union_density import union_density_dbscan
from repro.core.config import ProtocolConfig
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import Disclosure
from repro.data.partitioning import HorizontalPartition
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import MeshError
from repro.smc.session import SmcConfig


def _config(backend="oracle", **kwargs) -> ProtocolConfig:
    defaults = dict(eps=1.5, min_pts=3, scale=1,
                    smc=SmcConfig(comparison=backend, key_seed=210,
                                  mask_sigma=8, paillier_bits=128))
    defaults.update(kwargs)
    return ProtocolConfig(**defaults)


def _assert_matches_reference(points_by_party, config, result):
    for name, own in points_by_party.items():
        others = [p for other, pts in points_by_party.items()
                  if other != name for p in pts]
        reference = union_density_dbscan(list(own), others,
                                         config.eps_squared, config.min_pts)
        assert canonicalize(result.labels_by_party[name]) \
            == canonicalize(reference.labels.as_tuple()), name


points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=30)),
    min_size=1, max_size=6)


class TestAgainstReference:
    @settings(max_examples=15, deadline=None)
    @given(points_strategy, points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5))
    def test_three_parties_random(self, p0, p1, p2, min_pts):
        points = {"p0": p0, "p1": p1, "p2": p2}
        config = _config(min_pts=min_pts)
        result = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2, 3])
        _assert_matches_reference(points, config, result)

    def test_four_parties(self):
        points = {
            "h0": [(0, 0), (1, 0)],
            "h1": [(0, 1)],
            "h2": [(1, 1), (20, 20)],
            "h3": [(21, 20), (0, 2)],
        }
        config = _config(min_pts=4)
        result = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2, 3, 4])
        _assert_matches_reference(points, config, result)

    def test_cross_party_density_needs_all_peers(self):
        """A point that is core only when ALL peers' support is counted."""
        points = {
            "p0": [(0, 0)],
            "p1": [(1, 0)],
            "p2": [(0, 1)],
        }
        config = _config(min_pts=3)
        result = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2, 3])
        assert result.labels_by_party["p0"] == (1,)
        # With only one peer's support it would be noise: check the
        # two-party sub-case for contrast.
        sub = run_horizontal_dbscan(
            HorizontalPartition(alice_points=((0, 0),),
                                bob_points=((1, 0),)),
            _config(min_pts=3, alice_seed=1, bob_seed=2))
        assert sub.alice_labels == (-1,)


class TestTwoPartyReduction:
    def test_matches_two_party_protocol(self):
        """k=2 multiparty == the two-party horizontal protocol."""
        alice_points = ((0, 0), (1, 0), (10, 10))
        bob_points = ((0, 1), (10, 11))
        config = _config(min_pts=3, alice_seed=1, bob_seed=2)
        two_party = run_horizontal_dbscan(
            HorizontalPartition(alice_points=alice_points,
                                bob_points=bob_points), config)
        multi = run_multiparty_horizontal_dbscan(
            {"alice": list(alice_points), "bob": list(bob_points)},
            config, seeds=[1, 2])
        assert canonicalize(multi.labels_by_party["alice"]) \
            == canonicalize(two_party.alice_labels)
        assert canonicalize(multi.labels_by_party["bob"]) \
            == canonicalize(two_party.bob_labels)


class TestDisclosureAndStats:
    def test_per_peer_counts_disclosed(self):
        points = {"p0": [(0, 0)], "p1": [(1, 0)], "p2": [(0, 1)]}
        result = run_multiparty_horizontal_dbscan(points, _config(),
                                                  seeds=[1, 2, 3])
        # Each driver discloses one count per peer per query: 3 drivers
        # x 1 query x 2 peers.
        assert result.ledger.count(Disclosure.NEIGHBOR_COUNT) == 6

    def test_stats_cover_all_pairs(self):
        points = {"p0": [(0, 0)], "p1": [(1, 0)], "p2": [(0, 1)]}
        result = run_multiparty_horizontal_dbscan(points, _config(),
                                                  seeds=[1, 2, 3])
        directions = set(result.stats["bytes_by_direction"])
        assert {"p0->p1", "p1->p0", "p0->p2", "p2->p0",
                "p1->p2", "p2->p1"} <= directions

    def test_validation(self):
        with pytest.raises(MeshError, match="two parties"):
            run_multiparty_horizontal_dbscan({"solo": [(0, 0)]}, _config())

    def test_empty_party_handled(self):
        points = {"p0": [(0, 0), (1, 0), (0, 1)], "p1": []}
        config = _config(min_pts=3)
        result = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2])
        assert result.labels_by_party["p0"] == (1, 1, 1)
        assert result.labels_by_party["p1"] == ()


class TestWithRealCrypto:
    def test_three_parties_bitwise(self):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0)],
            "p2": [(0, 1), (31, 30)],
        }
        config = _config(backend="bitwise", min_pts=3)
        result = run_multiparty_horizontal_dbscan(points, config,
                                                  seeds=[1, 2, 3])
        _assert_matches_reference(points, config, result)
        assert result.stats["total_bytes"] > 0
