"""Tests for the k-party session mesh."""

import pytest

from repro.multiparty.mesh import MeshError, PartyMesh
from repro.smc.session import SmcConfig

CONFIG = SmcConfig(comparison="oracle", key_seed=200)


class TestMeshConstruction:
    def test_pairwise_sessions_exist(self):
        mesh = PartyMesh(["p0", "p1", "p2"], CONFIG, seeds=[1, 2, 3])
        for a, b in (("p0", "p1"), ("p0", "p2"), ("p1", "p2")):
            session = mesh.session_between(a, b)
            assert {session.alice.name, session.bob.name} == {a, b}

    def test_session_symmetric_lookup(self):
        mesh = PartyMesh(["p0", "p1"], CONFIG)
        assert mesh.session_between("p0", "p1") \
            is mesh.session_between("p1", "p0")

    def test_keys_shared_across_pairs(self):
        """One keypair per physical party, reused in every session."""
        mesh = PartyMesh(["p0", "p1", "p2"], CONFIG, seeds=[1, 2, 3])
        n_01 = mesh.session_between("p0", "p1").paillier_keys("p0").public_key.n
        n_02 = mesh.session_between("p0", "p2").paillier_keys("p0").public_key.n
        assert n_01 == n_02

    def test_peers_of(self):
        mesh = PartyMesh(["a", "b", "c"], CONFIG)
        assert mesh.peers_of("b") == ["a", "c"]
        with pytest.raises(MeshError, match="unknown"):
            mesh.peers_of("zz")

    def test_party_in_pair(self):
        mesh = PartyMesh(["a", "b"], CONFIG)
        party = mesh.party_in_pair("a", "b")
        assert party.name == "a"
        assert party.peer_name == "b"

    def test_pair_key_slot_cache_orders_like_names_index(self):
        """The routed-lookup hot path resolves slots from a dict; the
        ordering must equal the original names.index comparison for
        every pair, either argument order."""
        names = ["p3", "p0", "zz", "aa"]  # deliberately unsorted
        mesh = PartyMesh(names, CONFIG, seeds=[1, 2, 3, 4])
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                expected = ((a, b) if names.index(a) < names.index(b)
                            else (b, a))
                assert mesh._pair_key(a, b) == expected
                assert mesh._pair_key(b, a) == expected
        with pytest.raises(MeshError, match="unknown"):
            mesh._pair_key("p3", "nope")

    def test_validation(self):
        with pytest.raises(MeshError, match="two parties"):
            PartyMesh(["solo"], CONFIG)
        with pytest.raises(MeshError, match="duplicate"):
            PartyMesh(["x", "x"], CONFIG)
        with pytest.raises(MeshError, match="seeds"):
            PartyMesh(["a", "b"], CONFIG, seeds=[1])
        mesh = PartyMesh(["a", "b"], CONFIG)
        with pytest.raises(MeshError, match="itself"):
            mesh.session_between("a", "a")

    def test_per_pair_rng_substreams(self):
        """A party's coin tosses on each link come from a DEDICATED
        substream (seed + canonical pair key), so two pairwise sessions
        never race on one generator and the draw sequence of a pair is
        independent of when the party's other pairs run."""
        mesh = PartyMesh(["a", "b", "c"], CONFIG, seeds=[7, 8, 9])
        a_to_b = mesh.party_in_pair("a", "b")
        a_to_c = mesh.party_in_pair("a", "c")
        assert a_to_b.rng is not a_to_c.rng
        # Deterministic: a rebuilt mesh with the same seeds replays the
        # same per-pair streams, and draws on one pair do not perturb
        # another pair's stream.
        first_draws = (a_to_b.rng.random(), a_to_c.rng.random())
        rebuilt = PartyMesh(["a", "b", "c"], CONFIG, seeds=[7, 8, 9])
        rebuilt.party_in_pair("a", "c").rng.random()  # other pair first
        assert rebuilt.party_in_pair("a", "b").rng.random() \
            == first_draws[0]
        # Distinct parties on the same pair get distinct streams.
        b_to_a = mesh.party_in_pair("b", "a")
        assert b_to_a.rng.random() != first_draws[0]

    def test_merged_stats(self):
        mesh = PartyMesh(["a", "b", "c"], CONFIG, seeds=[1, 2, 3])
        baseline = mesh.merged_stats().total_messages  # key exchange
        assert baseline == 6  # one Paillier pubkey each way, per pair
        mesh.party_in_pair("a", "b").send("x", 123)
        mesh.party_in_pair("a", "c").send("y", 456)
        merged = mesh.merged_stats()
        assert merged.total_messages == baseline + 2
        assert merged.messages_by_label["x"] == 1
        assert mesh.pair_stats("a", "b").messages_by_label["x"] == 1

    def test_protocols_run_over_mesh_sessions(self):
        mesh = PartyMesh(["a", "b", "c"], SmcConfig(key_seed=201),
                         seeds=[1, 2, 3])
        for peer in ("b", "c"):
            session = mesh.session_between("a", peer)
            receiver = mesh.party_in_pair("a", peer)
            masker = mesh.party_in_pair(peer, "a")
            assert session.multiplication(receiver, 6, masker, 7, 1) == 43
