"""Equivalence of sequential vs concurrent mesh passes, across fabrics.

The PR-4 binding property: scheduling the per-peer region queries of a
driver pass on a thread pool (``concurrent_peers=True``) and/or moving
the links onto a different transport fabric must change **nothing**
observable about the protocol -- bit-identical labels for every party,
identical leakage-ledger event sequences, identical per-pair
transcripts, identical comparison counts.  Only wall-clock may differ:
on a simulated-network fabric the concurrent pass completes in
measurably less virtual time because the round-trips to different peers
overlap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ProtocolConfig
from repro.core.leakage import Disclosure
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh, derive_pair_rng
from repro.multiparty.scheduler import (
    ConcurrentPassExecutor,
    PeerQuery,
    SchedulerError,
    SequentialPassExecutor,
    make_pass_executor,
)
from repro.net.transport import TransportSpec
from repro.smc.session import SmcConfig

points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=30)),
    min_size=1, max_size=5)


def _config(backend="oracle", *, concurrent, transport=None, blind=False,
            min_pts=3, key_seed=240, peer_workers=None):
    return ProtocolConfig(
        eps=1.5, min_pts=min_pts, scale=1,
        smc=SmcConfig(comparison=backend, key_seed=key_seed, mask_sigma=8,
                      paillier_bits=128, transport=transport),
        blind_cross_sum=blind,
        concurrent_peers=concurrent,
        peer_workers=peer_workers)


def _run(points, seeds, **kwargs):
    config = _config(**kwargs)
    mesh = PartyMesh(list(points), config.smc, seeds=seeds)
    result = run_multiparty_horizontal_dbscan(points, config, mesh=mesh)
    return result, mesh


def _pair_transcript_values(mesh):
    return {pair: [(e.sender, e.receiver, e.label, e.value)
                   for e in transcript.entries]
            for pair, transcript in mesh.pair_transcripts().items()}


def _assert_equivalent(left, left_mesh, right, right_mesh):
    assert left.labels_by_party == right.labels_by_party
    assert left.ledger.events == right.ledger.events
    assert left.comparisons == right.comparisons
    assert _pair_transcript_values(left_mesh) \
        == _pair_transcript_values(right_mesh)


class TestConcurrentEqualsSequential:
    @settings(max_examples=10, deadline=None)
    @given(points_strategy, points_strategy, points_strategy,
           st.integers(min_value=1, max_value=5), st.booleans())
    def test_three_parties_property(self, p0, p1, p2, min_pts, blind):
        points = {"p0": p0, "p1": p1, "p2": p2}
        sequential = _run(points, [1, 2, 3], concurrent=False,
                          min_pts=min_pts, blind=blind)
        concurrent = _run(points, [1, 2, 3], concurrent=True,
                          min_pts=min_pts, blind=blind)
        _assert_equivalent(*sequential, *concurrent)

    @pytest.mark.parametrize("blind", [False, True])
    def test_real_crypto_three_parties(self, blind):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0)],
            "p2": [(0, 1), (31, 30)],
        }
        sequential = _run(points, [1, 2, 3], backend="bitwise",
                          concurrent=False, blind=blind)
        concurrent = _run(points, [1, 2, 3], backend="bitwise",
                          concurrent=True, blind=blind)
        _assert_equivalent(*sequential, *concurrent)

    @pytest.mark.parametrize("blind", [False, True])
    def test_four_parties(self, blind):
        points = {
            "h0": [(0, 0), (1, 0)],
            "h1": [(0, 1)],
            "h2": [(1, 1), (20, 20)],
            "h3": [(21, 20), (0, 2)],
        }
        sequential = _run(points, [1, 2, 3, 4], concurrent=False,
                          min_pts=4, blind=blind)
        concurrent = _run(points, [1, 2, 3, 4], concurrent=True,
                          min_pts=4, blind=blind)
        _assert_equivalent(*sequential, *concurrent)

    def test_two_parties(self):
        """k=2: one task per pass; the executor must still behave."""
        points = {"a": [(0, 0), (1, 0)], "b": [(0, 1)]}
        sequential = _run(points, [1, 2], concurrent=False)
        concurrent = _run(points, [1, 2], concurrent=True)
        _assert_equivalent(*sequential, *concurrent)

    def test_bounded_worker_pool(self):
        points = {"p0": [(0, 0)], "p1": [(1, 0)], "p2": [(0, 1)],
                  "p3": [(1, 1)]}
        sequential = _run(points, [1, 2, 3, 4], concurrent=False)
        bounded = _run(points, [1, 2, 3, 4], concurrent=True,
                       peer_workers=2)
        _assert_equivalent(*sequential, *bounded)


class TestTransportEquivalence:
    """Bit-identical runs across in-process / threaded / simulated."""

    @settings(max_examples=6, deadline=None)
    @given(points_strategy, points_strategy, points_strategy,
           st.booleans())
    def test_threaded_fabric_property(self, p0, p1, p2, blind):
        points = {"p0": p0, "p1": p1, "p2": p2}
        in_process = _run(points, [1, 2, 3], concurrent=False, blind=blind)
        threaded = _run(points, [1, 2, 3], concurrent=False, blind=blind,
                        transport=TransportSpec(kind="threaded"))
        _assert_equivalent(*in_process, *threaded)

    @pytest.mark.parametrize("blind", [False, True])
    def test_all_fabrics_real_crypto_concurrent(self, blind):
        points = {
            "p0": [(0, 0), (30, 30)],
            "p1": [(1, 0)],
            "p2": [(0, 1)],
        }
        reference = _run(points, [1, 2, 3], backend="bitwise",
                         concurrent=False, blind=blind)
        for spec, concurrent in (
                (TransportSpec(kind="threaded"), True),
                (TransportSpec(kind="simulated", latency_s=0.005), True),
                (TransportSpec(kind="simulated", latency_s=0.005), False)):
            other = _run(points, [1, 2, 3], backend="bitwise",
                         concurrent=concurrent, transport=spec, blind=blind)
            _assert_equivalent(*reference, *other)


class TestLatencyHiding:
    def test_concurrent_pass_overlaps_simulated_round_trips(self):
        points = {"p0": [(0, 0), (2, 0)], "p1": [(1, 0)], "p2": [(0, 1)],
                  "p3": [(1, 1)]}
        spec = TransportSpec(kind="simulated", latency_s=0.005)
        sequential, _ = _run(points, [1, 2, 3, 4], concurrent=False,
                             transport=spec)
        concurrent, _ = _run(points, [1, 2, 3, 4], concurrent=True,
                             transport=spec)
        assert sequential.simulated_seconds > 0
        # Three peers per pass: overlapping should hide a substantial
        # share of the round trips (bounded by the slowest peer).
        assert concurrent.simulated_seconds < 0.7 * \
            sequential.simulated_seconds
        # The merged per-link ledger is schedule-independent.
        assert sequential.stats["simulated_seconds"] \
            == pytest.approx(concurrent.stats["simulated_seconds"])

    def test_real_fabric_reports_zero_simulated_time(self):
        points = {"p0": [(0, 0)], "p1": [(1, 0)]}
        result, _ = _run(points, [1, 2], concurrent=True)
        assert result.simulated_seconds == 0.0
        assert result.stats["simulated_seconds"] == 0.0


class TestExecutorUnit:
    def test_tasks_truly_run_concurrently(self):
        """Not just formula-level overlap: a two-party barrier only
        releases if both tasks are in flight at the same moment, so a
        regression to serial execution deadlocks the barrier and fails
        (BrokenBarrierError) instead of silently reporting overlap."""
        import threading

        barrier = threading.Barrier(2, timeout=10)

        def rendezvous(ledger):
            barrier.wait()
            return 1

        executor = ConcurrentPassExecutor()
        outcomes = executor.run_pass(
            [PeerQuery(peer="p0", run=rendezvous),
             PeerQuery(peer="p1", run=rendezvous)])
        executor.close()
        assert [outcome.count for outcome in outcomes] == [1, 1]

    def test_outcomes_in_task_order_even_with_reversed_finish(self):
        import time

        def make_task(name, delay):
            def run(ledger):
                time.sleep(delay)
                ledger.record("t", name, Disclosure.NEIGHBOR_BIT)
                return ord(name[-1])
            return PeerQuery(peer=name, run=run)

        executor = ConcurrentPassExecutor()
        outcomes = executor.run_pass(
            [make_task("p0", 0.05), make_task("p1", 0.0)])
        executor.close()
        assert [outcome.peer for outcome in outcomes] == ["p0", "p1"]
        assert [outcome.ledger.events[0].learner
                for outcome in outcomes] == ["p0", "p1"]

    def test_sequential_charges_sum_concurrent_charges_max(self):
        clocks = {"a": iter([0.0, 3.0]), "b": iter([0.0, 5.0])}

        def task(name):
            return PeerQuery(peer=name, run=lambda ledger: 0,
                             simulated_clock=lambda: next(clocks[name]))

        sequential = SequentialPassExecutor()
        sequential.run_pass([task("a"), task("b")])
        assert sequential.simulated_seconds == pytest.approx(8.0)

        clocks = {"a": iter([0.0, 3.0]), "b": iter([0.0, 5.0])}
        concurrent = ConcurrentPassExecutor()
        concurrent.run_pass([task("a"), task("b")])
        concurrent.close()
        assert concurrent.simulated_seconds == pytest.approx(5.0)

    def test_width_capped_pool_charges_honest_makespan(self):
        """A pool narrower than the pass cannot overlap everything:
        the charge is the greedy makespan, not the naive max."""
        def tasks(values):
            return [PeerQuery(peer=str(index), run=lambda ledger: 0,
                              simulated_clock=iter([0.0, value]).__next__)
                    for index, value in enumerate(values)]

        one_wide = ConcurrentPassExecutor(max_workers=1)
        one_wide.run_pass(tasks([3.0, 5.0, 2.0]))
        one_wide.close()
        assert one_wide.simulated_seconds == pytest.approx(10.0)

        two_wide = ConcurrentPassExecutor(max_workers=2)
        two_wide.run_pass(tasks([3.0, 5.0, 2.0]))
        two_wide.close()
        # Greedy longest-first: {5} and {3, 2} -> makespan 5.
        assert two_wide.simulated_seconds == pytest.approx(5.0)

    def test_empty_pass(self):
        executor = SequentialPassExecutor()
        assert executor.run_pass([]) == []
        assert executor.simulated_seconds == 0.0

    def test_factory_and_validation(self):
        assert isinstance(make_pass_executor(False),
                          SequentialPassExecutor)
        assert isinstance(make_pass_executor(True, 2),
                          ConcurrentPassExecutor)
        with pytest.raises(SchedulerError, match="max_workers"):
            ConcurrentPassExecutor(max_workers=0)
        with pytest.raises(SchedulerError, match="expected_tasks"):
            ConcurrentPassExecutor(expected_tasks=0)

    def test_growing_pass_keeps_the_warm_pool(self):
        """Regression: a pass with more tasks than the previous one used
        to shutdown+recreate the pool, discarding every warm worker
        thread.  Growth must happen in place."""
        import threading

        def make_tasks(count):
            return [PeerQuery(peer=f"p{i}", run=lambda ledger: 1)
                    for i in range(count)]

        executor = ConcurrentPassExecutor()
        try:
            executor.run_pass(make_tasks(2))
            first_pool = executor._pool
            first_threads = set(first_pool._threads)
            assert first_threads
            executor.run_pass(make_tasks(4))
            assert executor._pool is first_pool
            assert first_threads <= set(first_pool._threads)
            assert first_pool._max_workers == 4
            # A single shrinking pass never touches the pool (two
            # consecutive ones narrow it -- see TestPoolShrink).
            executor.run_pass(make_tasks(2))
            assert executor._pool is first_pool
        finally:
            executor.close()
        assert all(not t.is_alive() or t.daemon is not None
                   for t in threading.enumerate())

    def test_expected_tasks_presizes_the_pool(self):
        executor = ConcurrentPassExecutor(expected_tasks=4)
        try:
            executor.run_pass([PeerQuery(peer=f"p{i}",
                                         run=lambda ledger: 1)
                               for i in range(2)])
            pool = executor._pool
            assert pool._max_workers == 4
            executor.run_pass([PeerQuery(peer=f"p{i}",
                                         run=lambda ledger: 1)
                               for i in range(4)])
            assert executor._pool is pool
        finally:
            executor.close()


class TestPairRngDerivation:
    def test_deterministic_and_distinct(self):
        one = derive_pair_rng(7, "a", "a", "b")
        again = derive_pair_rng(7, "a", "a", "b")
        assert one.random() == again.random()
        assert derive_pair_rng(7, "a", "a", "c").random() \
            != derive_pair_rng(7, "a", "a", "b").random()
        assert derive_pair_rng(7, "b", "a", "b").random() \
            != derive_pair_rng(7, "a", "a", "b").random()
        assert derive_pair_rng(8, "a", "a", "b").random() \
            != derive_pair_rng(7, "a", "a", "b").random()

    def test_unseeded_stays_nondeterministic(self):
        assert derive_pair_rng(None, "a", "a", "b").random() \
            != derive_pair_rng(None, "a", "a", "b").random()


def _noop_tasks(count):
    return [PeerQuery(peer=f"p{i}", run=lambda ledger: 1)
            for i in range(count)]


class TestPoolShrink:
    """The satellite fix: a pool sized for a wide pass no longer holds
    its surplus threads for the session's whole lifetime."""

    def test_two_underused_passes_narrow_the_pool(self):
        executor = ConcurrentPassExecutor(expected_tasks=4)
        try:
            executor.run_pass(_noop_tasks(4))
            wide_pool = executor._pool
            assert executor._pool_workers == 4

            executor.run_pass(_noop_tasks(2))
            # Hysteresis: one under-used pass only records the surplus.
            assert executor._pool is wide_pool
            assert executor.idle_workers == 2
            assert executor.shrinks == 0

            executor.run_pass(_noop_tasks(2))
            assert executor._pool is not wide_pool
            assert executor._pool_workers == 2
            assert executor.shrinks == 1
            assert executor.idle_workers == 0
            # The sizing hint follows, so the next pass cannot regrow
            # the pool right back to the overshoot.
            assert executor.expected_tasks == 2
            executor.run_pass(_noop_tasks(2))
            assert executor._pool_workers == 2
            assert executor.shrinks == 1
        finally:
            executor.close()

    def test_recovered_demand_resets_the_streak(self):
        executor = ConcurrentPassExecutor(expected_tasks=4)
        try:
            executor.run_pass(_noop_tasks(4))
            executor.run_pass(_noop_tasks(2))    # surplus pass 1
            executor.run_pass(_noop_tasks(4))    # full again: reset
            assert executor.idle_workers == 0
            executor.run_pass(_noop_tasks(2))    # surplus pass 1 again
            assert executor.shrinks == 0
            assert executor._pool_workers == 4
        finally:
            executor.close()

    def test_pool_closes_when_demand_stays_zero(self):
        executor = ConcurrentPassExecutor()
        try:
            executor.run_pass(_noop_tasks(3))
            assert executor._pool is not None
            # Single-task passes run inline: zero pool demand.
            executor.run_pass(_noop_tasks(1))
            executor.run_pass(_noop_tasks(1))
            assert executor._pool is None
            assert executor._pool_workers == 0
            assert executor.expected_tasks is None
            # Later wide passes still work -- the pool comes back.
            assert [outcome.count
                    for outcome in executor.run_pass(_noop_tasks(3))] \
                == [1, 1, 1]
            assert executor._pool_workers == 3
        finally:
            executor.close()


class TestPrepareHook:
    def test_prepare_fires_once_before_run(self):
        calls = []

        def make_task(name):
            def run(ledger):
                calls.append(("run", name))
                return 0
            return PeerQuery(peer=name, run=run,
                             prepare=lambda: calls.append(
                                 ("prepare", name)))

        SequentialPassExecutor().run_pass(
            [make_task("p0"), make_task("p1")])
        assert calls == [("prepare", "p0"), ("run", "p0"),
                         ("prepare", "p1"), ("run", "p1")]


class TestAsyncPassExecutor:
    def test_run_pass_is_refused(self):
        from repro.multiparty.scheduler import AsyncPassExecutor

        executor = AsyncPassExecutor(lambda task, ledger: None)
        with pytest.raises(SchedulerError, match="run_pass_async"):
            executor.run_pass(_noop_tasks(2))

    def test_outcomes_in_task_order_and_prepare_once_per_task(self):
        """Even when the injected runner re-executes a task's ``run``
        (the restartable path), ``prepare`` fires exactly once."""
        import asyncio

        from repro.multiparty.scheduler import AsyncPassExecutor

        calls = []

        def make_task(name, clock):
            def run(ledger):
                calls.append(("run", name))
                return ord(name[-1])
            return PeerQuery(peer=name, run=run,
                             prepare=lambda: calls.append(
                                 ("prepare", name)),
                             simulated_clock=clock)

        async def run_query(task, ledger):
            await asyncio.sleep(0)
            task.run(ledger)       # first attempt, restarted
            return task.run(ledger)

        clocks = {"p0": iter([0.0, 3.0]).__next__,
                  "p1": iter([0.0, 5.0]).__next__}
        executor = AsyncPassExecutor(run_query)
        tasks = [make_task("p0", clocks["p0"]),
                 make_task("p1", clocks["p1"])]
        outcomes = asyncio.run(executor.run_pass_async(tasks))
        assert [outcome.peer for outcome in outcomes] == ["p0", "p1"]
        assert [outcome.count for outcome in outcomes] \
            == [ord("0"), ord("1")]
        assert calls.count(("prepare", "p0")) == 1
        assert calls.count(("prepare", "p1")) == 1
        assert calls.count(("run", "p0")) == 2
        # The pass charges the slowest overlapping link, not the sum.
        assert executor.simulated_seconds == pytest.approx(5.0)
        assert asyncio.run(executor.run_pass_async([])) == []
