"""The paper's motivating scenario: two hospitals, shared clustering.

Each hospital has its own patient records (Section 1).  Records are
subject to confidentiality constraints, yet clustering the *joint*
population finds patient subgroups neither hospital sees alone: here a
cohort that is sparse at each site separately but dense in the union.

The script runs both the base horizontal protocol (Algorithms 3 + 4)
and the enhanced Section 5 protocol, and contrasts their disclosure
profiles -- the enhanced run never reveals neighbourhood counts.

Run:  python examples/hospitals_horizontal.py
"""

import random

from repro import ProtocolConfig, SmcConfig, cluster_partitioned
from repro.analysis.report import render_table
from repro.data.generators import gaussian_blobs
from repro.data.partitioning import HorizontalPartition

rng = random.Random(2024)

# Patient features: (age, biomarker level), both on a 1/100 grid.
# Each hospital has a strong local cohort...
hospital_a = gaussian_blobs(rng, centers=[(35.0, 2.0)], points_per_blob=10,
                            spread=0.5)
hospital_b = gaussian_blobs(rng, centers=[(62.0, 8.0)], points_per_blob=10,
                            spread=0.5)
# ...and each holds HALF of a cross-site cohort that is too sparse to be
# found at either site alone (4 patients per site, MinPts = 6).
shared_cohort = gaussian_blobs(rng, centers=[(50.0, 5.0)],
                               points_per_blob=8, spread=0.3)
hospital_a += shared_cohort[:4]
hospital_b += shared_cohort[4:]

partition = HorizontalPartition(alice_points=tuple(hospital_a),
                                bob_points=tuple(hospital_b))
config = ProtocolConfig(eps=1.5, min_pts=6, scale=100,
                        smc=SmcConfig(paillier_bits=256, key_seed=3),
                        alice_seed=5, bob_seed=6)

print("=== base protocol (Algorithms 3 + 4) ===")
base = cluster_partitioned(partition, config)
print(f"hospital A labels: {base.alice_labels}")
print(f"hospital B labels: {base.bob_labels}")

# The cross-site cohort members are the last 4 points of each side; with
# union density they form a cluster at both sites.
print(f"cross-site cohort found at A: "
      f"{set(base.alice_labels[-4:]) != {-1}}")
print(f"cross-site cohort found at B: "
      f"{set(base.bob_labels[-4:]) != {-1}}")

print("\n=== enhanced protocol (Section 5) ===")
enhanced = cluster_partitioned(partition, config, enhanced=True)
assert enhanced.alice_labels == base.alice_labels
assert enhanced.bob_labels == base.bob_labels
print("identical clustering output, reduced disclosure:")

rows = []
for name, run in (("base", base), ("enhanced", enhanced)):
    profile = run.ledger.profile()
    rows.append([
        name,
        profile.get("neighbor_count", 0),
        profile.get("neighbor_bit", 0),
        profile.get("dot_product", 0),
        profile.get("core_bit", 0),
        f"{run.stats['total_bytes']:,}",
    ])
print(render_table(
    ["protocol", "counts", "bits", "dot prods", "core bits", "bytes"],
    rows))
