"""The Figure 1 intersection attack, demonstrated numerically.

Bob has points ringing one of Alice's records.  Under a Kumar-style
protocol [14] he learns, *linkably*, that the same record A falls in
each of his points' Eps-neighbourhoods, so A must lie in the
intersection of the disks -- which shrinks rapidly as he adds points.
Under this paper's protocols he only learns per-query counts over
freshly permuted points, so his posterior never shrinks below the union
of the disks.

Run:  python examples/intersection_attack_demo.py
"""

import random

from repro.analysis.attacks import (
    Domain2D,
    intersection_attack_report,
    ring_of_observers,
)
from repro.analysis.report import format_ratio, render_table

EPS = 2.0
DOMAIN = Domain2D(x_min=-10, x_max=10, y_min=-10, y_max=10)

rows = []
for observer_count in (1, 2, 3, 4, 6, 8, 12):
    observers = ring_of_observers((0.0, 0.0), observer_count,
                                  distance=EPS * 0.85)
    report = intersection_attack_report(observers, EPS, DOMAIN,
                                        random.Random(42), samples=80000)
    rows.append([
        observer_count,
        f"{report.kumar_posterior_area:.2f}",
        format_ratio(report.kumar_localization),
        f"{report.permuted_posterior_area:.2f}",
        format_ratio(report.permuted_localization),
    ])

print(render_table(
    ["Bob points", "Kumar area", "Kumar frac", "ours area", "ours frac"],
    rows,
    title=f"Figure 1 attack, eps={EPS}, prior area={DOMAIN.area:.0f} "
          f"(areas in squared units)"))
print()
print("Reading: the linkable ('Kumar') posterior collapses toward a "
      "point as Bob adds\nobservers; the count-only posterior (this "
      "paper's protocols) stays at the disk\nunion -- Bob cannot tell "
      "which of Alice's records satisfied which query.")
