"""Vertically partitioned clustering: a bank and a credit bureau.

Both institutions know the same customers (shared record ids) but hold
different attributes -- the Figure 3 setting.  The bank holds
(income, account balance); the bureau holds (credit utilization,
delinquency score).  Neither can find behavioural segments alone,
because the segments only separate in the joint 4-D space.

Run:  python examples/banks_vertical.py
"""

import random

from repro import ProtocolConfig, SmcConfig, cluster_partitioned
from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.data.dataset import Dataset
from repro.data.generators import gaussian_blobs
from repro.data.partitioning import partition_vertical

rng = random.Random(99)

# Three customer segments in 4-D; the pairs of segments collide in the
# bank-only and bureau-only projections.
segments = gaussian_blobs(
    rng,
    centers=[
        (30.0, 10.0, 4.0, 1.0),   # steady savers
        (30.0, 10.0, 9.0, 7.0),   # same bank profile, stressed credit
        (80.0, 40.0, 4.0, 1.0),   # affluent, clean credit
    ],
    points_per_blob=7, spread=0.4)

dataset = Dataset.from_points(segments)
partition = partition_vertical(dataset, alice_attributes=2)

config = ProtocolConfig(eps=1.5, min_pts=4, scale=100,
                        smc=SmcConfig(paillier_bits=256, key_seed=4),
                        alice_seed=7, bob_seed=8)

run = cluster_partitioned(partition, config)
print(f"joint labels: {run.alice_labels}")
print(f"clusters found: "
      f"{len({l for l in run.alice_labels if l != -1})} (expected 3)")

# The vertical protocol reproduces centralized DBSCAN exactly.
reference = dbscan(list(dataset.records), config.eps_squared,
                   config.min_pts)
assert canonicalize(run.alice_labels) == canonicalize(reference.as_tuple())
print("matches centralized DBSCAN on the (never materialized) joint data")

# Neither projection separates all three segments.
bank_only = dbscan([r[:2] for r in dataset.records], config.eps_squared,
                   config.min_pts)
bureau_only = dbscan([r[2:] for r in dataset.records], config.eps_squared,
                     config.min_pts)
print(f"bank-only view finds   : "
      f"{len({l for l in bank_only.as_tuple() if l != -1})} clusters")
print(f"bureau-only view finds : "
      f"{len({l for l in bureau_only.as_tuple() if l != -1})} clusters")
print(f"bytes exchanged: {run.stats['total_bytes']:,} "
      f"({run.comparisons} secure comparisons)")
