"""Arbitrarily partitioned clustering (Section 4.4, Figure 4).

"Extremely patchworked data is infrequent in practice, [but] the
generality of this model can make it better suited to practical settings
in which data may be mostly, but not completely, vertically or
horizontally partitioned."  Here: two research labs merged their cohort
databases; most records are wholly owned by one lab, a fraction have
attributes contributed by both.

Run:  python examples/federated_arbitrary.py
"""

import random

from repro import ProtocolConfig, SmcConfig, cluster_partitioned
from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.data.dataset import Dataset
from repro.data.generators import gaussian_blobs
from repro.data.partitioning import partition_arbitrary

rng = random.Random(5)

points = gaussian_blobs(rng, centers=[(0.0, 0.0), (8.0, 8.0)],
                        points_per_blob=8, spread=0.5)
dataset = Dataset.from_points(points)

# 40% of records are attribute-split between the labs, the rest wholly
# owned by a coin-flipped lab.
partition = partition_arbitrary(dataset, random.Random(17),
                                shared_fraction=0.4)
split_records = [record for record in range(partition.size)
                 if partition.fully_owned_by(record) is None]
print(f"records: {partition.size}, attribute-split: {len(split_records)}")

config = ProtocolConfig(eps=1.5, min_pts=4, scale=100,
                        smc=SmcConfig(paillier_bits=256, key_seed=5),
                        alice_seed=9, bob_seed=10)

run = cluster_partitioned(partition, config)
print(f"joint labels: {run.alice_labels}")

reference = dbscan(points, config.eps_squared, config.min_pts)
assert canonicalize(run.alice_labels) == canonicalize(reference.as_tuple())
print("matches centralized DBSCAN exactly")
print(f"bytes exchanged: {run.stats['total_bytes']:,}")
print(f"per-record output: split records' cluster numbers are learned by "
      f"both parties, whole records' by their owner only")
