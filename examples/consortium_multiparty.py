"""Multi-party extension: a consortium of three clinics.

The paper develops its protocols for two parties and notes that "the
two-party algorithm can be extended to multi-party cases" (Section 1).
This example runs the k-party horizontal extension: three clinics, each
holding a few patients of a cohort that is only dense when *all three*
contribute neighbours.

Run:  python examples/consortium_multiparty.py
"""

import random

from repro.analysis.report import render_table
from repro.core.config import ProtocolConfig
from repro.data.generators import gaussian_blobs
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.smc.session import SmcConfig

rng = random.Random(12)

# A shared cohort around (20, 5): each clinic holds 3 of its patients.
cohort = gaussian_blobs(rng, centers=[(20.0, 5.0)], points_per_blob=9,
                        spread=0.3)
points = {
    "clinic_a": cohort[0:3] + gaussian_blobs(
        rng, centers=[(5.0, 5.0)], points_per_blob=5, spread=0.4),
    "clinic_b": cohort[3:6],
    "clinic_c": cohort[6:9] + gaussian_blobs(
        rng, centers=[(40.0, 5.0)], points_per_blob=5, spread=0.4),
}

config = ProtocolConfig(eps=1.5, min_pts=6, scale=100,
                        smc=SmcConfig(paillier_bits=256, key_seed=6))

run = run_multiparty_horizontal_dbscan(points, config, seeds=[1, 2, 3])

rows = []
for name, labels in run.labels_by_party.items():
    cohort_members = labels[:3]
    rows.append([name, len(points[name]), str(labels),
                 "yes" if set(cohort_members) != {-1} else "no"])
print(render_table(
    ["clinic", "points", "labels", "cohort found"],
    rows, title="three-clinic consortium (min_pts=6, cohort of 3+3+3)"))
print(f"\nbytes over all pairwise channels: {run.stats['total_bytes']:,}")
print(f"secure comparisons: {run.comparisons}")
print(f"disclosures: {run.ledger.profile()}")

# Pairwise runs cannot find the cohort: any two clinics hold only 6 of
# the 9 points around (20, 5) but each query point also counts itself...
# with min_pts=6 a clinic pair has at most 3+3=6 -- exactly at the edge;
# drop one clinic's support and the margin disappears for boundary
# points.  The three-party run finds it robustly.
