"""Quickstart: cluster horizontally partitioned data in a few lines.

Two parties each hold some of the records (with all attributes); they
cooperate to run DBSCAN without revealing any record to the other side.

Run:  python examples/quickstart.py
"""

import random

from repro import ProtocolConfig, SmcConfig, cluster_partitioned
from repro.data.generators import gaussian_blobs, interleave_for_horizontal
from repro.data.partitioning import HorizontalPartition

# Synthesize three well-separated clusters (coordinates are quantized to
# a 1/100 grid by the generator, matching the default config scale).
points = gaussian_blobs(random.Random(7),
                        centers=[(0, 0), (6, 0), (3, 6)],
                        points_per_blob=8, spread=0.4)

# Deal the points randomly between Alice and Bob (Figure 2 partition).
alice_points, bob_points = interleave_for_horizontal(points,
                                                     random.Random(1))
partition = HorizontalPartition(alice_points=tuple(alice_points),
                                bob_points=tuple(bob_points))

config = ProtocolConfig(
    eps=1.2,          # DBSCAN radius, in original units
    min_pts=4,        # density threshold
    scale=100,        # fixed-point grid used by the generator
    smc=SmcConfig(paillier_bits=256, key_seed=1),
    alice_seed=10, bob_seed=20,
)

run = cluster_partitioned(partition, config)

print(f"protocol variant : {run.variant}")
print(f"alice labels     : {run.alice_labels}")
print(f"bob labels       : {run.bob_labels}")
print(f"bytes exchanged  : {run.stats['total_bytes']:,}")
print(f"secure compares  : {run.comparisons}")
print(f"wall time        : {run.elapsed_seconds:.2f}s")
print(f"disclosures      : {run.ledger.profile()}")
