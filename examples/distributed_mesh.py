"""A real 3-party run: each data holder as its own OS process over TCP.

Everything the other examples simulate inside one interpreter happens
here across genuine process boundaries: the orchestrator writes one
partition file per clinic, spawns ``python -m repro party`` three times,
and each process loads *only its own* partition, links up with its peers
over loopback TCP (versioned handshake binding session id, pair, party,
and config digest), and runs its driver pass and responder duties.

The run is then verified bit-for-bit against the in-process mesh on the
same seeds: identical labels, identical disclosure ledger, identical
per-pair message transcripts.  The latency you see is measured on real
sockets, not modeled.

Run:  python examples/distributed_mesh.py

To drive the parties by hand instead (three separate terminals):

    python -m repro orchestrate --parties 3 --points 12 \
        --run-dir /tmp/mesh-run --prepare-only
    # then, one per terminal:
    python -m repro party --run-dir /tmp/mesh-run --party party0
    python -m repro party --run-dir /tmp/mesh-run --party party1
    python -m repro party --run-dir /tmp/mesh-run --party party2
"""

import random

from repro.analysis.report import render_table
from repro.core.config import ProtocolConfig
from repro.data.generators import gaussian_blobs
from repro.runtime.orchestrator import (
    orchestrate_run,
    verify_against_in_process,
)
from repro.smc.session import SmcConfig

rng = random.Random(12)

# The three-clinic cohort from consortium_multiparty.py, now with every
# clinic as a separate networked process.
cohort = gaussian_blobs(rng, centers=[(20.0, 5.0)], points_per_blob=9,
                        spread=0.3)
points = {
    "clinic_a": cohort[0:3] + gaussian_blobs(
        rng, centers=[(5.0, 5.0)], points_per_blob=4, spread=0.4),
    "clinic_b": cohort[3:6],
    "clinic_c": cohort[6:9] + gaussian_blobs(
        rng, centers=[(40.0, 5.0)], points_per_blob=4, spread=0.4),
}
seeds = [1, 2, 3]

config = ProtocolConfig(eps=1.5, min_pts=6, scale=100,
                        smc=SmcConfig(paillier_bits=256, key_seed=6))

print("spawning one OS process per clinic (loopback TCP mesh)...")
run = orchestrate_run(points, config, seeds=seeds)

rows = [[name, len(points[name]), str(labels)]
        for name, labels in run.result.labels_by_party.items()]
print(render_table(["clinic", "points", "labels"], rows,
                   title="distributed three-clinic mesh "
                         "(separate processes, real sockets)"))
print(f"\nwall-clock over TCP: {run.elapsed_seconds:.2f}s  "
      f"bytes: {run.result.stats['total_bytes']:,}  "
      f"rounds: {run.result.stats['rounds']}")
print(f"secure comparisons: {run.result.comparisons}")
print(f"disclosures: {run.result.ledger.profile()}")
per_party = {name: f"{report.elapsed_seconds:.2f}s"
             for name, report in run.reports.items()}
print(f"per-party process wall-clock: {per_party}")

# Equivalence: the distributed run must be indistinguishable -- message
# for message -- from the in-process fabric on the same seeds.
checks = verify_against_in_process(run, points, config, seeds)
assert all(checks.values()), checks
print(f"\nverified bit-identical to the in-process mesh: "
      f"{', '.join(checks)}")
