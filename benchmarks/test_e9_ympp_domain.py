"""E9 -- YMPP cost vs domain bound n0 (paper Sections 3.8 / 4.2.2).

Paper claim: each YMPP execution transfers ``O(c2 * n0)`` bits (Alice's
step-5 sequence has one number per domain element).

Expected shape: measured bytes per execution essentially proportional to
n0 (the per-number width c2 grows only logarithmically, as 2*log2(n0)
bits -- see ympp_bit_parameter -- so the fit against n0*log(n0) is the
tighter model; both are reported).
"""

import math

from repro.analysis.communication import fit_through_origin
from repro.analysis.report import render_table
from repro.crypto.keycache import cached_rsa_keypair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.millionaires import ympp_less_than

N0_SWEEP = (8, 16, 32, 64, 128, 256)
KEYS = cached_rsa_keypair(512, 530)


def _run_sweep():
    rows = []
    linear_x, loglinear_x, measured = [], [], []
    for n0 in N0_SWEEP:
        channel = Channel()
        alice, bob = make_party_pair(channel, 1, 2)
        result = ympp_less_than(alice, n0 // 2, bob, n0 // 2 + 1, n0, KEYS)
        assert result is True
        total = channel.stats.total_bytes
        rows.append([n0, total, f"{total / n0:.1f}"])
        linear_x.append(float(n0))
        loglinear_x.append(n0 * math.log2(n0))
        measured.append(float(total))
    linear_fit = fit_through_origin(linear_x, measured)
    loglinear_fit = fit_through_origin(loglinear_x, measured)
    return rows, linear_fit, loglinear_fit


def test_e9_ympp_domain_scaling(benchmark, record_table):
    rows, linear_fit, loglinear_fit = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["n0", "bytes", "bytes/n0"], rows,
        title="E9: YMPP per-execution bytes vs domain bound  "
              f"[~n0 fit R^2={linear_fit.r_squared:.4f}; "
              f"~n0*log(n0) fit R^2={loglinear_fit.r_squared:.4f}]")
    record_table("e9_ympp_domain", table)

    assert linear_fit.r_squared > 0.98, "cost must scale ~linearly in n0"
    # Sanity: 32x the domain costs much more, but far from 100x.
    assert 10 < rows[-1][1] / rows[0][1] < 80
