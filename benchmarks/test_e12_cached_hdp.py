"""E12 -- ablation: ciphertext caching vs per-query permutation.

DESIGN.md calls out the design choice hidden in Algorithm 4's
``SetOfPointsOfBobPermutation``: re-encrypting and re-sending the peer's
coordinates for every query is what buys unlinkability.  The obvious
engineering optimization -- cache each peer point's encrypted
coordinates and reuse them across queries -- saves the request half of
every repeated Multiplication Protocol batch, but puts a stable point id
on the wire, re-enabling exactly the Figure 1 linkage the permutation
exists to prevent.

Expected shape: cached variant saves bytes on clustered workloads
(every point queried during expansion) while its ledger shows
``linked_neighbor_id`` disclosures; the base variant shows zero.
"""

from benchmarks.conftest import clustered_points, protocol_config
from repro.analysis.report import render_table
from repro.clustering.labels import canonicalize
from repro.core.config import ProtocolConfig
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition
from repro.smc.session import SmcConfig

SIZES = (4, 9, 16)


def _config(cached: bool) -> ProtocolConfig:
    # Pinned to the per-point pipeline: this experiment measures the
    # *seed-era* cache-vs-permutation trade.  The PR-1 batched pipeline
    # (batched_region_queries=True) stops re-encrypting the peer's
    # coordinates per query in the base path, which absorbs most of the
    # byte saving the cache used to buy (the linkability cost stays the
    # same either way -- see tests/core/test_batched_hdp.py).
    return ProtocolConfig(
        eps=1.0, min_pts=3, scale=10,
        smc=SmcConfig(paillier_bits=256, key_seed=560, mask_sigma=8),
        alice_seed=31, bob_seed=32, cache_peer_ciphertexts=cached,
        batched_region_queries=False)


def _run_sweep():
    rows = []
    savings = []
    for size in SIZES:
        partition = HorizontalPartition(
            alice_points=clustered_points(size),
            bob_points=clustered_points(size, origin=(3, 3)))
        base = run_horizontal_dbscan(partition, _config(False))
        cached = run_horizontal_dbscan(partition, _config(True))
        assert canonicalize(base.alice_labels) \
            == canonicalize(cached.alice_labels)
        saving = 1.0 - cached.stats["total_bytes"] / base.stats["total_bytes"]
        savings.append(saving)
        rows.append([
            2 * size,
            base.stats["total_bytes"],
            cached.stats["total_bytes"],
            f"{100 * saving:.1f}%",
            base.ledger.profile().get("linked_neighbor_id", 0),
            cached.ledger.profile().get("linked_neighbor_id", 0),
        ])
    return rows, savings


def test_e12_cached_hdp_ablation(benchmark, record_table):
    rows, savings = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["n", "base_bytes", "cached_bytes", "saving",
         "base_linked_ids", "cached_linked_ids"],
        rows,
        title="E12: ciphertext-cache ablation (bytes saved vs "
              "linkability introduced)")
    record_table("e12_cached_hdp", table)

    # The optimization genuinely saves bytes on clustered data...
    assert all(saving > 0.02 for saving in savings)
    # ...at the cost of linkable hits, which the base never discloses.
    assert all(row[4] == 0 for row in rows)
    assert all(row[5] > 0 for row in rows)
