"""E13 -- crypto-layer ablations: CRT decryption and the g = n+1 fast
encrypt path.

Neither is in the paper; both are standard Paillier engineering, and the
ablation quantifies what the from-scratch implementation gains from
them (and verifies bit-identical outputs).
"""

import random
import time

from repro.analysis.report import render_table
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.paillier import generate_paillier_keypair

BATCH = 60


def _decrypt_ablation():
    rows = []
    speedups = []
    for bits in (256, 512):
        keys = cached_paillier_keypair(bits, 570)
        rng = random.Random(1)
        ciphers = [keys.public_key.encrypt(rng.randrange(keys.public_key.n),
                                           rng).value
                   for __ in range(BATCH)]
        started = time.perf_counter()
        crt = [keys.private_key.decrypt_raw(c) for c in ciphers]
        crt_time = time.perf_counter() - started
        started = time.perf_counter()
        std = [keys.private_key.decrypt_raw_standard(c) for c in ciphers]
        std_time = time.perf_counter() - started
        assert crt == std
        speedup = std_time / crt_time
        speedups.append(speedup)
        rows.append([bits, f"{1000 * std_time:.1f}", f"{1000 * crt_time:.1f}",
                     f"{speedup:.2f}x"])
    return rows, speedups


def _encrypt_ablation():
    rows = []
    rng = random.Random(2)
    fast = cached_paillier_keypair(256, 571)           # g = n + 1
    slow = generate_paillier_keypair(256, random.Random(3), random_g=True)
    for name, keys in (("g=n+1", fast), ("random g", slow)):
        messages = [rng.randrange(keys.public_key.n) for __ in range(BATCH)]
        started = time.perf_counter()
        for message in messages:
            keys.public_key.encrypt(message, rng)
        elapsed = time.perf_counter() - started
        rows.append([name, f"{1000 * elapsed:.1f}"])
    return rows


def test_e13_crypto_ablations(benchmark, record_table):
    (decrypt_rows, speedups) = benchmark.pedantic(_decrypt_ablation,
                                                  rounds=1, iterations=1)
    encrypt_rows = _encrypt_ablation()
    table = render_table(
        ["paillier_bits", f"standard_ms({BATCH})", f"crt_ms({BATCH})",
         "speedup"],
        decrypt_rows, title="E13a: CRT vs standard decryption")
    table += "\n\n" + render_table(
        ["generator", f"encrypt_ms({BATCH})"], encrypt_rows,
        title="E13b: fast-path vs random-g encryption")
    record_table("e13_crypto_ablations", table)

    # CRT should help at both sizes (generous floor for noisy CI boxes).
    assert all(speedup > 1.2 for speedup in speedups)
    # Random-g encryption pays an extra full-width modexp.
    fast_ms = float(encrypt_rows[0][1])
    slow_ms = float(encrypt_rows[1][1])
    assert slow_ms > fast_ms
