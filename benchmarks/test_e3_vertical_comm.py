"""E3 -- vertical protocol communication scaling (paper Section 4.3.2).

Paper claim: ``O(c2*n0*n^2)`` bits total -- one secure comparison per
ordered record pair, so measured bytes should fit ``a * n(n-1)`` with
R^2 near 1.
"""

from benchmarks.conftest import protocol_config, spread_points
from repro.analysis.communication import fit_through_origin, vertical_work_term
from repro.analysis.report import render_table
from repro.core.vertical import run_vertical_dbscan
from repro.data.dataset import Dataset
from repro.data.partitioning import partition_vertical

N_SWEEP = (4, 8, 12, 16)


def _run_sweep():
    rows = []
    work_terms = []
    measured = []
    for n in N_SWEEP:
        dataset = Dataset.from_points(
            [(30 * i, 30 * i) for i in range(n)])  # isolated points
        partition = partition_vertical(dataset, 1)
        config = protocol_config(eps=1.0, min_pts=2)
        result = run_vertical_dbscan(partition, config)
        work_terms.append(float(vertical_work_term(n)))
        measured.append(float(result.stats["total_bytes"]))
        rows.append([n, vertical_work_term(n),
                     result.stats["total_bytes"], result.comparisons])
    fit = fit_through_origin(work_terms, measured)
    return rows, fit


def test_e3_vertical_comm_scaling(benchmark, record_table):
    rows, fit = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["n", "n(n-1)", "bytes", "comparisons"], rows,
        title="E3: vertical bytes vs n(n-1)  "
              f"[fit bytes ~ {fit.coefficient:.0f} * pairs, "
              f"R^2={fit.r_squared:.4f}]")
    record_table("e3_vertical_comm", table)

    assert fit.r_squared > 0.98, \
        "bytes must be proportional to n^2 (Sec 4.3.2)"
    # Comparisons are exactly n(n-1) on all-isolated data.
    for row in rows:
        assert row[3] == row[1]
