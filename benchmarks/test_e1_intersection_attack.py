"""E1 -- the Figure 1 intersection attack (paper Section 1).

Paper claim: a Kumar-style protocol that reveals *linkable*
neighbourhood hits lets Bob localize one of Alice's records to the
(possibly tiny) intersection of his points' Eps-disks; the paper's
protocols reveal only per-query counts over fresh permutations, leaving
Bob with (at best) the disks' union.

Expected shape: Kumar posterior area strictly shrinking in the number of
observer points; count-only posterior flat at the union.
"""

import random

from repro.analysis.attacks import (
    Domain2D,
    intersection_attack_report,
    ring_of_observers,
)
from repro.analysis.report import format_ratio, render_table

EPS = 2.0
DOMAIN = Domain2D(x_min=-10, x_max=10, y_min=-10, y_max=10)
OBSERVER_COUNTS = (1, 2, 3, 4, 6, 8, 12)
SAMPLES = 60000


def _run_sweep():
    rows = []
    reports = []
    for count in OBSERVER_COUNTS:
        observers = ring_of_observers((0.0, 0.0), count,
                                      distance=EPS * 0.85)
        report = intersection_attack_report(
            observers, EPS, DOMAIN, random.Random(42), samples=SAMPLES)
        reports.append(report)
        rows.append([count,
                     f"{report.kumar_posterior_area:.3f}",
                     format_ratio(report.kumar_localization),
                     f"{report.permuted_posterior_area:.2f}",
                     format_ratio(report.permuted_localization)])
    return rows, reports


def test_e1_intersection_attack(benchmark, record_table):
    rows, reports = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["observers", "kumar_area", "kumar_frac", "ours_area", "ours_frac"],
        rows,
        title="E1: Figure 1 intersection attack "
              f"(eps={EPS}, prior={DOMAIN.area:.0f})")
    record_table("e1_intersection_attack", table)

    # Shape assertions (common random numbers make these deterministic).
    kumar = [r.kumar_posterior_area for r in reports]
    ours = [r.permuted_posterior_area for r in reports]
    assert kumar[0] > kumar[3] > kumar[-1] > 0, \
        "Kumar posterior must shrink with more linkable observers"
    import math
    single_disk = math.pi * EPS * EPS
    assert all(area >= 0.8 * single_disk for area in ours), \
        "count-only posterior must never shrink below one disk"
    # The end-state gap is the privacy win: orders of magnitude.
    assert ours[-1] / kumar[-1] > 20
