"""E5 -- correctness of all protocol variants (Theorems 9-11).

E5a: every secure protocol reproduces its plaintext reference semantics
*exactly* (horizontal/enhanced -> union-density model; vertical and
arbitrary -> centralized DBSCAN) across the paper-motivated workloads.

E5b: measured divergence between the horizontal per-party semantics and
centralized DBSCAN (ARI / noise agreement) -- the honest finding that
Algorithm 3/4 does not chain clusters through the other party's points
(DESIGN.md Section 2, item 1).
"""

import random

from benchmarks.conftest import protocol_config
from repro.analysis.report import render_table
from repro.clustering.dbscan import dbscan
from repro.clustering.labels import canonicalize
from repro.clustering.metrics import adjusted_rand_index, noise_agreement
from repro.clustering.union_density import union_density_dbscan
from repro.core.api import cluster_partitioned
from repro.data.dataset import Dataset
from repro.data.generators import (
    concentric_rings,
    gaussian_blobs,
    grid_clusters,
    interleave_for_horizontal,
    two_moons,
)
from repro.data.partitioning import (
    HorizontalPartition,
    partition_arbitrary,
    partition_vertical,
)


def _workloads():
    rng = random.Random(77)
    return {
        "blobs": (gaussian_blobs(rng, centers=[(0, 0), (6, 6)],
                                 points_per_blob=10, spread=0.4), 1.2, 4),
        "moons": (two_moons(rng, points_per_moon=14, noise=0.1), 0.9, 3),
        "rings": (concentric_rings(rng, points_per_ring=14, noise=0.08),
                  0.9, 3),
        "grid": (grid_clusters(clusters_per_side=2, cluster_size=3), 0.5, 3),
    }


def _run_matrix():
    rows = []
    all_exact = True
    for name, (points, eps, min_pts) in _workloads().items():
        config = protocol_config(eps=eps, min_pts=min_pts, backend="oracle",
                                 scale=100)
        alice_pts, bob_pts = interleave_for_horizontal(points,
                                                       random.Random(3))
        partition = HorizontalPartition(alice_points=tuple(alice_pts),
                                        bob_points=tuple(bob_pts))
        reference = dbscan(points, config.eps_squared, min_pts)

        for variant, enhanced in (("horizontal", False), ("enhanced", True)):
            run = cluster_partitioned(partition, config, enhanced=enhanced)
            ref_alice = union_density_dbscan(
                alice_pts, bob_pts, config.eps_squared, min_pts)
            ref_bob = union_density_dbscan(
                bob_pts, alice_pts, config.eps_squared, min_pts)
            exact = (canonicalize(run.alice_labels)
                     == canonicalize(ref_alice.labels.as_tuple())
                     and canonicalize(run.bob_labels)
                     == canonicalize(ref_bob.labels.as_tuple()))
            all_exact &= exact
            rows.append([name, variant, "union-density", exact])

        dataset = Dataset.from_points(points)
        vertical_run = cluster_partitioned(partition_vertical(dataset, 1),
                                           config)
        exact = (canonicalize(vertical_run.alice_labels)
                 == canonicalize(reference.as_tuple()))
        all_exact &= exact
        rows.append([name, "vertical", "centralized", exact])

        arbitrary_run = cluster_partitioned(
            partition_arbitrary(dataset, random.Random(5)), config)
        exact = (canonicalize(arbitrary_run.alice_labels)
                 == canonicalize(reference.as_tuple()))
        all_exact &= exact
        rows.append([name, "arbitrary", "centralized", exact])
    return rows, all_exact


def _run_divergence():
    """E5b: horizontal semantics vs centralized, separated vs bridged."""
    rows = []
    config = protocol_config(eps=1.5, min_pts=3, backend="oracle", scale=1)

    # Separated clusters: both parties see the same cluster structure.
    separated = [(i, j) for i in range(3) for j in range(3)]
    separated += [(i + 30, j) for i in range(3) for j in range(3)]
    alice_pts, bob_pts = interleave_for_horizontal(separated,
                                                   random.Random(1))
    run = cluster_partitioned(
        HorizontalPartition(alice_points=tuple(alice_pts),
                            bob_points=tuple(bob_pts)), config)
    joint = dbscan(alice_pts + bob_pts, config.eps_squared, 3)
    joint_alice = joint.as_tuple()[:len(alice_pts)]
    rows.append(["separated",
                 f"{adjusted_rand_index(run.alice_labels, joint_alice):.3f}",
                 f"{noise_agreement(run.alice_labels, joint_alice):.3f}"])

    # Bridged clusters: Alice's two groups joined only by Bob's bridge.
    left = [(i, j) for i in range(3) for j in range(3)]
    right = [(i + 20, j) for i in range(3) for j in range(3)]
    bridge = [(i, 1) for i in range(3, 20)]
    run = cluster_partitioned(
        HorizontalPartition(alice_points=tuple(left + right),
                            bob_points=tuple(bridge)), config)
    joint = dbscan(left + right + bridge, config.eps_squared, 3)
    joint_alice = joint.as_tuple()[:len(left + right)]
    rows.append(["bridged",
                 f"{adjusted_rand_index(run.alice_labels, joint_alice):.3f}",
                 f"{noise_agreement(run.alice_labels, joint_alice):.3f}"])
    return rows


def test_e5_correctness(benchmark, record_table):
    (rows, all_exact) = benchmark.pedantic(_run_matrix, rounds=1,
                                           iterations=1)
    divergence_rows = _run_divergence()
    table = render_table(
        ["workload", "variant", "reference", "exact_match"], rows,
        title="E5a: protocol output == reference semantics")
    table += "\n\n" + render_table(
        ["geometry", "ARI_vs_centralized", "noise_agreement"],
        divergence_rows,
        title="E5b: horizontal per-party semantics vs centralized DBSCAN")
    record_table("e5_correctness", table)

    assert all_exact, "every variant must match its reference exactly"
    # Separated data: perfect agreement with centralized.
    assert float(divergence_rows[0][1]) == 1.0
    # Bridged data: documented divergence (ARI < 1).
    assert float(divergence_rows[1][1]) < 1.0
