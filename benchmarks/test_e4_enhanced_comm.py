"""E4 -- enhanced protocol cost vs base horizontal (paper Section 5.1).

Paper claim: the enhanced protocol costs
``O(c1*m*l(n-l) + c2*n0*l(n-l))`` -- the *same order* as the base
protocol; its privacy gain is not paid for with asymptotics.

Expected shape: enhanced/base byte ratio roughly constant across n
(bounded, no growth trend), while the enhanced ledger shows zero
neighbour-count disclosures.

A second table isolates the protocol's favourable special case: when
points are locally dense (k <= 0 shortcut), the enhanced protocol
engages in *no* interaction for those queries and gets cheaper than the
base protocol, which always scans the peer's points.
"""

from benchmarks.conftest import clustered_points, protocol_config, spread_points
from repro.analysis.report import render_table
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition

N_SWEEP = (6, 10, 14)


def _run_sweep():
    rows = []
    ratios = []
    for n in N_SWEEP:
        l = n // 2
        partition = HorizontalPartition(
            alice_points=spread_points(l),
            bob_points=spread_points(n - l, offset=7))
        config = protocol_config(eps=1.0, min_pts=2)
        base = run_horizontal_dbscan(partition, config)
        enhanced = run_enhanced_horizontal_dbscan(partition, config)
        ratio = enhanced.stats["total_bytes"] / base.stats["total_bytes"]
        ratios.append(ratio)
        rows.append([n, base.stats["total_bytes"],
                     enhanced.stats["total_bytes"], f"{ratio:.2f}",
                     enhanced.ledger.profile().get("neighbor_count", 0)])
    return rows, ratios


def _run_dense_case():
    """Locally dense data: the k <= 0 shortcut skips peer interaction."""
    partition = HorizontalPartition(
        alice_points=clustered_points(9),
        bob_points=clustered_points(9, origin=(500, 500)))
    config = protocol_config(eps=1.0, min_pts=3)
    base = run_horizontal_dbscan(partition, config)
    enhanced = run_enhanced_horizontal_dbscan(partition, config)
    return base.stats["total_bytes"], enhanced.stats["total_bytes"]


def test_e4_enhanced_comm(benchmark, record_table):
    rows, ratios = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    dense_base, dense_enhanced = _run_dense_case()
    table = render_table(
        ["n", "base_bytes", "enhanced_bytes", "ratio", "counts_leaked"],
        rows,
        title="E4: enhanced vs base horizontal cost (same-order claim)")
    table += ("\n\nE4b: locally dense data (k<=0 shortcut): "
              f"base={dense_base:,} bytes, enhanced={dense_enhanced:,} "
              f"bytes (ratio {dense_enhanced / dense_base:.2f})")
    record_table("e4_enhanced_comm", table)

    # Same order: ratio bounded and not growing with n.
    assert max(ratios) < 8.0
    assert ratios[-1] < ratios[0] * 2.0, \
        "enhanced/base ratio must not grow with n (same-order claim)"
    # Privacy side of the trade: zero neighbour counts disclosed.
    assert all(row[4] == 0 for row in rows)
    # Dense shortcut makes enhanced strictly cheaper.
    assert dense_enhanced < dense_base
