"""E7 -- disclosure profiles across protocol variants (Thms 9 vs 11).

Paper claims, as a strict leakage ordering:

- Kumar-style [14]: linkable neighbourhood identities (enables Figure 1).
- Base horizontal (Thm 9): per-query neighbour *counts* (plus, as the
  ledger makes visible, the zero-sum-mask dot products -- a write-up gap
  the paper does not discuss; the ``blind_cross_sum`` option removes it).
- Enhanced (Thm 11): a single core bit per engaged query, nothing at all
  for own-density-sufficient or impossible queries.

Expected shape: strictly decreasing disclosure counts down the table,
with identical clustering output everywhere.
"""

from benchmarks.conftest import protocol_config, spread_points
from repro.analysis.report import render_table
from repro.clustering.labels import canonicalize
from repro.clustering.neighborhoods import squared_distance
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition

ALICE_POINTS = tuple([(i * 6, 0) for i in range(4)]
                     + [(100 + i * 6, 0) for i in range(3)])
BOB_POINTS = tuple([(i * 6, 4) for i in range(4)]
                   + [(200, 200), (206, 200), (203, 204)])
CONFIG = protocol_config(eps=1.0, min_pts=3, backend="oracle", scale=10)


def _kumar_style_disclosures() -> int:
    """What a linkable protocol reveals: one identified (query point,
    peer point) incidence per in-range cross pair, per direction."""
    eps_squared = CONFIG.eps_squared
    hits = 0
    for a in ALICE_POINTS:
        for b in BOB_POINTS:
            if squared_distance(a, b) <= eps_squared:
                hits += 2  # each party can link the other's record id
    return hits


def _run_profiles():
    base = run_horizontal_dbscan(
        HorizontalPartition(alice_points=ALICE_POINTS,
                            bob_points=BOB_POINTS), CONFIG)
    blinded = run_horizontal_dbscan(
        HorizontalPartition(alice_points=ALICE_POINTS,
                            bob_points=BOB_POINTS),
        protocol_config(eps=1.0, min_pts=3, backend="oracle", scale=10,
                        blind_cross_sum=True))
    enhanced = run_enhanced_horizontal_dbscan(
        HorizontalPartition(alice_points=ALICE_POINTS,
                            bob_points=BOB_POINTS), CONFIG)
    return base, blinded, enhanced


def test_e7_leakage_profiles(benchmark, record_table):
    base, blinded, enhanced = benchmark.pedantic(_run_profiles, rounds=1,
                                                 iterations=1)
    kumar_ids = _kumar_style_disclosures()

    def row(name, profile):
        return [name,
                profile.get("linked_neighbor_id", 0),
                profile.get("neighbor_count", 0),
                profile.get("neighbor_bit", 0),
                profile.get("dot_product", 0),
                profile.get("order_bit", 0),
                profile.get("core_bit", 0)]

    rows = [
        ["kumar[14]", kumar_ids, "n/a", "n/a", "n/a", 0, 0],
        row("base (Thm 9)", base.ledger.profile()),
        row("base+blind", blinded.ledger.profile()),
        row("enhanced (Thm 11)", enhanced.ledger.profile()),
    ]
    table = render_table(
        ["protocol", "linked_ids", "counts", "bits", "dot_prods",
         "order_bits", "core_bits"],
        rows, title="E7: disclosure profiles (events per full run)")
    record_table("e7_leakage", table)

    # Identical clustering everywhere.
    assert canonicalize(enhanced.alice_labels) \
        == canonicalize(base.alice_labels)
    assert canonicalize(blinded.alice_labels) \
        == canonicalize(base.alice_labels)

    # The strict ordering.
    assert kumar_ids > 0
    base_profile = base.ledger.profile()
    enhanced_profile = enhanced.ledger.profile()
    assert base_profile.get("linked_neighbor_id", 0) == 0
    assert base_profile["neighbor_count"] > 0
    assert base_profile["dot_product"] > 0
    assert blinded.ledger.profile().get("dot_product", 0) == 0
    assert enhanced_profile.get("neighbor_count", 0) == 0
    assert enhanced_profile.get("dot_product", 0) == 0
    assert 0 < enhanced_profile["core_bit"] <= base_profile["neighbor_count"]
