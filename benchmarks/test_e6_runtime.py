"""E6 -- runtime scaling vs Paillier key size and dataset size.

The paper motivates problem-specific protocols with efficiency
(Section 2: generic Yao circuits are impractical).  This experiment
pins the constant factors: wall-clock per protocol run as the Paillier
modulus grows (modular exponentiation is ~cubic in key size) and as n
grows (quadratic pair count).
"""

import time

from benchmarks.conftest import spread_points
from repro.analysis.report import render_table
from repro.core.config import ProtocolConfig
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition
from repro.smc.session import SmcConfig

KEY_SIZES = (128, 256, 384)
N_SWEEP = (4, 8, 12)


def _config(bits: int) -> ProtocolConfig:
    return ProtocolConfig(
        eps=1.0, min_pts=2, scale=10,
        smc=SmcConfig(paillier_bits=bits, key_seed=510, mask_sigma=8),
        alice_seed=23, bob_seed=24)


def _run_key_sweep():
    partition = HorizontalPartition(alice_points=spread_points(4),
                                    bob_points=spread_points(4, offset=7))
    rows = []
    timings = []
    for bits in KEY_SIZES:
        started = time.perf_counter()
        result = run_horizontal_dbscan(partition, _config(bits))
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append([bits, f"{elapsed:.2f}",
                     result.stats["total_bytes"]])
    return rows, timings


def _run_n_sweep():
    rows = []
    timings = []
    for n in N_SWEEP:
        partition = HorizontalPartition(
            alice_points=spread_points(n // 2),
            bob_points=spread_points(n - n // 2, offset=7))
        started = time.perf_counter()
        run_horizontal_dbscan(partition, _config(256))
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append([n, f"{elapsed:.2f}"])
    return rows, timings


def test_e6_runtime(benchmark, record_table):
    (key_rows, key_timings) = benchmark.pedantic(_run_key_sweep, rounds=1,
                                                 iterations=1)
    n_rows, n_timings = _run_n_sweep()
    table = render_table(["paillier_bits", "seconds", "bytes"], key_rows,
                         title="E6a: runtime vs key size (n=8 horizontal)")
    table += "\n\n" + render_table(
        ["n", "seconds"], n_rows,
        title="E6b: runtime vs dataset size (256-bit keys)")
    record_table("e6_runtime", table)

    # Bigger keys must cost more time; bytes also grow with key size.
    assert key_timings[-1] > key_timings[0]
    assert key_rows[-1][2] > key_rows[0][2]
    # Quadratic-ish growth in n: 12 vs 4 points is 9x the pairs.
    assert n_timings[-1] > 2.0 * n_timings[0]
