"""E6 -- runtime scaling vs Paillier key size and dataset size.

The paper motivates problem-specific protocols with efficiency
(Section 2: generic Yao circuits are impractical).  This experiment
pins the constant factors: wall-clock per protocol run as the Paillier
modulus grows (modular exponentiation is ~cubic in key size) and as n
grows (quadratic pair count).  E6c is the PR-1 before/after ablation:
the seed-era per-point pipeline vs batched region queries with the
Paillier randomness precomputed offline (same labels, same disclosures
-- only where the time goes changes).

Note: as of PR 1 the E6a/E6b sweeps measure the *current default*
pipeline (batched region queries, on-demand pools), so their absolute
seconds/bytes are not comparable with pre-PR-1 recorded tables; E6c
carries the explicit before/after comparison.
"""

import time

from benchmarks.conftest import spread_points
from repro.analysis.report import render_table
from repro.core.config import ProtocolConfig
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

KEY_SIZES = (128, 256, 384)
N_SWEEP = (4, 8, 12)


def _config(bits: int, *, batched: bool = True,
            precompute: bool = True) -> ProtocolConfig:
    return ProtocolConfig(
        eps=1.0, min_pts=2, scale=10,
        smc=SmcConfig(paillier_bits=bits, key_seed=510, mask_sigma=8,
                      precompute=precompute),
        alice_seed=23, bob_seed=24, batched_region_queries=batched)


def _run_key_sweep():
    partition = HorizontalPartition(alice_points=spread_points(4),
                                    bob_points=spread_points(4, offset=7))
    rows = []
    timings = []
    for bits in KEY_SIZES:
        started = time.perf_counter()
        result = run_horizontal_dbscan(partition, _config(bits))
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append([bits, f"{elapsed:.2f}",
                     result.stats["total_bytes"]])
    return rows, timings


def _run_n_sweep():
    rows = []
    timings = []
    for n in N_SWEEP:
        partition = HorizontalPartition(
            alice_points=spread_points(n // 2),
            bob_points=spread_points(n - n // 2, offset=7))
        started = time.perf_counter()
        run_horizontal_dbscan(partition, _config(256))
        elapsed = time.perf_counter() - started
        timings.append(elapsed)
        rows.append([n, f"{elapsed:.2f}"])
    return rows, timings


def _run_pipeline_ablation():
    """E6c: seed pipeline vs offline/online pipeline on one workload."""
    partition = HorizontalPartition(
        alice_points=spread_points(6, step=7),
        bob_points=spread_points(6, offset=3, step=7))

    seed_config = _config(256, batched=False, precompute=False)
    started = time.perf_counter()
    seed_result = run_horizontal_dbscan(partition, seed_config)
    seed_seconds = time.perf_counter() - started

    # Probe run learns the randomness budget; the real run pregenerates
    # it offline and times only the online protocol.
    pipeline_config = _config(256)
    probe_session = SmcSession(
        *make_party_pair(Channel(), 23, 24), pipeline_config.smc)
    run_horizontal_dbscan(partition, pipeline_config, session=probe_session)
    plan = {key: report["consumed"]
            for key, report in probe_session.pool_report().items()}

    session = SmcSession(*make_party_pair(Channel(), 23, 24),
                         pipeline_config.smc)
    started = time.perf_counter()
    session.precompute_pools(plan)
    offline_seconds = time.perf_counter() - started
    started = time.perf_counter()
    pipeline_result = run_horizontal_dbscan(partition, pipeline_config,
                                            session=session)
    online_seconds = time.perf_counter() - started

    assert seed_result.alice_labels == pipeline_result.alice_labels
    assert seed_result.bob_labels == pipeline_result.bob_labels
    assert seed_result.ledger.events == pipeline_result.ledger.events

    speedup = seed_seconds / online_seconds
    row = [f"{seed_seconds:.2f}", f"{offline_seconds:.2f}",
           f"{online_seconds:.2f}", f"{speedup:.1f}x",
           seed_result.stats["total_messages"],
           pipeline_result.stats["total_messages"]]
    return row, speedup


def test_e6_runtime(benchmark, record_table):
    (key_rows, key_timings) = benchmark.pedantic(_run_key_sweep, rounds=1,
                                                 iterations=1)
    n_rows, n_timings = _run_n_sweep()
    ablation_row, speedup = _run_pipeline_ablation()
    table = render_table(["paillier_bits", "seconds", "bytes"], key_rows,
                         title="E6a: runtime vs key size (n=8 horizontal)")
    table += "\n\n" + render_table(
        ["n", "seconds"], n_rows,
        title="E6b: runtime vs dataset size (256-bit keys)")
    table += "\n\n" + render_table(
        ["seed_s", "offline_s", "online_s", "online_speedup",
         "seed_msgs", "pipeline_msgs"],
        [ablation_row],
        title="E6c: offline/online pipeline ablation (n=12 horizontal, "
              "bit-identical labels and disclosures)")
    record_table("e6_runtime", table)

    # Bigger keys must cost more time; bytes also grow with key size.
    assert key_timings[-1] > key_timings[0]
    assert key_rows[-1][2] > key_rows[0][2]
    # Quadratic-ish growth in n: 12 vs 4 points is 9x the pairs.
    assert n_timings[-1] > 2.0 * n_timings[0]
    # The offline/online split must pay for itself online.  Typical
    # speedup is 3-4x; the assertion bound is loose because wall-clock
    # ratios on shared machines absorb scheduling noise (run_quick.py
    # reports the precise number).
    assert speedup > 1.0
