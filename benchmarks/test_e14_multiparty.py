"""E14 -- multi-party extension scaling (paper Section 1's noted
extension).

The k-party horizontal protocol runs one pairwise HDP batch per
(driver, peer) pair per query, so total communication should scale with
the number of ordered party pairs ``k*(k-1)`` at fixed per-party load.

Expected shape: bytes vs k(k-1) roughly proportional; per-party labels
always match the union-density reference.
"""

from benchmarks.conftest import protocol_config
from repro.analysis.communication import fit_through_origin
from repro.analysis.report import render_table
from repro.clustering.labels import canonicalize
from repro.clustering.union_density import union_density_dbscan
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan

K_SWEEP = (2, 3, 4)
POINTS_PER_PARTY = 3


def _points_for(k: int) -> dict[str, list]:
    return {
        f"party{i}": [(200 * i + 30 * j, 0)
                      for j in range(POINTS_PER_PARTY)]
        for i in range(k)
    }


def _run_sweep():
    rows = []
    xs, ys = [], []
    for k in K_SWEEP:
        points = _points_for(k)
        config = protocol_config(eps=1.0, min_pts=2)
        result = run_multiparty_horizontal_dbscan(
            points, config, seeds=list(range(k)))
        for name, own in points.items():
            others = [p for other, pts in points.items()
                      if other != name for p in pts]
            reference = union_density_dbscan(own, others,
                                             config.eps_squared,
                                             config.min_pts)
            assert canonicalize(result.labels_by_party[name]) \
                == canonicalize(reference.labels.as_tuple())
        pair_term = k * (k - 1)
        xs.append(float(pair_term))
        ys.append(float(result.stats["total_bytes"]))
        rows.append([k, pair_term, result.stats["total_bytes"],
                     result.comparisons])
    fit = fit_through_origin(xs, ys)
    return rows, fit


def test_e14_multiparty_scaling(benchmark, record_table):
    rows, fit = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["parties", "k(k-1)", "bytes", "comparisons"], rows,
        title="E14: multi-party horizontal scaling "
              f"[fit bytes ~ {fit.coefficient:.0f} * pairs, "
              f"R^2={fit.r_squared:.4f}]")
    record_table("e14_multiparty", table)

    assert fit.r_squared > 0.95, \
        "bytes must scale with the ordered-pair count"
