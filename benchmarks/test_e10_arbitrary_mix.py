"""E10 -- arbitrary-partition cost vs ownership mix (paper Section 4.4).

The arbitrary protocol decomposes each pair's distance into same-owner
terms (free, accumulated locally) and cross-owner terms (paid for with
Multiplication Protocol ciphertexts).  The cost driver is therefore the
number of cross-owner attribute pairs.

This sweep controls that driver directly: ``k`` of the ``n`` records are
wholly Bob's, the rest wholly Alice's, giving exactly
``2 * k * (n-k) * m`` cross attribute pairs.  A fully attribute-split
(vertical-style) configuration is included for reference.

Expected shape: bytes monotonically increasing in the cross-pair count;
comparison count pinned at n(n-1) regardless of mix.

(A note recorded by the first version of this experiment: under
*uniformly random* ownership the expected cross-pair count is identical
for every shared_fraction, so that sweep is flat by construction --
the controlled sweep here is the informative one.)
"""

from benchmarks.conftest import protocol_config
from repro.analysis.report import render_table
from repro.core.arbitrary import run_arbitrary_dbscan
from repro.data.dataset import Dataset
from repro.data.partitioning import ALICE, BOB, partition_from_masks

N = 10
M = 2
K_SWEEP = (0, 1, 2, 3, 5)


def _cross_pairs(partition) -> int:
    total = 0
    for x in range(partition.size):
        for y in range(partition.size):
            if x == y:
                continue
            for attribute in range(partition.dimensions):
                if (partition.owner_of(x, attribute)
                        != partition.owner_of(y, attribute)):
                    total += 1
    return total


def _run_sweep():
    dataset = Dataset.from_points(
        [(17 * i, 13 * i) for i in range(N)])  # isolated points
    rows = []
    measured = []
    for k in K_SWEEP:
        owner_rows = [[BOB] * M if record < k else [ALICE] * M
                      for record in range(N)]
        partition = partition_from_masks(dataset, owner_rows)
        config = protocol_config(eps=1.0, min_pts=2)
        result = run_arbitrary_dbscan(partition, config)
        crosses = _cross_pairs(partition)
        assert crosses == 2 * k * (N - k) * M
        rows.append([f"k={k}", crosses, result.stats["total_bytes"],
                     result.comparisons])
        measured.append(result.stats["total_bytes"])

    # Vertical-style reference: every record split column-wise.
    split = partition_from_masks(dataset, [[ALICE, BOB]] * N)
    config = protocol_config(eps=1.0, min_pts=2)
    result = run_arbitrary_dbscan(split, config)
    rows.append(["all-split", _cross_pairs(split),
                 result.stats["total_bytes"], result.comparisons])
    return rows, measured


def test_e10_arbitrary_mix(benchmark, record_table):
    rows, measured = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["ownership", "cross_attr_pairs", "bytes", "comparisons"],
        rows, title=f"E10: arbitrary partition ownership sweep, n={N}, m={M}")
    record_table("e10_arbitrary_mix", table)

    # Comparison count is mix-independent: one per ordered pair.
    assert all(row[3] == N * (N - 1) for row in rows)
    # Bytes strictly increase with the cross-pair count.
    assert all(earlier < later
               for earlier, later in zip(measured, measured[1:])), measured
    # k=0 (no cross pairs) is the cheap floor; the gap above it is the
    # Multiplication Protocol traffic (comparisons are a fixed cost).
    assert measured[-1] > 1.15 * measured[0]
    # Vertical-style column ownership generates NO cross-owner pairs --
    # the structural reason Protocol VDP needs no Multiplication Protocol.
    assert rows[-1][1] == 0
