"""Shared benchmark helpers.

Every experiment prints a paper-style table and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md rows can be regenerated from
artifacts rather than scrollback.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Write (and echo) an experiment's output table."""

    def _record(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[written to {path}]")

    return _record


def protocol_config(eps: float, min_pts: int, *, backend: str = "bitwise",
                    scale: int = 10, key_seed: int = 500,
                    mask_sigma: int = 8, **kwargs):
    """Benchmark-grade config: modest keys, deterministic seeds."""
    from repro.core.config import ProtocolConfig
    from repro.smc.session import SmcConfig

    return ProtocolConfig(
        eps=eps, min_pts=min_pts, scale=scale,
        smc=SmcConfig(paillier_bits=256, comparison=backend,
                      key_seed=key_seed, mask_sigma=mask_sigma),
        alice_seed=21, bob_seed=22, **kwargs)


def spread_points(count: int, *, offset: int = 0,
                  step: int = 30) -> tuple[tuple[int, int], ...]:
    """A line of isolated points -- workload with predictable query cost."""
    return tuple((offset + step * index, 0) for index in range(count))


def clustered_points(count: int, *, origin: tuple[int, int] = (0, 0),
                     spacing: int = 5) -> tuple[tuple[int, int], ...]:
    """A dense square patch -- workload where everything clusters."""
    side = max(1, int(count ** 0.5))
    points = []
    for index in range(count):
        points.append((origin[0] + spacing * (index % side),
                       origin[1] + spacing * (index // side)))
    return tuple(points)
