"""E8 -- k-th statistic selection ablation (paper Section 5).

Paper claims: the scan algorithm is ``O(k*n)`` ("a good time complexity
for a small k") and the quickselect variant is expected ``O(n)``
("appropriate when the k is greater").

Expected shape: secure-comparison counts for the scan grow linearly in
k; quickselect stays flat in k; the crossover sits at small k.
"""

import random

from repro.analysis.report import render_table
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.kth_smallest import (
    kth_smallest_quickselect,
    kth_smallest_scan,
)
from repro.smc.secret_sharing import SharedValues, share_additively
from repro.smc.session import SmcConfig, SmcSession

N = 64
K_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def _shares(session, values, seed=0):
    mask_bound = session.config.mask_bound(max(values) + 1)
    rng = random.Random(seed)
    pairs = [share_additively(v, rng, mask_bound) for v in values]
    return SharedValues(u_values=tuple(p[0] for p in pairs),
                        v_values=tuple(p[1] for p in pairs),
                        value_bound=max(values) + 1,
                        mask_bound=mask_bound)


def _run_sweep():
    rng = random.Random(11)
    values = [rng.randrange(10**6) for _ in range(N)]
    ranked = sorted(values)
    rows = []
    scan_counts = []
    quick_counts = []
    for k in K_SWEEP:
        alice, bob = make_party_pair(Channel(), 1, 2)
        session = SmcSession(alice, bob,
                             SmcConfig(comparison="oracle", key_seed=520))
        backend = session.comparison_backend
        index = kth_smallest_scan(backend, alice, bob,
                                  _shares(session, values), k)
        scan_count = backend.invocations
        assert values[index] == ranked[k - 1]

        alice2, bob2 = make_party_pair(Channel(), 3, 4)
        session2 = SmcSession(alice2, bob2,
                              SmcConfig(comparison="oracle", key_seed=520))
        backend2 = session2.comparison_backend
        index2 = kth_smallest_quickselect(backend2, alice2, bob2,
                                          _shares(session2, values), k)
        quick_count = backend2.invocations
        assert values[index2] == ranked[k - 1]

        scan_counts.append(scan_count)
        quick_counts.append(quick_count)
        winner = "scan" if scan_count <= quick_count else "quickselect"
        rows.append([k, scan_count, quick_count, winner])
    return rows, scan_counts, quick_counts


def test_e8_selection_ablation(benchmark, record_table):
    rows, scan_counts, quick_counts = benchmark.pedantic(
        _run_sweep, rounds=1, iterations=1)
    table = render_table(
        ["k", "scan_comparisons", "quickselect_comparisons", "winner"],
        rows, title=f"E8: k-th statistic selection, n={N}")
    record_table("e8_selection", table)

    # Scan is linear in k: k=64 costs far more than k=1.
    assert scan_counts[-1] > 10 * scan_counts[0]
    # Quickselect is flat-ish in k: within a small factor across the sweep.
    assert max(quick_counts) < 6 * min(quick_counts)
    # The paper's guidance: scan wins for k=1, loses by k=n/2.
    assert scan_counts[0] <= quick_counts[0]
    assert scan_counts[-2] > quick_counts[-2]
