"""E2 -- horizontal protocol communication scaling (paper Section 4.2.2).

Paper claim: total cost is ``O(c1*m*l(n-l) + c2*n0*l(n-l))`` bits --
i.e. proportional to the number of cross-party point pairs ``l*(n-l)``
(both passes), with the attribute count ``m`` scaling the ciphertext
term.

Expected shape: measured channel bytes fit ``a * l(n-l)`` with R^2 near
1 across the n sweep, and grow with m at fixed n.
"""

from benchmarks.conftest import protocol_config, spread_points
from repro.analysis.communication import fit_through_origin
from repro.analysis.report import render_table
from repro.core.horizontal import run_horizontal_dbscan
from repro.data.partitioning import HorizontalPartition

N_SWEEP = (6, 10, 14, 18)


def _run_sweep():
    rows = []
    work_terms = []
    measured = []
    for n in N_SWEEP:
        l = n // 2
        partition = HorizontalPartition(
            alice_points=spread_points(l),
            bob_points=spread_points(n - l, offset=7))
        config = protocol_config(eps=1.0, min_pts=2)
        result = run_horizontal_dbscan(partition, config)
        pair_term = l * (n - l)
        work_terms.append(float(2 * pair_term))   # both passes
        measured.append(float(result.stats["total_bytes"]))
        rows.append([n, l, 2 * pair_term, result.stats["total_bytes"],
                     result.comparisons])
    fit = fit_through_origin(work_terms, measured)
    return rows, fit


def _run_m_sweep():
    rows = []
    for m in (1, 2, 4):
        points_a = tuple((30 * i,) + (0,) * (m - 1) for i in range(4))
        points_b = tuple((30 * i + 7,) + (0,) * (m - 1) for i in range(4))
        partition = HorizontalPartition(alice_points=points_a,
                                        bob_points=points_b)
        config = protocol_config(eps=1.0, min_pts=2)
        result = run_horizontal_dbscan(partition, config)
        rows.append([m, result.stats["total_bytes"]])
    return rows


def test_e2_horizontal_comm_scaling(benchmark, record_table):
    (rows, fit) = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    m_rows = _run_m_sweep()
    table = render_table(
        ["n", "l", "2*l(n-l)", "bytes", "comparisons"], rows,
        title="E2: horizontal bytes vs l(n-l)  "
              f"[fit bytes ~ {fit.coefficient:.0f} * pairs, "
              f"R^2={fit.r_squared:.4f}]")
    table += "\n\n" + render_table(
        ["m", "bytes (n=8)"], m_rows,
        title="E2b: attribute count scaling at fixed n")
    record_table("e2_horizontal_comm", table)

    assert fit.r_squared > 0.98, \
        "bytes must be proportional to l(n-l) (Sec 4.2.2)"
    assert m_rows[-1][1] > m_rows[0][1], \
        "bytes must grow with attribute count (c1*m term)"
