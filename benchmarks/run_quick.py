"""Quick fixed-workload perf snapshot -- the PR-over-PR trajectory file.

Runs one small, deterministic workload per protocol and writes
``benchmarks/results/BENCH_PR9.json`` with wall-clock, bytes, messages,
and secure-comparison counts, so future PRs have a stable baseline to
compare against.  The ablations ride along:

- **horizontal** (PR 1): seed-era pipeline (per-point HDP, no pools)
  vs. batched region queries + pools prefilled offline.
- **multiparty** (PR 2): the PR-1 per-point mesh (one
  ``hdp_within_eps`` per peer point per query) vs. the batched mesh
  (one ``hdp_region_query`` per peer per query, pools prefilled from an
  untimed probe run; the offline phase is timed separately).
- **offline_scaling** (PR 2): pool-fill wall-clock through the
  :class:`~repro.crypto.engine.ModexpEngine` at workers 1, 2 and 4
  against the serial ``refill`` baseline.  The speedup is real
  parallelism, so it tracks the host's usable cores --
  ``host_cpus`` is recorded next to the numbers; on a single-core
  host the worker configurations can only show IPC overhead.
- **dgk_batch** (PR 3): region queries with per-point DGK comparisons
  (one bit-encryption of the querier threshold per peer point) vs. the
  amortized batch (one bit-encryption and one comparison round-trip
  per query).  Both arms run pools-off so the ``r^n`` powmods the
  amortization removes are actually paid online, not absorbed by the
  offline phase; measured two-party and over the 3-party mesh.
- **latency_sweep** (PR 4): the k-party mesh over a
  :class:`~repro.net.transport.SimulatedNetworkTransport` at several
  one-way link latencies, sequential vs concurrent driver passes
  (``ProtocolConfig(concurrent_peers=True)``).  The concurrent pass
  overlaps the independent per-peer round-trips, so its simulated
  wall-clock approaches the slowest single link while the sequential
  pass pays the sum -- the gap widens with the party count.  Labels,
  ledger sequences, per-pair transcripts, and comparison counts are
  verified bit-identical to the in-process sequential reference before
  any speedup is reported.
- **socket_runtime** (PR 5): the same 3-party workload three ways --
  the in-process fabric, the simulated network at 5 ms one-way, and a
  *real* orchestrated run (one OS process per party over loopback TCP
  via :func:`repro.runtime.orchestrator.orchestrate_run`).  The
  distributed run's labels, ledger, comparison counts, and per-pair
  transcript digests are verified bit-identical to the in-process
  reference, then its measured wall-clock is reported next to the
  modeled latency figure: the measured loopback overhead per protocol
  round is what the simulator's per-round charge abstracts.

- **session_throughput** (PR 7): the resident asyncio daemon mesh
  (:mod:`repro.runtime.daemon`) under simulated link latency.  The
  baseline re-starts a fresh fleet for every session (the non-resident
  cost model: link-up, key derivation, engine warm-up paid per run);
  the daemon arms keep one fleet resident and submit 8 sessions at
  in-flight concurrency 1, 4, and 8 -- all interleaved over the *same*
  one-connection-per-pair links.  Every session's labels, ledger,
  comparison counts, and per-pair transcript digests are verified
  bit-identical to the in-process reference before any throughput is
  reported.  Expected shape: concurrency 1 beats the fresh-fleet
  baseline by amortizing setup, and concurrency >= 4 beats it strictly
  by overlapping link latency across sessions (the per-link delay is
  real event-loop time, so the hiding is measured, not modeled).

- **session_scaleout** (PR 9): the same resident mesh under the
  message-granularity async pass runtime.  Each arm submits its whole
  batch up front -- 8, 8, 32, and 64 sessions at in-flight concurrency
  1, 8, 32, and 64 -- and the sessions interleave as coroutines on the
  daemons' event loops (one coroutine per peer region query parked on
  the link future, no per-session threads).  Next to sessions/sec each
  arm records the daemons' peak OS thread count: the scale-out claim
  is that the count stays flat from 1 to 64 in-flight sessions, and
  the weekly CI run fails if it does not.  The concurrency-8 rate must
  also stay at or above the PR-7 ``session_throughput`` figure on the
  same host, and the sequential arm doubles as the
  :class:`~repro.crypto.precompute.RandomnessService` demonstration:
  session 0 pays cold pool misses, every later session is prefilled
  from the learned demand so its hit rate must improve.

- **obs_overhead** (PR 10): the unified observability layer's cost on
  the resident daemon mesh.  Two otherwise-identical arms run the same
  sessions serially -- one with the metrics registry disabled and no
  tracer (the null-instrument fast path), one with metrics enabled
  *and* per-party span traces written to disk -- and both are verified
  bit-identical to the in-process reference (observation never feeds
  back into the protocol).  The instrumented arm also pulls a live
  ``get_metrics`` snapshot from every daemon and checks the trace files
  exist; the weekly CI run fails if the arms' observables diverge or
  the instrumented arm costs more than
  :data:`OBS_OVERHEAD_TOLERANCE` extra wall-clock (median of
  interleaved batch pairs, to keep shared-box jitter out of the gate).

- **link_auth** (PR 8): the orchestrated loopback-TCP run with plain
  frames vs per-frame HMAC-SHA256 link authentication under a PSK
  (which also runs sealed per-party keys end to end: each process
  derives only its own keypair, peers are wire-captured public halves
  pinned by the manifest's key digests).  Both arms are verified
  bit-identical to the in-process reference; the reported overhead is
  the MAC's whole cost, expected to vanish against the Paillier
  arithmetic.

The script verifies that each optimized pipeline produces bit-identical
cluster labels and identical leakage-ledger disclosure sequences before
reporting its speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_quick.py
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import clustered_points, spread_points
from repro.core.config import ProtocolConfig
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.vertical import run_vertical_dbscan
from repro.crypto.engine import ModexpEngine
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.precompute import RandomnessPool, combine_pool_reports
from repro.data.dataset import Dataset
from repro.data.partitioning import HorizontalPartition, partition_vertical
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.net.transport import TransportSpec
from repro.smc.session import SmcConfig, SmcSession

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "BENCH_PR10.json")

MIN_EXPECTED_SPEEDUP = 3.0
MIN_EXPECTED_MESH_SPEEDUP = 2.0
MIN_EXPECTED_DGK_SPEEDUP = 1.1
MIN_EXPECTED_LATENCY_SPEEDUP = 1.3
SESSION_THROUGHPUT_SESSIONS = 8
SESSION_THROUGHPUT_DELAY_S = 0.01
SESSION_THROUGHPUT_BASELINE_RUNS = 3
SESSION_SCALEOUT_CONCURRENCY = (1, 8, 32, 64)
# Max spread of peak daemon OS thread counts across the arms; mirrors
# the tolerance in tests/runtime/test_daemon.py (engine worker threads
# and the transient accept handler account for the slack).
SESSION_SCALEOUT_THREAD_SPREAD = 4
# Resident-daemon sessions/sec at concurrency 8 from the PR-7 snapshot
# (BENCH_PR7.json, same workload/host class); the async pass runtime
# must not fall below it.
PR7_SESSION_THROUGHPUT_C8 = 2.455
OFFLINE_SCALING_FACTORS = 600
OFFLINE_SCALING_WORKERS = (1, 2, 4)
OBS_OVERHEAD_SESSIONS = 4
OBS_OVERHEAD_BATCHES = 8
OBS_OVERHEAD_DELAY_S = 0.005
# Wall-clock the fully instrumented arm may cost over the disabled arm.
# The budget the observability layer is designed to: counter bumps on
# cached instruments plus one JSONL line per span, against sessions
# dominated by crypto and (simulated) link latency.  Single-shot wall
# clocks on a shared CI box swing more than the overhead itself, so
# the arms interleave OBS_OVERHEAD_BATCHES batches and the gate is the
# median of the per-batch-pair ratios.
OBS_OVERHEAD_TOLERANCE = 0.05
LATENCY_SWEEP_MS = (5.0, 20.0, 50.0)
LATENCY_SWEEP_PARTIES = (3, 4)


def _smc(precompute: bool) -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="bitwise", key_seed=990,
                     mask_sigma=8, precompute=precompute)


def _config(*, batched: bool, precompute: bool,
            batched_comparisons: bool = True) -> ProtocolConfig:
    return ProtocolConfig(
        eps=1.0, min_pts=3, scale=10, smc=_smc(precompute),
        alice_seed=41, bob_seed=42, batched_region_queries=batched,
        batched_comparisons=batched_comparisons)


def _horizontal_workload() -> HorizontalPartition:
    return HorizontalPartition(
        alice_points=clustered_points(6),
        bob_points=clustered_points(6, origin=(3, 3)))


def _summarize(result, seconds: float) -> dict:
    return {
        "wall_clock_s": round(seconds, 4),
        "bytes": result.stats["total_bytes"],
        "messages": result.stats["total_messages"],
        "rounds": result.stats["rounds"],
        "comparisons": result.comparisons,
    }


def _timed(run, *args, **kwargs):
    started = time.perf_counter()
    result = run(*args, **kwargs)
    return result, time.perf_counter() - started


def _horizontal_ablation() -> dict:
    partition = _horizontal_workload()

    # Seed-era pipeline: per-point HDP, no pools, everything online.
    seed_result, seed_seconds = _timed(
        run_horizontal_dbscan, partition,
        _config(batched=False, precompute=False))

    # Probe run (untimed): learn how much randomness each pool consumes.
    pipeline_config = _config(batched=True, precompute=True)
    probe_channel = Channel()
    probe_session = SmcSession(
        *make_party_pair(probe_channel, pipeline_config.alice_seed,
                         pipeline_config.bob_seed), pipeline_config.smc)
    run_horizontal_dbscan(partition, pipeline_config, session=probe_session)
    plan = {key: report["consumed"]
            for key, report in probe_session.pool_report().items()}

    # Offline phase (timed separately), then the online protocol.
    channel = Channel()
    session = SmcSession(
        *make_party_pair(channel, pipeline_config.alice_seed,
                         pipeline_config.bob_seed), pipeline_config.smc)
    started = time.perf_counter()
    session.precompute_pools(plan)
    offline_seconds = time.perf_counter() - started
    pipeline_result, online_seconds = _timed(
        run_horizontal_dbscan, partition, pipeline_config, session=session)

    pool_totals = combine_pool_reports(session.pool_report().values())
    labels_identical = (
        seed_result.alice_labels == pipeline_result.alice_labels
        and seed_result.bob_labels == pipeline_result.bob_labels)
    ledger_identical = (seed_result.ledger.events
                        == pipeline_result.ledger.events)
    speedup = seed_seconds / online_seconds if online_seconds else float("inf")

    return {
        "workload": {"alice_points": 6, "bob_points": 6, "dimensions": 2},
        "seed": _summarize(seed_result, seed_seconds),
        "pipeline": {
            **_summarize(pipeline_result, online_seconds),
            "offline_s": round(offline_seconds, 4),
            "pool": pool_totals,
        },
        "speedup_online_vs_seed": round(speedup, 2),
        "labels_bit_identical": labels_identical,
        "ledger_identical": ledger_identical,
    }


def _multiparty_workload() -> dict[str, list]:
    return {
        "party0": list(clustered_points(4)),
        "party1": list(clustered_points(4, origin=(2, 2))),
        "party2": list(clustered_points(4, origin=(40, 40))),
    }


def _multiparty_ablation() -> dict:
    """PR-1 per-point mesh vs the PR-2 batched mesh (prefilled offline)."""
    points = _multiparty_workload()
    seeds = [61, 62, 63]

    # The PR-1 mesh: per-point HDP loops, pools filling on demand.
    per_point_result, per_point_seconds = _timed(
        run_multiparty_horizontal_dbscan, points,
        _config(batched=False, precompute=True), seeds=seeds)

    # Probe run (untimed): per-pair pool consumption of the batched mesh.
    batched_config = _config(batched=True, precompute=True)
    probe_mesh = PartyMesh(list(points), batched_config.smc, seeds=seeds)
    run_multiparty_horizontal_dbscan(points, batched_config, mesh=probe_mesh)
    plan = {pair: {key: entry["consumed"] for key, entry in report.items()}
            for pair, report in probe_mesh.pool_report().items()}

    # Offline phase (timed separately), then the online batched mesh.
    mesh = PartyMesh(list(points), batched_config.smc, seeds=seeds)
    started = time.perf_counter()
    mesh.precompute_pools(plan)
    offline_seconds = time.perf_counter() - started
    batched_result, online_seconds = _timed(
        run_multiparty_horizontal_dbscan, points, batched_config, mesh=mesh)

    pool_totals = combine_pool_reports(
        entry for report in mesh.pool_report().values()
        for entry in report.values())
    labels_identical = (per_point_result.labels_by_party
                        == batched_result.labels_by_party)
    ledger_identical = (per_point_result.ledger.events
                        == batched_result.ledger.events)
    speedup = (per_point_seconds / online_seconds if online_seconds
               else float("inf"))

    return {
        "workload": {"parties": 3, "points_per_party": 4, "dimensions": 2},
        "per_point_mesh": _summarize(per_point_result, per_point_seconds),
        "batched_mesh": {
            **_summarize(batched_result, online_seconds),
            "offline_s": round(offline_seconds, 4),
            "pool": pool_totals,
        },
        "speedup_online_vs_per_point": round(speedup, 2),
        "labels_bit_identical": labels_identical,
        "ledger_identical": ledger_identical,
    }


def _dgk_batch_ablation() -> dict:
    """Per-point vs amortized DGK comparison batches (PR 3).

    Pools stay off in both arms so the querier's per-comparison
    bit-encryption powmods -- the cost the amortization removes -- are
    paid online where the timer can see them; everything else
    (cross-term batching, witness decryption) is identical between arms.
    """
    from repro.core.distance import hdp_region_query
    from repro.core.leakage import LeakageLedger
    from repro.data.quantize import squared_distance_bound

    query_points = list(clustered_points(4))
    peer_points = list(clustered_points(8, origin=(1, 1)))
    all_points = query_points + peer_points
    value_bound = squared_distance_bound(all_points, all_points)
    eps_squared = 200

    def run_two_party(batched_comparisons: bool):
        session = SmcSession(
            *make_party_pair(Channel(), 71, 72), _smc(precompute=False))
        ledger = LeakageLedger()
        started = time.perf_counter()
        bits = [hdp_region_query(
            session, session.alice, point, session.bob, peer_points,
            eps_squared, value_bound, ledger=ledger,
            batched_comparisons=batched_comparisons, label="q")
            for point in query_points]
        seconds = time.perf_counter() - started
        return {
            "bits": bits,
            "events": ledger.events,
            "comparisons": session.comparison_backend.invocations,
            "seconds": seconds,
        }

    per_point = run_two_party(False)
    amortized = run_two_party(True)
    two_party_speedup = (per_point["seconds"] / amortized["seconds"]
                         if amortized["seconds"] else float("inf"))
    two_party = {
        "workload": {"queries": len(query_points),
                     "peer_points": len(peer_points), "dimensions": 2},
        "per_point_dgk_s": round(per_point["seconds"], 4),
        "batched_dgk_s": round(amortized["seconds"], 4),
        "comparisons": amortized["comparisons"],
        "speedup_batched_vs_per_point": round(two_party_speedup, 2),
        "bits_bit_identical": per_point["bits"] == amortized["bits"],
        "ledger_identical": per_point["events"] == amortized["events"],
        "comparisons_identical":
            per_point["comparisons"] == amortized["comparisons"],
    }

    points = _multiparty_workload()
    seeds = [61, 62, 63]

    def run_mesh(batched_comparisons: bool):
        started = time.perf_counter()
        result = run_multiparty_horizontal_dbscan(
            points, _config(batched=True, precompute=False,
                            batched_comparisons=batched_comparisons),
            seeds=seeds)
        return result, time.perf_counter() - started

    mesh_per_point, mesh_per_point_seconds = run_mesh(False)
    mesh_amortized, mesh_amortized_seconds = run_mesh(True)
    mesh_speedup = (mesh_per_point_seconds / mesh_amortized_seconds
                    if mesh_amortized_seconds else float("inf"))
    mesh = {
        "workload": {"parties": 3, "points_per_party": 4, "dimensions": 2},
        "per_point_dgk": _summarize(mesh_per_point, mesh_per_point_seconds),
        "batched_dgk": _summarize(mesh_amortized, mesh_amortized_seconds),
        "speedup_batched_vs_per_point": round(mesh_speedup, 2),
        "labels_bit_identical": (mesh_per_point.labels_by_party
                                 == mesh_amortized.labels_by_party),
        "ledger_identical": (mesh_per_point.ledger.events
                             == mesh_amortized.ledger.events),
    }
    return {"two_party": two_party, "mesh": mesh}


def _latency_workload(parties: int) -> dict[str, list]:
    origins = ((0, 0), (2, 2), (40, 40), (42, 40))
    return {f"party{index}": list(clustered_points(3,
                                                   origin=origins[index]))
            for index in range(parties)}


def _latency_sweep_ablation() -> dict:
    """Sequential vs concurrent mesh passes under simulated latency.

    For each party count and one-way link latency, the same workload
    runs three ways: the in-process sequential reference, the simulated
    network sequentially scheduled, and the simulated network with
    ``concurrent_peers=True``.  Every protocol observable -- labels,
    ledger sequence, per-pair transcripts, comparison counts -- must be
    bit-identical across all three; only the simulated wall-clock may
    (and should) drop when the per-peer round-trips overlap.
    """
    def config(transport: TransportSpec | None, concurrent: bool):
        return ProtocolConfig(
            eps=1.0, min_pts=3, scale=10,
            smc=SmcConfig(paillier_bits=256, comparison="bitwise",
                          key_seed=992, mask_sigma=8,
                          transport=transport),
            concurrent_peers=concurrent)

    def run(points, seeds, transport, concurrent):
        cfg = config(transport, concurrent)
        mesh = PartyMesh(list(points), cfg.smc, seeds=seeds)
        result = run_multiparty_horizontal_dbscan(
            points, cfg, seeds=seeds, mesh=mesh)
        transcripts = {
            f"{pair[0]}-{pair[1]}": [(e.sender, e.label, e.value)
                                     for e in transcript.entries]
            for pair, transcript in mesh.pair_transcripts().items()}
        return result, transcripts

    sweep = {"latencies_ms": list(LATENCY_SWEEP_MS), "parties": {}}
    for party_count in LATENCY_SWEEP_PARTIES:
        points = _latency_workload(party_count)
        seeds = list(range(71, 71 + party_count))
        reference, reference_transcripts = run(points, seeds, None, False)

        rows = []
        identical = True
        for latency_ms in LATENCY_SWEEP_MS:
            spec = TransportSpec(kind="simulated",
                                 latency_s=latency_ms / 1000.0)
            sequential, seq_transcripts = run(points, seeds, spec, False)
            concurrent, conc_transcripts = run(points, seeds, spec, True)
            for arm, transcripts in ((sequential, seq_transcripts),
                                     (concurrent, conc_transcripts)):
                identical &= (
                    arm.labels_by_party == reference.labels_by_party
                    and arm.ledger.events == reference.ledger.events
                    and arm.comparisons == reference.comparisons
                    and transcripts == reference_transcripts)
            speedup = (sequential.simulated_seconds
                       / concurrent.simulated_seconds
                       if concurrent.simulated_seconds else float("inf"))
            rows.append({
                "latency_ms": latency_ms,
                "sequential_simulated_s":
                    round(sequential.simulated_seconds, 4),
                "concurrent_simulated_s":
                    round(concurrent.simulated_seconds, 4),
                "speedup_concurrent_vs_sequential": round(speedup, 2),
                "rounds": sequential.stats["rounds"],
            })
        sweep["parties"][str(party_count)] = {
            "workload": {"parties": party_count, "points_per_party": 3,
                         "dimensions": 2},
            "rows": rows,
            "observables_bit_identical": identical,
        }
    return sweep


def _socket_runtime_ablation() -> dict:
    """In-process vs simulated-latency vs real loopback TCP (PR 5).

    One fixed 3-party workload.  The TCP arm runs each party as its own
    OS process through the orchestrator; equivalence (labels, ledger,
    comparisons, per-pair transcript digests) against the in-process
    reference is asserted before any timing is reported.  The measured
    per-round loopback overhead -- (tcp wall-clock - in-process
    wall-clock) / protocol rounds -- is the real-socket counterpart of
    the simulator's per-round latency charge.
    """
    from repro.runtime.orchestrator import (
        orchestrate_run,
        verify_against_in_process,
    )

    points = _latency_workload(3)
    seeds = [71, 72, 73]

    def config(transport: TransportSpec | None) -> ProtocolConfig:
        return ProtocolConfig(
            eps=1.0, min_pts=3, scale=10,
            smc=SmcConfig(paillier_bits=256, comparison="bitwise",
                          key_seed=993, mask_sigma=8,
                          transport=transport))

    mesh = PartyMesh(list(points), config(None).smc, seeds=seeds)
    reference, in_process_seconds = _timed(
        run_multiparty_horizontal_dbscan, points, config(None),
        seeds=seeds, mesh=mesh)

    simulated_spec = TransportSpec(kind="simulated", latency_s=0.005)
    simulated = run_multiparty_horizontal_dbscan(
        points, config(simulated_spec), seeds=seeds)

    tcp = orchestrate_run(points, config(None), seeds=seeds,
                          deadline_s=300)

    rounds = reference.stats["rounds"]
    observables_identical = all(
        verify_against_in_process(tcp, points, config(None), seeds,
                                  reference=reference,
                                  mesh=mesh).values())
    passes_seconds = max(report.passes_seconds
                         for report in tcp.reports.values())
    setup_seconds = max(report.elapsed_seconds - report.passes_seconds
                        for report in tcp.reports.values())
    overhead = max(0.0, passes_seconds - in_process_seconds)
    return {
        "workload": {"parties": 3, "points_per_party": 3,
                     "dimensions": 2},
        "rounds": rounds,
        "in_process_s": round(in_process_seconds, 4),
        "simulated_5ms_one_way_s": round(simulated.simulated_seconds, 4),
        "tcp_wall_clock_s": round(tcp.elapsed_seconds, 4),
        "tcp_passes_s": round(passes_seconds, 4),
        "tcp_setup_s": round(setup_seconds, 4),
        "tcp_overhead_per_round_us": round(1e6 * overhead / rounds, 1)
        if rounds else 0.0,
        "notes": "tcp_wall_clock_s includes python startup per party "
                 "process; tcp_setup_s is link-up + key derivation + "
                 "key exchange; the per-round overhead compares passes "
                 "only against the in-process run and is dominated by "
                 "the mirrored execution's duplicated crypto (each "
                 "pairwise choreography runs in both endpoint "
                 "processes), which a single-core host serializes -- "
                 "loopback socket latency itself is microseconds",
        "host_cpus": os.cpu_count(),
        "observables_bit_identical": observables_identical,
    }


def _link_auth_ablation() -> dict:
    """Authenticated links vs plain links on the real TCP runtime (PR 8).

    The same fixed 3-party workload runs through the orchestrator twice
    -- once over plain frames, once with per-frame HMAC-SHA256 under a
    PSK (which also switches every party to sealed peer keys pinned by
    the manifest digests).  Both arms are verified bit-identical to the
    in-process reference before any number is reported: authentication
    is a wire envelope, so the *only* admissible difference is time.
    The per-frame cost is one HMAC over a few hundred bytes at each
    end; against Paillier arithmetic it should vanish, and this
    snapshot is the regression tripwire for that claim.
    """
    from repro.runtime.orchestrator import (
        orchestrate_run,
        verify_against_in_process,
    )

    points = _latency_workload(3)
    seeds = [81, 82, 83]
    config = ProtocolConfig(
        eps=1.0, min_pts=3, scale=10,
        smc=SmcConfig(paillier_bits=256, comparison="bitwise",
                      key_seed=994, mask_sigma=8))

    mesh = PartyMesh(list(points), config.smc, seeds=seeds)
    reference = run_multiparty_horizontal_dbscan(points, config,
                                                 seeds=seeds, mesh=mesh)

    arms = {}
    for label, psk in (("auth_off", None),
                       ("auth_on", "bench link-auth psk")):
        run, seconds = _timed(orchestrate_run, points, config,
                              seeds=seeds, deadline_s=300, psk=psk)
        identical = all(
            verify_against_in_process(run, points, config, seeds,
                                      reference=reference,
                                      mesh=mesh).values())
        frames = run.result.stats["total_messages"]
        arms[label] = {
            "wall_clock_s": round(seconds, 4),
            "passes_s": round(max(report.passes_seconds
                                  for report in run.reports.values()), 4),
            "protocol_frames": frames,
            "link_auth": run.manifest.link_auth,
            "key_digests_pinned": len(run.manifest.key_digests),
            "observables_bit_identical": identical,
        }
    overhead = (arms["auth_on"]["wall_clock_s"]
                - arms["auth_off"]["wall_clock_s"])
    return {
        "workload": {"parties": 3, "points_per_party": 3,
                     "dimensions": 2},
        **arms,
        "auth_overhead_s": round(overhead, 4),
        "notes": "auth_on MACs every frame (HMAC-SHA256, 32 bytes) and "
                 "runs sealed peer keys end to end; wall-clock includes "
                 "python startup per party process, so small negative "
                 "overheads are startup noise, not a speedup",
        "host_cpus": os.cpu_count(),
    }


def _daemon_bench_workload():
    """Shared fixture for the daemon snapshots (PR 7 and PR 9).

    One fixed 3-party workload plus its in-process reference run;
    returns ``(points, seeds, config, names, reference,
    reference_digests, ports)``.  Both daemon ablations compare every
    session against this reference before reporting any rate, so the
    two sections stay comparable PR over PR.
    """
    from repro.net.transcript import transcript_digest
    from repro.runtime.manifest import pair_key

    points = {f"party{index}": list(clustered_points(2, origin=origin))
              for index, origin in enumerate(((0, 0), (2, 2), (40, 40)))}
    seeds = [71, 72, 73]
    config = ProtocolConfig(
        eps=1.0, min_pts=3, scale=10,
        smc=SmcConfig(paillier_bits=128, comparison="bitwise",
                      key_seed=993, mask_sigma=8))
    names = list(points)

    mesh = PartyMesh(names, config.smc, seeds=seeds)
    reference = run_multiparty_horizontal_dbscan(points, config,
                                                 seeds=seeds, mesh=mesh)
    reference_digests = {
        pair_key(*pair): transcript_digest(transcript)
        for pair, transcript in mesh.pair_transcripts().items()}
    ports = {pair_key(a, b): 0 for index, a in enumerate(names)
             for b in names[index + 1:]}
    return points, seeds, config, names, reference, reference_digests, ports


def _session_throughput_ablation() -> dict:
    """Resident daemon mesh vs fresh-fleet-per-session (PR 7).

    One fixed 3-party workload, 10 ms simulated one-way link latency
    (real event-loop time on the shared pair connections).  The
    baseline starts a fresh daemon fleet for every session; the
    resident arms run :data:`SESSION_THROUGHPUT_SESSIONS` sessions on
    one standing fleet at in-flight concurrency 1, 4, and 8.  Each arm
    gets its own fleet, so every arm pays exactly one cold start and
    the comparison isolates concurrency, not residual warmth.  The
    modest key size keeps the sessions latency-dominated -- which is
    the regime the daemon targets -- and keeps the snapshot quick;
    ``host_cpus`` is recorded because compute-bound overlap would also
    need cores this host may not have.
    """
    from repro.runtime.client import DaemonFleet, SessionClient
    from repro.runtime.orchestrator import build_manifest

    (points, seeds, config, names, reference,
     reference_digests, ports) = _daemon_bench_workload()

    identical = True

    def check(run) -> None:
        nonlocal identical
        identical = identical and (
            run.result.labels_by_party == reference.labels_by_party
            and run.result.ledger.events == reference.ledger.events
            and run.result.comparisons == reference.comparisons
            and run.transcript_digests == reference_digests)

    def manifest(tag: str, index: int):
        return build_manifest(points, config, seeds,
                              session_id=f"bench-{tag}-{index:02d}",
                              ports=ports)

    delay = SESSION_THROUGHPUT_DELAY_S
    total = SESSION_THROUGHPUT_SESSIONS

    # Baseline: the non-resident cost model -- every session pays fleet
    # startup, link-up, and a cold first (and only) session.  A real
    # non-resident deployment is a fresh process per run, so the
    # process-wide powmod memo is cleared before each fleet; resident
    # arms keep it warm across sessions, which is part of what they
    # amortize (like the engine and key cache before it).
    from repro.crypto.integer_math import cached_pow

    started = time.perf_counter()
    for index in range(SESSION_THROUGHPUT_BASELINE_RUNS):
        cached_pow.cache_clear()
        with DaemonFleet(names, net_delay_s=delay) as fleet:
            with SessionClient(fleet.spec) as client:
                check(client.run(manifest("fresh", index), points, 120))
    baseline_seconds = time.perf_counter() - started
    baseline_rate = SESSION_THROUGHPUT_BASELINE_RUNS / baseline_seconds

    arms = {}
    warm_starts = {}
    for concurrency in (1, 4, 8):
        with DaemonFleet(names, net_delay_s=delay) as fleet:
            with SessionClient(fleet.spec) as client:
                started = time.perf_counter()
                done = 0
                warm = 0
                tag = f"c{concurrency}"
                while done < total:
                    wave = [client.submit(manifest(tag, done + offset),
                                          points)
                            for offset in range(min(concurrency,
                                                    total - done))]
                    for handle in wave:
                        run = handle.result(180)
                        check(run)
                        if next(iter(run.reports.values())) \
                                .runtime_info["warm_start"]:
                            warm += 1
                    done += len(wave)
                seconds = time.perf_counter() - started
        arms[concurrency] = {
            "sessions": total,
            "wall_clock_s": round(seconds, 4),
            "sessions_per_s": round(total / seconds, 4),
            "speedup_vs_fresh_fleet": round(
                (total / seconds) / baseline_rate, 2),
        }
        warm_starts[concurrency] = warm

    return {
        "workload": {"parties": 3, "points_per_party": 2,
                     "dimensions": 2, "paillier_bits": 128},
        "net_delay_ms": delay * 1000,
        "fresh_fleet_serial": {
            "sessions": SESSION_THROUGHPUT_BASELINE_RUNS,
            "wall_clock_s": round(baseline_seconds, 4),
            "sessions_per_s": round(baseline_rate, 4),
        },
        "resident_daemons": {str(k): v for k, v in arms.items()},
        "warm_start_sessions": {str(k): v
                                for k, v in warm_starts.items()},
        "host_cpus": os.cpu_count(),
        "observables_bit_identical": identical,
        "notes": "every arm runs on its own fleet (one cold start "
                 "each); the baseline's key derivation is already "
                 "warm after its first fleet (process-level key "
                 "cache), which biases the comparison against the "
                 "resident arms; the powmod memo is cleared before "
                 "each baseline fleet (a non-resident run is a fresh "
                 "process) while resident arms keep it warm across "
                 "sessions",
    }


def _session_scaleout_ablation() -> dict:
    """Message-granularity async passes at 1-64 in-flight sessions (PR 9).

    Same workload and 10 ms one-way simulated latency as the PR-7
    throughput snapshot, but the burst is the whole arm: every session
    of an arm is submitted up front and interleaves on the daemons'
    event loops as coroutines (one per peer region query, parked on
    the link future between frames), so the daemons never grow a
    thread per session.  Each arm records the peak OS thread count
    seen by any daemon next to sessions/sec -- the flat-thread claim
    is asserted by :func:`main`, which the weekly CI job runs.  The
    sequential arm exercises the
    :class:`~repro.crypto.precompute.RandomnessService` demand model:
    session 0 consumes factors cold (all misses), every later session
    is prefilled to the learned peak at lease time, so its pool hit
    rate must rise.  Concurrent bursts start cold by design (demand is
    learned only at release, and a burst registers every lease before
    the first release), so the warm-trend assertion is scoped to the
    sequential arm; the burst arms still report their rates.
    """
    from repro.runtime.client import DaemonFleet, SessionClient
    from repro.runtime.orchestrator import build_manifest

    (points, seeds, config, names, reference,
     reference_digests, ports) = _daemon_bench_workload()

    identical = True
    async_pass_model = True

    def check(run) -> None:
        nonlocal identical
        identical = identical and (
            run.result.labels_by_party == reference.labels_by_party
            and run.result.ledger.events == reference.ledger.events
            and run.result.comparisons == reference.comparisons
            and run.transcript_digests == reference_digests)

    def manifest(tag: str, index: int):
        return build_manifest(points, config, seeds,
                              session_id=f"scaleout-{tag}-{index:02d}",
                              ports=ports)

    delay = SESSION_THROUGHPUT_DELAY_S
    arms = {}
    for concurrency in SESSION_SCALEOUT_CONCURRENCY:
        sessions = max(concurrency, SESSION_THROUGHPUT_SESSIONS)
        tag = f"c{concurrency}"
        peak_threads = 0
        restarts = 0
        hit_rates: dict[int, float] = {}
        prefilled_later = 0
        with DaemonFleet(names, net_delay_s=delay,
                         timeout_s=600.0) as fleet:
            with SessionClient(fleet.spec) as client:
                started = time.perf_counter()
                done = 0
                while done < sessions:
                    wave = [client.submit(manifest(tag, done + offset),
                                          points)
                            for offset in range(min(concurrency,
                                                    sessions - done))]
                    for handle in wave:
                        run = handle.result(900)
                        check(run)
                        infos = [report.runtime_info
                                 for report in run.reports.values()]
                        async_pass_model = async_pass_model and all(
                            info["pass_model"] == "async-restartable"
                            for info in infos)
                        peak_threads = max(
                            peak_threads,
                            *(info["thread_count"] for info in infos))
                        first = infos[0]
                        restarts += first["restarts"]
                        lease = first["randomness"]["lease"]
                        if lease["consumed"]:
                            hit_rates[first["session_index"]] = (
                                lease["hits"] / lease["consumed"])
                        if first["session_index"] > 0:
                            prefilled_later += lease["prefilled"]
                    done += len(wave)
                seconds = time.perf_counter() - started
        later = [rate for index, rate in sorted(hit_rates.items())
                 if index > 0]
        arms[concurrency] = {
            "sessions": sessions,
            "wall_clock_s": round(seconds, 4),
            "sessions_per_s": round(sessions / seconds, 4),
            "peak_daemon_threads": peak_threads,
            "restartable_query_restarts": restarts,
            "first_session_pool_hit_rate": round(hit_rates[0], 4)
            if 0 in hit_rates else None,
            "later_sessions_pool_hit_rate": round(
                sum(later) / len(later), 4) if later else None,
            "factors_prefilled_after_first_session": prefilled_later,
        }

    thread_peaks = [arm["peak_daemon_threads"] for arm in arms.values()]
    sequential = arms[SESSION_SCALEOUT_CONCURRENCY[0]]
    warm_improving = (
        sequential["first_session_pool_hit_rate"] is not None
        and sequential["later_sessions_pool_hit_rate"] is not None
        and sequential["later_sessions_pool_hit_rate"]
        > sequential["first_session_pool_hit_rate"])
    c8_rate = arms[8]["sessions_per_s"]
    return {
        "workload": {"parties": 3, "points_per_party": 2,
                     "dimensions": 2, "paillier_bits": 128},
        "net_delay_ms": delay * 1000,
        "arms": {str(k): v for k, v in arms.items()},
        "thread_spread": max(thread_peaks) - min(thread_peaks),
        "thread_spread_tolerance": SESSION_SCALEOUT_THREAD_SPREAD,
        "thread_count_flat": (max(thread_peaks) - min(thread_peaks)
                              <= SESSION_SCALEOUT_THREAD_SPREAD),
        "c8_sessions_per_s": c8_rate,
        "pr7_c8_sessions_per_s": PR7_SESSION_THROUGHPUT_C8,
        "c8_at_or_above_pr7": c8_rate >= PR7_SESSION_THROUGHPUT_C8,
        "warm_hit_rates_improving": warm_improving,
        "pass_model_async": async_pass_model,
        "host_cpus": os.cpu_count(),
        "observables_bit_identical": identical,
        "notes": "each arm has its own fleet; peak_daemon_threads is "
                 "the largest threading.active_count() any daemon "
                 "reported during the arm, and stays flat because "
                 "in-flight sessions are coroutines, not threads; "
                 "restartable_query_restarts counts region queries "
                 "that parked on a missing frame and re-executed "
                 "from the replay log (near-free: the replayed "
                 "powmods hit the process-wide memo, which also "
                 "stays warm across the arm's identically-seeded "
                 "sessions)",
    }


def _obs_overhead_ablation() -> dict:
    """Metrics + tracing on vs off on the resident daemon mesh (PR 10).

    A disabled fleet and a fully instrumented fleet stand side by side,
    and :data:`OBS_OVERHEAD_BATCHES` batches of
    :data:`OBS_OVERHEAD_SESSIONS` serial sessions alternate between
    them under :data:`OBS_OVERHEAD_DELAY_S` simulated link latency.
    The gate is the median of the per-batch-pair on/off ratios.
    Interleaving plus a median of paired ratios is deliberate:
    single-shot wall clocks on a shared CI box swing more than the
    overhead being measured, interleaving makes machine-load drift hit
    both arms alike, and the median shrugs off a single batch that a
    GC pause or CPU-steal spike made slow.  The powmod memo is warmed
    by a discarded priming batch on each fleet so neither arm pays the
    one-time fill.  The instrumented arm writes span traces for every
    daemon and answers a live ``get_metrics`` snapshot; the disabled
    arm exercises the shared null-instrument path the hot loops keep a
    reference to.  Observables must stay bit-identical between the
    arms and against the in-process reference -- the observability
    layer is read-only by design.
    """
    import contextlib
    import statistics
    import tempfile

    from repro.runtime.client import DaemonFleet, SessionClient
    from repro.runtime.orchestrator import build_manifest

    (points, seeds, config, names, reference,
     reference_digests, ports) = _daemon_bench_workload()
    identical = True

    def run_batch(client, tag: str, batch: int) -> float:
        nonlocal identical
        started = time.perf_counter()
        for index in range(OBS_OVERHEAD_SESSIONS):
            manifest = build_manifest(
                points, config, seeds,
                session_id=f"obs-{tag}-{batch}-{index:02d}", ports=ports)
            run = client.run(manifest, points, 120)
            identical = identical and (
                run.result.labels_by_party == reference.labels_by_party
                and run.result.ledger.events == reference.ledger.events
                and run.result.comparisons == reference.comparisons
                and run.transcript_digests == reference_digests)
        return time.perf_counter() - started

    with contextlib.ExitStack() as stack:
        traces = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-obs-bench-"))
        arms = {}
        for tag, metrics_enabled, trace_dir in (
                ("off", False, None), ("on", True, traces)):
            fleet = stack.enter_context(DaemonFleet(
                names, net_delay_s=OBS_OVERHEAD_DELAY_S,
                metrics_enabled=metrics_enabled, trace_dir=trace_dir))
            arms[tag] = stack.enter_context(SessionClient(fleet.spec))
        for tag, client in arms.items():
            run_batch(client, f"{tag}-warm", 0)
        seconds = {tag: [] for tag in arms}
        for batch in range(OBS_OVERHEAD_BATCHES):
            for tag, client in arms.items():
                seconds[tag].append(run_batch(client, tag, batch))
        snapshots = arms["on"].get_metrics(timeout=30)
        expected = (OBS_OVERHEAD_BATCHES + 1) * OBS_OVERHEAD_SESSIONS
        snapshot_ok = set(snapshots) == set(names) and all(
            snap.get("enabled")
            and snap["gauges"].get("repro_sessions_run") == expected
            for snap in snapshots.values())
        trace_files = sorted(path.name for path
                             in pathlib.Path(traces).glob("*.jsonl"))

    ratios = [on / off for on, off in zip(seconds["on"], seconds["off"])]
    overhead = statistics.median(ratios) - 1.0
    return {
        "sessions_per_batch": OBS_OVERHEAD_SESSIONS,
        "batches_per_arm": OBS_OVERHEAD_BATCHES,
        "net_delay_ms": OBS_OVERHEAD_DELAY_S * 1000,
        "disabled_wall_clock_s": round(sum(seconds["off"]), 4),
        "instrumented_wall_clock_s": round(sum(seconds["on"]), 4),
        "overhead_frac": round(overhead, 4),
        "overhead_tolerance": OBS_OVERHEAD_TOLERANCE,
        "observables_bit_identical": identical,
        "metrics_snapshot_ok": snapshot_ok,
        "trace_files": trace_files,
        "notes": "interleaved batches on side-by-side fleets; "
                 "overhead_frac is the median per-batch-pair on/off "
                 "ratio; wall clocks are per-arm totals; a discarded "
                 "priming batch warms each fleet first",
    }


def _offline_scaling_ablation() -> dict:
    """Pool-fill wall-clock: serial refill vs engine workers 1/2/4.

    All fills draw from identically seeded RNGs, so every configuration
    produces the same factors; only where the powmods run differs.  The
    parallel speedup is bounded by the host's usable cores.
    """
    keys = cached_paillier_keypair(256, 991)
    count = OFFLINE_SCALING_FACTORS

    def _fresh_pool():
        return RandomnessPool(keys.public_key, random.Random(2024))

    serial_pool = _fresh_pool()
    started = time.perf_counter()
    serial_pool.refill(count)
    serial_seconds = time.perf_counter() - started
    reference = [serial_pool.encryption_factor() for _ in range(count)]

    runs = {"serial_refill_s": round(serial_seconds, 4)}
    factors_identical = True
    for workers in OFFLINE_SCALING_WORKERS:
        pool = _fresh_pool()
        with ModexpEngine(workers=workers) as engine:
            started = time.perf_counter()
            engine.fill_pool(pool, count)
            seconds = time.perf_counter() - started
        if [pool.encryption_factor() for _ in range(count)] != reference:
            factors_identical = False
        runs[f"workers_{workers}_s"] = round(seconds, 4)
        runs[f"speedup_workers_{workers}"] = round(
            serial_seconds / seconds if seconds else float("inf"), 2)

    runs["factors"] = count
    runs["host_cpus"] = os.cpu_count()
    try:
        runs["host_usable_cpus"] = len(os.sched_getaffinity(0))
    except AttributeError:  # non-linux
        runs["host_usable_cpus"] = os.cpu_count()
    runs["factors_bit_identical"] = factors_identical
    return runs


def _enhanced_quick() -> dict:
    # Sparse own-side neighbourhoods so the single-bit core test (the
    # Section 5 machinery) actually runs; a dense patch would make every
    # point core locally with zero interaction.
    partition = HorizontalPartition(
        alice_points=((0, 0), (7, 0), (14, 0), (40, 40)),
        bob_points=((3, 0), (10, 0), (43, 40), (50, 0)))
    result, seconds = _timed(
        run_enhanced_horizontal_dbscan, partition,
        _config(batched=True, precompute=True))
    return _summarize(result, seconds)


def _vertical_quick() -> dict:
    dataset = Dataset.from_points(list(spread_points(6))
                                  + [(1, 1), (2, 31), (31, 2), (32, 32)])
    partition = partition_vertical(dataset, 1)
    result, seconds = _timed(
        run_vertical_dbscan, partition, _config(batched=True,
                                                precompute=True))
    return _summarize(result, seconds)


def main() -> int:
    horizontal = _horizontal_ablation()
    multiparty = _multiparty_ablation()
    offline = _offline_scaling_ablation()
    dgk_batch = _dgk_batch_ablation()
    latency_sweep = _latency_sweep_ablation()
    socket_runtime = _socket_runtime_ablation()
    session_throughput = _session_throughput_ablation()
    session_scaleout = _session_scaleout_ablation()
    link_auth = _link_auth_ablation()
    obs_overhead = _obs_overhead_ablation()
    payload = {
        "pr": 10,
        "description": "quick fixed-workload perf snapshot "
                       "(unified observability layer: metrics "
                       "registry, span tracing, and live daemon "
                       "introspection on the resident mesh)",
        "horizontal": horizontal,
        "multiparty": multiparty,
        "offline_scaling": offline,
        "dgk_batch": dgk_batch,
        "latency_sweep": latency_sweep,
        "socket_runtime": socket_runtime,
        "session_throughput": session_throughput,
        "session_scaleout": session_scaleout,
        "link_auth": link_auth,
        "obs_overhead": obs_overhead,
        "enhanced": _enhanced_quick(),
        "vertical": _vertical_quick(),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\n[written to {RESULTS_PATH}]")

    failed = False
    for name, section in (("horizontal", horizontal),
                          ("multiparty", multiparty)):
        if not section["labels_bit_identical"]:
            print(f"FAIL: {name} pipeline changed cluster labels",
                  file=sys.stderr)
            failed = True
        if not section["ledger_identical"]:
            print(f"FAIL: {name} pipeline changed the disclosure sequence",
                  file=sys.stderr)
            failed = True
    if not offline["factors_bit_identical"]:
        print("FAIL: a worker configuration changed the pool factors",
              file=sys.stderr)
        failed = True
    two_party = dgk_batch["two_party"]
    for key in ("bits_bit_identical", "ledger_identical",
                "comparisons_identical"):
        if not two_party[key]:
            print(f"FAIL: batched DGK two-party arm broke {key}",
                  file=sys.stderr)
            failed = True
    if not dgk_batch["mesh"]["labels_bit_identical"]:
        print("FAIL: batched DGK mesh changed cluster labels",
              file=sys.stderr)
        failed = True
    if not dgk_batch["mesh"]["ledger_identical"]:
        print("FAIL: batched DGK mesh changed the disclosure sequence",
              file=sys.stderr)
        failed = True
    if not socket_runtime["observables_bit_identical"]:
        print("FAIL: the loopback-TCP run diverged from the in-process "
              "fabric (labels/ledger/comparisons/transcripts)",
              file=sys.stderr)
        failed = True
    if not session_throughput["observables_bit_identical"]:
        print("FAIL: a daemon session diverged from the in-process "
              "reference (labels/ledger/comparisons/transcripts)",
              file=sys.stderr)
        failed = True
    if not session_scaleout["observables_bit_identical"]:
        print("FAIL: a scale-out session diverged from the in-process "
              "reference (labels/ledger/comparisons/transcripts)",
              file=sys.stderr)
        failed = True
    if not session_scaleout["pass_model_async"]:
        print("FAIL: a scale-out session did not run on the "
              "async-restartable pass model", file=sys.stderr)
        failed = True
    if not session_scaleout["thread_count_flat"]:
        print(f"FAIL: daemon thread count grew with session "
              f"concurrency (spread "
              f"{session_scaleout['thread_spread']} > tolerance "
              f"{session_scaleout['thread_spread_tolerance']}) -- "
              f"in-flight sessions must stay coroutines, not threads",
              file=sys.stderr)
        failed = True
    if not session_scaleout["c8_at_or_above_pr7"]:
        print(f"FAIL: scale-out sessions/sec at concurrency 8 "
              f"({session_scaleout['c8_sessions_per_s']:.3f}) fell "
              f"below the PR-7 session_throughput figure "
              f"({PR7_SESSION_THROUGHPUT_C8:.3f})", file=sys.stderr)
        failed = True
    if not session_scaleout["warm_hit_rates_improving"]:
        print("FAIL: sequential sessions did not warm up -- the "
              "randomness service's learned demand should prefill "
              "every session after the first", file=sys.stderr)
        failed = True
    if not obs_overhead["observables_bit_identical"]:
        print("FAIL: an instrumented (or instrumentation-disabled) "
              "session diverged from the in-process reference -- "
              "observability must be read-only", file=sys.stderr)
        failed = True
    if not obs_overhead["metrics_snapshot_ok"]:
        print("FAIL: a daemon's live get_metrics snapshot was missing "
              "or did not account every session", file=sys.stderr)
        failed = True
    if not obs_overhead["trace_files"]:
        print("FAIL: the instrumented arm wrote no span trace files",
              file=sys.stderr)
        failed = True
    if obs_overhead["overhead_frac"] >= OBS_OVERHEAD_TOLERANCE:
        print(f"FAIL: full instrumentation cost "
              f"{obs_overhead['overhead_frac']:.1%} wall-clock, over "
              f"the {OBS_OVERHEAD_TOLERANCE:.0%} budget",
              file=sys.stderr)
        failed = True
    for arm in ("auth_off", "auth_on"):
        if not link_auth[arm]["observables_bit_identical"]:
            print(f"FAIL: the {arm} TCP run diverged from the "
                  f"in-process fabric "
                  f"(labels/ledger/comparisons/transcripts)",
                  file=sys.stderr)
            failed = True
    daemon_arms = session_throughput["resident_daemons"]
    baseline_rate = session_throughput["fresh_fleet_serial"][
        "sessions_per_s"]
    if daemon_arms["1"]["sessions_per_s"] < baseline_rate:
        print("FAIL: resident daemons at concurrency 1 fell below the "
              "fresh-fleet-per-session baseline (amortization lost)",
              file=sys.stderr)
        failed = True
    for concurrency in ("4", "8"):
        if daemon_arms[concurrency]["sessions_per_s"] <= baseline_rate:
            print(f"FAIL: resident daemons at concurrency {concurrency} "
                  f"did not strictly beat the fresh-fleet baseline "
                  f"under simulated latency", file=sys.stderr)
            failed = True
    for party_count, section in latency_sweep["parties"].items():
        if not section["observables_bit_identical"]:
            print(f"FAIL: latency sweep ({party_count} parties) changed "
                  f"labels/ledger/transcripts/comparisons",
                  file=sys.stderr)
            failed = True
        for row in section["rows"]:
            if row["concurrent_simulated_s"] \
                    >= row["sequential_simulated_s"]:
                print(f"FAIL: concurrent pass did not beat sequential at "
                      f"{row['latency_ms']}ms with {party_count} parties",
                      file=sys.stderr)
                failed = True
    if failed:
        return 1
    dgk_speedup = two_party["speedup_batched_vs_per_point"]
    if dgk_speedup < MIN_EXPECTED_DGK_SPEEDUP:
        print(f"WARNING: batched-DGK two-party speedup {dgk_speedup:.2f}x "
              f"below the {MIN_EXPECTED_DGK_SPEEDUP:.1f}x target",
              file=sys.stderr)
    if horizontal["speedup_online_vs_seed"] < MIN_EXPECTED_SPEEDUP:
        print(f"WARNING: horizontal online speedup "
              f"{horizontal['speedup_online_vs_seed']:.2f}x below the "
              f"{MIN_EXPECTED_SPEEDUP:.0f}x target", file=sys.stderr)
    if multiparty["speedup_online_vs_per_point"] < MIN_EXPECTED_MESH_SPEEDUP:
        print(f"WARNING: multiparty online speedup "
              f"{multiparty['speedup_online_vs_per_point']:.2f}x below the "
              f"{MIN_EXPECTED_MESH_SPEEDUP:.0f}x target", file=sys.stderr)
    for party_count, section in latency_sweep["parties"].items():
        for row in section["rows"]:
            if row["speedup_concurrent_vs_sequential"] \
                    < MIN_EXPECTED_LATENCY_SPEEDUP:
                print(f"WARNING: latency-hiding speedup "
                      f"{row['speedup_concurrent_vs_sequential']:.2f}x at "
                      f"{row['latency_ms']}ms / {party_count} parties is "
                      f"below the {MIN_EXPECTED_LATENCY_SPEEDUP:.1f}x "
                      f"target", file=sys.stderr)
    if (daemon_arms["4"]["sessions_per_s"]
            <= daemon_arms["1"]["sessions_per_s"]):
        print("WARNING: concurrency 4 did not beat concurrency 1 on the "
              "resident mesh -- the host is likely compute-bound "
              f"({session_throughput['host_cpus']} cpus)",
              file=sys.stderr)
    top_workers = max(OFFLINE_SCALING_WORKERS)
    top_speedup = offline[f"speedup_workers_{top_workers}"]
    if (offline["host_usable_cpus"] or 1) >= 2 and top_speedup < 2.0:
        print(f"WARNING: offline fill speedup {top_speedup:.2f}x with "
              f"{top_workers} workers on a "
              f"{offline['host_usable_cpus']}-cpu host", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
