"""Quick fixed-workload perf snapshot -- the PR-over-PR trajectory file.

Runs one small, deterministic workload per protocol and writes
``benchmarks/results/BENCH_PR1.json`` with wall-clock, bytes, messages,
and secure-comparison counts, so future PRs have a stable baseline to
compare against.  For the horizontal protocol it additionally runs the
offline/online ablation introduced in PR 1:

- ``seed``: the seed-era pipeline (per-point HDP, no randomness pools).
- ``pipeline``: batched region queries + pools prefilled offline (the
  prefill plan comes from an untimed probe run; the offline phase is
  timed separately from the online protocol).

The script verifies the two pipelines produce bit-identical cluster
labels and identical leakage-ledger disclosure sequences before
reporting the speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_quick.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import clustered_points, spread_points
from repro.core.config import ProtocolConfig
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.vertical import run_vertical_dbscan
from repro.data.dataset import Dataset
from repro.data.partitioning import HorizontalPartition, partition_vertical
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "BENCH_PR1.json")

MIN_EXPECTED_SPEEDUP = 3.0


def _smc(precompute: bool) -> SmcConfig:
    return SmcConfig(paillier_bits=256, comparison="bitwise", key_seed=990,
                     mask_sigma=8, precompute=precompute)


def _config(*, batched: bool, precompute: bool) -> ProtocolConfig:
    return ProtocolConfig(
        eps=1.0, min_pts=3, scale=10, smc=_smc(precompute),
        alice_seed=41, bob_seed=42, batched_region_queries=batched)


def _horizontal_workload() -> HorizontalPartition:
    return HorizontalPartition(
        alice_points=clustered_points(6),
        bob_points=clustered_points(6, origin=(3, 3)))


def _summarize(result, seconds: float) -> dict:
    return {
        "wall_clock_s": round(seconds, 4),
        "bytes": result.stats["total_bytes"],
        "messages": result.stats["total_messages"],
        "rounds": result.stats["rounds"],
        "comparisons": result.comparisons,
    }


def _timed(run, *args, **kwargs):
    started = time.perf_counter()
    result = run(*args, **kwargs)
    return result, time.perf_counter() - started


def _horizontal_ablation() -> dict:
    partition = _horizontal_workload()

    # Seed-era pipeline: per-point HDP, no pools, everything online.
    seed_result, seed_seconds = _timed(
        run_horizontal_dbscan, partition,
        _config(batched=False, precompute=False))

    # Probe run (untimed): learn how much randomness each pool consumes.
    pipeline_config = _config(batched=True, precompute=True)
    probe_channel = Channel()
    probe_session = SmcSession(
        *make_party_pair(probe_channel, pipeline_config.alice_seed,
                         pipeline_config.bob_seed), pipeline_config.smc)
    run_horizontal_dbscan(partition, pipeline_config, session=probe_session)
    plan = {key: report["consumed"]
            for key, report in probe_session.pool_report().items()}

    # Offline phase (timed separately), then the online protocol.
    channel = Channel()
    session = SmcSession(
        *make_party_pair(channel, pipeline_config.alice_seed,
                         pipeline_config.bob_seed), pipeline_config.smc)
    started = time.perf_counter()
    session.precompute_pools(plan)
    offline_seconds = time.perf_counter() - started
    pipeline_result, online_seconds = _timed(
        run_horizontal_dbscan, partition, pipeline_config, session=session)

    pool_totals = {"pregenerated": 0, "consumed": 0, "misses": 0}
    for report in session.pool_report().values():
        for key in pool_totals:
            pool_totals[key] += report[key]

    labels_identical = (
        seed_result.alice_labels == pipeline_result.alice_labels
        and seed_result.bob_labels == pipeline_result.bob_labels)
    ledger_identical = (seed_result.ledger.events
                        == pipeline_result.ledger.events)
    speedup = seed_seconds / online_seconds if online_seconds else float("inf")

    return {
        "workload": {"alice_points": 6, "bob_points": 6, "dimensions": 2},
        "seed": _summarize(seed_result, seed_seconds),
        "pipeline": {
            **_summarize(pipeline_result, online_seconds),
            "offline_s": round(offline_seconds, 4),
            "pool": pool_totals,
        },
        "speedup_online_vs_seed": round(speedup, 2),
        "labels_bit_identical": labels_identical,
        "ledger_identical": ledger_identical,
    }


def _enhanced_quick() -> dict:
    # Sparse own-side neighbourhoods so the single-bit core test (the
    # Section 5 machinery) actually runs; a dense patch would make every
    # point core locally with zero interaction.
    partition = HorizontalPartition(
        alice_points=((0, 0), (7, 0), (14, 0), (40, 40)),
        bob_points=((3, 0), (10, 0), (43, 40), (50, 0)))
    result, seconds = _timed(
        run_enhanced_horizontal_dbscan, partition,
        _config(batched=True, precompute=True))
    return _summarize(result, seconds)


def _vertical_quick() -> dict:
    dataset = Dataset.from_points(list(spread_points(6))
                                  + [(1, 1), (2, 31), (31, 2), (32, 32)])
    partition = partition_vertical(dataset, 1)
    result, seconds = _timed(
        run_vertical_dbscan, partition, _config(batched=True,
                                                precompute=True))
    return _summarize(result, seconds)


def main() -> int:
    horizontal = _horizontal_ablation()
    payload = {
        "pr": 1,
        "description": "quick fixed-workload perf snapshot "
                       "(offline/online crypto pipeline ablation)",
        "horizontal": horizontal,
        "enhanced": _enhanced_quick(),
        "vertical": _vertical_quick(),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\n[written to {RESULTS_PATH}]")

    if not horizontal["labels_bit_identical"]:
        print("FAIL: pipeline changed cluster labels", file=sys.stderr)
        return 1
    if not horizontal["ledger_identical"]:
        print("FAIL: pipeline changed the disclosure sequence",
              file=sys.stderr)
        return 1
    speedup = horizontal["speedup_online_vs_seed"]
    if speedup < MIN_EXPECTED_SPEEDUP:
        print(f"WARNING: online speedup {speedup:.2f}x below the "
              f"{MIN_EXPECTED_SPEEDUP:.0f}x target", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
