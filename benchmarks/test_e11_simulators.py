"""E11 -- empirical Definition 5 simulation (Lemmas 7 and 8).

For each proved-private protocol piece, run the real protocol and the
paper's simulator and compare view distributions with a two-sample KS
test.  Expected shape: all real-vs-simulated pairs indistinguishable
(p >= 0.01); the deliberately broken masking control IS distinguished
(the harness has teeth).
"""

import random

from repro.analysis.report import render_table
from repro.core.simulators import (
    ks_two_sample,
    real_hdp_term_samples,
    real_masker_view_samples,
    real_receiver_output_samples,
    simulated_hdp_term_samples,
    simulated_masker_view_samples,
    simulated_receiver_output_samples,
)
from repro.crypto.keycache import cached_paillier_keypair
from repro.smc.session import SmcConfig

CONFIG = SmcConfig(paillier_bits=256, key_seed=540, mask_sigma=16)
TRIALS = 60


def _run_all():
    reports = {}

    real = real_masker_view_samples(TRIALS, x=37, y=11, config=CONFIG)
    simulated = simulated_masker_view_samples(
        TRIALS, cached_paillier_keypair(256, 2 * CONFIG.key_seed),
        random.Random(5))
    reports["lemma7_masker_view"] = ks_two_sample(real, simulated)

    real = real_receiver_output_samples(100, x=3, y=41,
                                        mask_bound=1 << 24, config=CONFIG)
    simulated = simulated_receiver_output_samples(
        100, x=3, y_bound=100, mask_bound=1 << 24, rng=random.Random(8))
    reports["lemma7_receiver_output"] = ks_two_sample(real, simulated)

    real = real_hdp_term_samples(40, querier_point=(7, -3, 12),
                                 peer_point=(2, 9, -5), value_bound=1000,
                                 config=CONFIG)
    simulated = simulated_hdp_term_samples(40, dimensions=3,
                                           value_bound=1000, config=CONFIG,
                                           rng=random.Random(13))
    reports["lemma8_hdp_terms"] = ks_two_sample(real, simulated)

    # Negative control: masks too small to hide the products.
    weak = SmcConfig(paillier_bits=256, key_seed=540, mask_sigma=0)
    real = real_hdp_term_samples(40, querier_point=(1000, 1000),
                                 peer_point=(1000, 1000), value_bound=1,
                                 config=weak)
    simulated = simulated_hdp_term_samples(40, dimensions=2, value_bound=1,
                                           config=weak,
                                           rng=random.Random(14))
    reports["control_broken_masking"] = ks_two_sample(real, simulated)
    return reports


def test_e11_simulators(benchmark, record_table):
    reports = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [[name, f"{r.statistic:.3f}", f"{r.p_value:.4f}",
             r.indistinguishable()]
            for name, r in reports.items()]
    table = render_table(
        ["view", "KS statistic", "p-value", "indistinguishable"],
        rows, title="E11: real vs simulated views (Definition 5)")
    record_table("e11_simulators", table)

    assert reports["lemma7_masker_view"].indistinguishable()
    assert reports["lemma7_receiver_output"].indistinguishable(alpha=0.001)
    assert reports["lemma8_hdp_terms"].indistinguishable()
    assert not reports["control_broken_masking"].indistinguishable()
