"""Command-line interface: demos, the attack, figures, and the runtime.

Usage::

    python -m repro demo --scenario horizontal --points 20 --eps 1.2
    python -m repro demo --scenario enhanced --min-pts 4
    python -m repro attack --observers 8
    python -m repro figures
    python -m repro orchestrate --parties 3 --points 12 --verify
    python -m repro party --run-dir /tmp/run --party party0
    python -m repro mesh-spec /tmp/mesh.json --parties 3
    python -m repro serve --spec /tmp/mesh.json --party party0
    python -m repro submit --spec /tmp/mesh.json --sessions 4 --verify
    python -m repro submit --spec /tmp/mesh.json --concurrency 32
    python -m repro stats --spec /tmp/mesh.json
    python -m repro trace summarize --trace-dir /tmp/traces

``orchestrate`` runs the k-party mesh as *real OS processes* over
loopback TCP (spawning one ``repro party`` subprocess per data holder);
``party`` is that subprocess's entry point -- it can equally be launched
by hand in separate terminals against a shared run directory (see
``examples/distributed_mesh.py``).

``serve``/``submit`` are the resident-daemon runtime: ``mesh-spec``
writes a shared mesh description, ``serve`` keeps one party daemon
alive per terminal (persistent pair links, warmed crypto engine), and
``submit`` fires one or many clustering sessions at the standing mesh
-- interleaved over the same connections -- and merges the reports.
``submit --spawn`` runs the daemons as background subprocesses for a
one-command demo.

``stats`` asks every daemon of a standing mesh for a live metrics
snapshot over the client control plane; ``trace summarize`` folds the
span files a ``--trace-dir`` run wrote into per-session critical-path
breakdowns.

The CLI exists for downstream users who want to see the protocols run
before writing code; everything it does is a thin wrapper over the
public API.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis.attacks import (
    Domain2D,
    intersection_attack_report,
    ring_of_observers,
)
from repro.analysis.figures import (
    render_arbitrary_figure,
    render_horizontal_figure,
    render_vertical_figure,
)
from repro.analysis.report import format_ratio, render_table
from repro.core.api import cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.generators import gaussian_blobs, interleave_for_horizontal
from repro.data.partitioning import (
    HorizontalPartition,
    partition_arbitrary,
    partition_horizontal,
    partition_vertical,
)
from repro.crypto.engine import ModexpEngine
from repro.crypto.precompute import combine_pool_reports
from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
from repro.multiparty.mesh import PartyMesh
from repro.net.party import make_party_pair
from repro.net.transport import TransportSpec
from repro.smc.session import SmcConfig, SmcSession, channel_for_config

_SCENARIOS = ("horizontal", "enhanced", "vertical", "arbitrary",
              "multiparty")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy preserving distributed DBSCAN (Liu et al., "
                    "EDBT 2012) -- demos and analyses.")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run a protocol on synthetic data")
    demo.add_argument("--scenario", choices=_SCENARIOS,
                      default="horizontal")
    demo.add_argument("--points", type=int, default=16,
                      help="total points across parties")
    demo.add_argument("--eps", type=float, default=1.2)
    demo.add_argument("--min-pts", type=int, default=4)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--backend", choices=("bitwise", "ympp", "oracle"),
                      default="bitwise")
    demo.add_argument("--key-bits", type=int, default=256)
    demo.add_argument("--workers", type=int, default=1,
                      help="modexp engine worker processes (1 = serial)")
    demo.add_argument("--no-precompute", action="store_true",
                      help="disable randomness pools (seed-era behaviour)")
    demo.add_argument("--prefill", type=int, default=0,
                      help="factors to pregenerate per randomness pool "
                           "before the run (offline phase)")
    demo.add_argument("--transport",
                      choices=("in-process", "threaded", "simulated"),
                      default="in-process",
                      help="message fabric under every channel: seed-era "
                           "deques, thread-safe blocking queues, or the "
                           "simulated-latency network model")
    demo.add_argument("--net-latency-ms", type=float, default=5.0,
                      help="one-way link latency for --transport simulated")
    demo.add_argument("--peer-concurrency", action="store_true",
                      help="multiparty scenario: issue the per-peer region "
                           "queries of each driver step concurrently "
                           "(identical labels/ledger; overlapped latency)")

    attack = commands.add_parser("attack",
                                 help="quantify the Figure 1 attack")
    attack.add_argument("--observers", type=int, default=8)
    attack.add_argument("--eps", type=float, default=2.0)
    attack.add_argument("--samples", type=int, default=40000)
    attack.add_argument("--seed", type=int, default=42)

    commands.add_parser("figures",
                        help="render the Figure 2/3/4 partition diagrams")

    orchestrate = commands.add_parser(
        "orchestrate",
        help="run the k-party mesh as real OS processes over loopback TCP")
    orchestrate.add_argument("--parties", type=int, default=3)
    orchestrate.add_argument("--points", type=int, default=12,
                             help="total points across parties")
    orchestrate.add_argument("--eps", type=float, default=1.2)
    orchestrate.add_argument("--min-pts", type=int, default=4)
    orchestrate.add_argument("--seed", type=int, default=7)
    orchestrate.add_argument("--key-bits", type=int, default=256)
    orchestrate.add_argument("--run-dir", default=None,
                             help="materialize manifest/partitions/reports "
                                  "here (kept); default: a temp dir, "
                                  "removed after the run")
    orchestrate.add_argument("--deadline-s", type=float, default=180.0)
    orchestrate.add_argument("--fault", action="append", default=[],
                             dest="faults", metavar="SPEC",
                             help="inject a planned failure, e.g. "
                                  "'kill:party1@pass2' or "
                                  "'drop:party0:party0-party2@pass1.q3' "
                                  "(repeatable; grammar in "
                                  "repro/runtime/faults.py).  The fleet "
                                  "recovers from its checkpoints and the "
                                  "result stays bit-identical")
    orchestrate.add_argument("--retry-budget", type=int, default=3,
                             help="re-spawns of dead parties before the "
                                  "run is abandoned")
    orchestrate.add_argument("--keep-run-dir", action="store_true",
                             help="keep the temporary run directory "
                                  "(checkpoints, failure reports, party "
                                  "logs) for inspection")
    orchestrate.add_argument("--prepare-only", action="store_true",
                             help="write the manifest and partition files "
                                  "to --run-dir and print one 'repro "
                                  "party' command per party (run them in "
                                  "separate terminals) instead of "
                                  "spawning the fleet")
    orchestrate.add_argument("--verify", action="store_true",
                             help="also run the in-process mesh on the "
                                  "same workload and assert bit-identical "
                                  "labels, ledger, and per-pair "
                                  "transcripts")
    orchestrate.add_argument("--psk", default=None,
                             help="pre-shared key: authenticate every "
                                  "party link with per-frame HMACs "
                                  "(prefer the REPRO_PSK environment "
                                  "variable over argv on shared hosts)")
    orchestrate.add_argument("--trace-dir", default=None,
                             help="write one structured span trace per "
                                  "party to <dir>/<party>.jsonl (inspect "
                                  "with 'repro trace summarize')")

    mesh_spec = commands.add_parser(
        "mesh-spec",
        help="write a daemon mesh description (party names + listen "
             "ports) for 'repro serve' / 'repro submit'")
    mesh_spec.add_argument("path", help="where to write the spec JSON")
    mesh_spec.add_argument("--parties", type=int, default=3)
    mesh_spec.add_argument("--net-latency-ms", type=float, default=0.0,
                           help="simulated one-way inbound latency per "
                                "pair link (real event-loop time)")
    mesh_spec.add_argument("--workers", type=int, default=1,
                           help="modexp engine worker processes per "
                                "daemon (1 = serial)")
    mesh_spec.add_argument("--host", default=None,
                           help="dial host for the daemons (default "
                                "loopback; set a routable address for "
                                "multi-host meshes and bind with "
                                "'serve --bind-host')")
    mesh_spec.add_argument("--max-sessions", type=int, default=0,
                           help="per-daemon cap on concurrent sessions; "
                                "excess submissions get a typed "
                                "session_rejected reply (0 = unlimited)")
    mesh_spec.add_argument("--link-auth", action="store_true",
                           help="require per-frame HMAC authentication "
                                "on every daemon and client link (each "
                                "endpoint supplies the PSK via --psk / "
                                "REPRO_PSK; the flag is part of the "
                                "mesh digest)")

    serve = commands.add_parser(
        "serve",
        help="run one resident party daemon (persistent pair links, "
             "sessions multiplexed over them) until interrupted")
    serve.add_argument("--spec", required=True,
                       help="mesh spec JSON from 'repro mesh-spec'")
    serve.add_argument("--party", required=True, dest="party_name")
    serve.add_argument("--psk", default=None,
                       help="pre-shared key for --link-auth meshes "
                            "(falls back to REPRO_PSK)")
    serve.add_argument("--bind-host", default=None,
                       help="listen address override (e.g. 0.0.0.0 to "
                            "accept cross-machine dials while the spec "
                            "advertises this daemon's routable host)")
    serve.add_argument("--trace-dir", default=None,
                       help="write this daemon's structured span trace "
                            "to <dir>/<party>.jsonl (falls back to "
                            "REPRO_TRACE_DIR)")

    submit = commands.add_parser(
        "submit",
        help="submit clustering sessions to a standing daemon mesh "
             "(or --spawn a throwaway fleet first)")
    submit.add_argument("--spec", default=None,
                        help="mesh spec of the standing daemons; omit "
                             "with --spawn")
    submit.add_argument("--spawn", action="store_true",
                        help="spawn a daemon fleet as subprocesses for "
                             "this submission, then shut it down")
    submit.add_argument("--parties", type=int, default=3,
                        help="party count for --spawn (ignored with "
                             "--spec)")
    submit.add_argument("--sessions", type=int, default=1,
                        help="how many sessions to submit concurrently")
    submit.add_argument("--concurrency", type=int, default=1,
                        help="submit each session manifest this many "
                             "times in flight, every copy under its own "
                             "rng_namespace (distinct coin streams on "
                             "shared seeds)")
    submit.add_argument("--points", type=int, default=12,
                        help="total points across parties per session")
    submit.add_argument("--eps", type=float, default=1.2)
    submit.add_argument("--min-pts", type=int, default=4)
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--key-bits", type=int, default=256)
    submit.add_argument("--verify", action="store_true",
                        help="also run the in-process mesh per session "
                             "and assert bit-identical labels, ledger, "
                             "and per-pair transcripts")
    submit.add_argument("--shutdown", action="store_true",
                        help="stop the daemons after the submissions "
                             "(graceful: daemons drain before closing "
                             "links)")
    submit.add_argument("--psk", default=None,
                        help="pre-shared key for --link-auth meshes "
                             "(falls back to REPRO_PSK)")
    submit.add_argument("--trace-dir", default=None,
                        help="with --spawn: every spawned daemon writes "
                             "its structured span trace to "
                             "<dir>/<party>.jsonl")

    stats = commands.add_parser(
        "stats",
        help="ask every daemon of a standing mesh for a live metrics "
             "snapshot (sessions, restarts, pool hit rate, per-pair "
             "frames/bytes)")
    stats.add_argument("--spec", required=True,
                       help="mesh spec JSON from 'repro mesh-spec'")
    stats.add_argument("--psk", default=None,
                       help="pre-shared key for --link-auth meshes "
                            "(falls back to REPRO_PSK)")
    stats.add_argument("--json", action="store_true",
                       help="print the raw per-daemon snapshots as JSON "
                            "instead of the summary")
    stats.add_argument("--timeout", type=float, default=None,
                       help="seconds to wait for every daemon's reply "
                            "(default: the spec's session timeout)")

    trace = commands.add_parser(
        "trace",
        help="analyze structured span traces from a --trace-dir run")
    trace.add_argument("action", choices=("summarize",),
                       help="summarize: per-session critical-path "
                            "breakdown across parties and passes")
    trace.add_argument("--trace-dir", required=True,
                       help="directory of <party>.jsonl span files")

    party = commands.add_parser(
        "party",
        help="one data holder of an orchestrated run (loads only its own "
             "partition file from --run-dir)")
    party.add_argument("--run-dir", required=True)
    party.add_argument("--party", required=True, dest="party_name")
    party.add_argument("--fail-after-queries", type=int, default=None,
                       help="failure-injection hook: die hard after N "
                            "queries (orchestrator failure-path tests)")
    party.add_argument("--resume", action="store_true",
                       help="rebuild state from checkpoint_<party>.json "
                            "in --run-dir and rejoin the mesh at the "
                            "first incomplete pass")
    party.add_argument("--epoch", type=int, default=0,
                       help="recovery-epoch hint from the orchestrator "
                            "(the checkpoint and the handshake's "
                            "adopt-max rule refine it)")
    party.add_argument("--psk", default=None,
                       help="pre-shared key for link-authenticated "
                            "manifests (falls back to REPRO_PSK)")
    party.add_argument("--bind-host", default=None,
                       help="listen address override for multi-host "
                            "meshes (dialing still uses the manifest's "
                            "host)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "attack":
        return _run_attack(args)
    if args.command == "figures":
        return _run_figures()
    if args.command == "orchestrate":
        return _run_orchestrate(args)
    if args.command == "party":
        return _run_party(args)
    if args.command == "mesh-spec":
        return _run_mesh_spec(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "trace":
        return _run_trace(args)
    return 2  # unreachable: argparse enforces the choices


def _demo_config(args, engine: ModexpEngine) -> ProtocolConfig:
    transport = None
    if args.transport != "in-process":
        transport = TransportSpec(
            kind=args.transport.replace("-", "_"),
            latency_s=args.net_latency_ms / 1000.0)
    return ProtocolConfig(
        eps=args.eps, min_pts=args.min_pts, scale=100,
        smc=SmcConfig(paillier_bits=args.key_bits, comparison=args.backend,
                      key_seed=args.seed, engine=engine,
                      precompute=not args.no_precompute,
                      transport=transport),
        concurrent_peers=args.peer_concurrency,
        alice_seed=args.seed, bob_seed=args.seed + 1)


def _print_crypto_summary(engine: ModexpEngine, pool_reports) -> None:
    """The --workers / --precompute visibility lines of the run summary."""
    pool_reports = list(pool_reports)
    if pool_reports:
        totals = combine_pool_reports(pool_reports)
        print("pools: pregenerated={pregenerated}  consumed={consumed}  "
              "misses={misses}  available={available}".format(**totals))
    stats = engine.report()
    print("engine: workers={workers}  batches={batches}  jobs={jobs}  "
          "parallel_modexps={parallel_modexps}  fallbacks={fallbacks}  "
          "warmups={warmups}".format(**stats))


def _demo_points(args) -> list[tuple[int, ...]]:
    per_blob = max(2, args.points // 2)
    return gaussian_blobs(random.Random(args.seed),
                          centers=[(0.0, 0.0), (6.0, 6.0)],
                          points_per_blob=per_blob,
                          spread=0.4)[:args.points]


def _run_demo(args) -> int:
    points = _demo_points(args)
    with ModexpEngine(workers=args.workers) as engine:
        return _run_demo_with_engine(args, points, engine)


def _run_demo_with_engine(args, points, engine: ModexpEngine) -> int:
    config = _demo_config(args, engine)
    prefill = 0 if args.no_precompute else args.prefill
    # Precompute phase: spawn the worker pool before anything is run (or
    # timed), so the first online batch never absorbs pool startup.
    engine.warm_up()
    if args.scenario == "multiparty":
        thirds = max(1, len(points) // 3)
        by_party = {"party0": points[:thirds],
                    "party1": points[thirds:2 * thirds],
                    "party2": points[2 * thirds:]}
        mesh = PartyMesh(list(by_party), config.smc,
                         seeds=[args.seed, args.seed + 1, args.seed + 2])
        if prefill:
            mesh.precompute_pools(prefill)
        result = run_multiparty_horizontal_dbscan(by_party, config,
                                                  mesh=mesh)
        for name, labels in result.labels_by_party.items():
            print(f"{name}: {labels}")
        print(f"bytes: {result.stats['total_bytes']:,}  "
              f"comparisons: {result.comparisons}")
        if args.transport == "simulated":
            print(f"simulated network: "
                  f"{result.simulated_seconds * 1000:.1f}ms "
                  f"{'concurrent' if args.peer_concurrency else 'sequential'}"
                  f" passes  (per-link sum "
                  f"{result.stats['simulated_seconds'] * 1000:.1f}ms)")
        print(f"disclosures: {result.ledger.profile()}")
        _print_crypto_summary(
            engine, (entry for report in mesh.pool_report().values()
                     for entry in report.values()))
        return 0

    session = None
    if args.scenario in ("horizontal", "enhanced"):
        alice_pts, bob_pts = interleave_for_horizontal(
            points, random.Random(args.seed + 9))
        partition = HorizontalPartition(alice_points=tuple(alice_pts),
                                        bob_points=tuple(bob_pts))
        if args.scenario == "horizontal":
            # Plain horizontal runs over an injected session so the pool
            # accounting (and any --prefill offline phase) is visible.
            session = SmcSession(
                *make_party_pair(channel_for_config(config.smc),
                                 config.alice_seed,
                                 config.bob_seed), config.smc)
            if prefill:
                session.precompute_pools(prefill)
        run = cluster_partitioned(partition, config,
                                  enhanced=args.scenario == "enhanced",
                                  session=session)
    elif args.scenario == "vertical":
        run = cluster_partitioned(
            partition_vertical(Dataset.from_points(points), 1), config)
    else:
        run = cluster_partitioned(
            partition_arbitrary(Dataset.from_points(points),
                                random.Random(args.seed + 5)), config)

    print(f"variant: {run.variant}")
    print(f"alice labels: {run.alice_labels}")
    print(f"bob   labels: {run.bob_labels}")
    print(f"bytes: {run.stats['total_bytes']:,}  "
          f"comparisons: {run.comparisons}  "
          f"time: {run.elapsed_seconds:.2f}s")
    if args.transport == "simulated":
        print(f"simulated network: "
              f"{run.stats['simulated_seconds'] * 1000:.1f}ms "
              f"({args.net_latency_ms:g}ms one-way latency, "
              f"{run.stats['rounds']} rounds)")
    print(f"disclosures: {run.ledger.profile()}")
    _print_crypto_summary(
        engine, session.pool_report().values() if session else ())
    return 0


def _orchestrate_workload(args) -> tuple[dict[str, list], list[int]]:
    points = _demo_points(args)
    if args.parties < 2:
        raise SystemExit("--parties must be >= 2")
    share = max(1, len(points) // args.parties)
    by_party = {}
    for index in range(args.parties):
        lo = index * share
        hi = len(points) if index == args.parties - 1 else lo + share
        by_party[f"party{index}"] = points[lo:hi]
    seeds = [args.seed + index for index in range(args.parties)]
    return by_party, seeds


def _run_orchestrate(args) -> int:
    from repro.runtime.orchestrator import (
        OrchestrationError,
        orchestrate_run,
        verify_against_in_process,
    )

    by_party, seeds = _orchestrate_workload(args)
    config = ProtocolConfig(
        eps=args.eps, min_pts=args.min_pts, scale=100,
        smc=SmcConfig(paillier_bits=args.key_bits, comparison="bitwise",
                      key_seed=args.seed))
    if args.prepare_only:
        return _prepare_run_dir(args, by_party, config, seeds)
    try:
        run = orchestrate_run(by_party, config, seeds=seeds,
                              run_dir=args.run_dir,
                              deadline_s=args.deadline_s,
                              faults=args.faults,
                              retry_budget=args.retry_budget,
                              keep_run_dir=args.keep_run_dir,
                              psk=_resolve_psk(args),
                              trace_dir=args.trace_dir)
    except OrchestrationError as exc:
        print(f"orchestration failed: {exc}", file=sys.stderr)
        for failure in exc.failures:
            print(f"  {failure.summary()}", file=sys.stderr)
        return 1
    for failure in run.failures:
        print(f"recovered: {failure.summary()}")
    for name, count in sorted(run.respawns.items()):
        if count:
            print(f"re-spawned {name} x{count} (resumed from checkpoint)")
    for name, labels in run.result.labels_by_party.items():
        print(f"{name}: {labels}")
    print(f"bytes: {run.result.stats['total_bytes']:,}  "
          f"comparisons: {run.result.comparisons}  "
          f"wall-clock: {run.elapsed_seconds:.2f}s  "
          f"(parties as OS processes over loopback TCP)")
    print(f"disclosures: {run.result.ledger.profile()}")
    if not args.verify:
        return 0

    checks = verify_against_in_process(run, by_party, config, seeds)
    for check, passed in checks.items():
        print(f"verify {check}: {'bit-identical' if passed else 'MISMATCH'}")
    return 0 if all(checks.values()) else 1


def _prepare_run_dir(args, by_party, config, seeds) -> int:
    import pathlib

    from repro.runtime.orchestrator import build_manifest, write_run_dir

    if not args.run_dir:
        raise SystemExit("--prepare-only requires --run-dir")
    manifest = build_manifest(by_party, config, seeds)
    run_dir = pathlib.Path(args.run_dir)
    write_run_dir(run_dir, manifest, by_party)
    print(f"run directory prepared: {run_dir}")
    print("launch each party in its own terminal:")
    for name in manifest.names:
        print(f"  python -m repro party --run-dir {run_dir} --party {name}")
    print("each party writes report_<name>.json when its passes finish")
    return 0


def _resolve_psk(args) -> str | None:
    import os

    return args.psk or os.environ.get("REPRO_PSK") or None


def _run_party(args) -> int:
    from repro.runtime.party import run_party

    report = run_party(args.run_dir, args.party_name,
                       fail_after_queries=args.fail_after_queries,
                       resume=args.resume, epoch=args.epoch,
                       psk=_resolve_psk(args),
                       bind_host=args.bind_host)
    print(f"{report.party}: labels={report.labels} "
          f"elapsed={report.elapsed_seconds:.2f}s")
    return 0


def _run_mesh_spec(args) -> int:
    import pathlib

    from repro.runtime.daemon import MeshSpec, mesh_digest
    from repro.runtime.orchestrator import allocate_ports

    if args.parties < 2:
        raise SystemExit("--parties must be >= 2")
    names = tuple(f"party{index}" for index in range(args.parties))
    host_kwargs = {"host": args.host} if args.host else {}
    ports = allocate_ports(args.parties, **host_kwargs)
    spec = MeshSpec(names=names, ports=dict(zip(names, ports)),
                    net_delay_s=args.net_latency_ms / 1000.0,
                    engine_workers=args.workers,
                    max_sessions=args.max_sessions,
                    link_auth=args.link_auth,
                    **host_kwargs)
    path = pathlib.Path(args.path)
    path.write_text(spec.to_json())
    print(f"mesh spec written: {path}  (digest {mesh_digest(spec)[:12]})")
    print("launch each daemon in its own terminal:")
    auth_hint = " --psk <shared secret>" if args.link_auth else ""
    for name in names:
        print(f"  python -m repro serve --spec {path} --party {name}"
              f"{auth_hint}")
    print(f"then submit sessions: python -m repro submit --spec {path}"
          f"{auth_hint}")
    return 0


def _run_serve(args) -> int:
    import os
    import pathlib
    import signal

    from repro.runtime.daemon import MeshSpec, PartyDaemon

    spec = MeshSpec.from_json(pathlib.Path(args.spec).read_text())
    trace_dir = args.trace_dir or os.environ.get("REPRO_TRACE_DIR") or None
    daemon = PartyDaemon(spec, args.party_name, psk=_resolve_psk(args),
                         bind_host=args.bind_host, trace_dir=trace_dir)
    interrupts = 0

    def _on_interrupt(signum, frame) -> None:
        # First interrupt drains (in-flight sessions finish, new
        # submits get the typed `draining` rejection); the second
        # cancels them.  Before the event loop exists there is nothing
        # to drain -- fall back to the plain KeyboardInterrupt exit.
        nonlocal interrupts
        interrupts += 1
        if daemon._loop is None:
            raise KeyboardInterrupt
        if interrupts == 1:
            print("draining: finishing in-flight sessions "
                  "(interrupt again to stop hard)", flush=True)
            daemon.stop(drain=True)
        else:
            daemon.stop()

    print(f"daemon {args.party_name} listening on "
          f"{args.bind_host or spec.host}:{spec.ports[args.party_name]} "
          f"(mesh of {len(spec.names)}"
          f"{', link auth on' if spec.link_auth else ''}; "
          f"ctrl-c drains, twice stops hard)", flush=True)
    handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            handlers[signum] = signal.signal(signum, _on_interrupt)
        except ValueError:
            pass  # not the main thread; keep default delivery
    try:
        daemon.run()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, previous in handlers.items():
            signal.signal(signum, previous)
    return 0


def _run_submit(args) -> int:
    import pathlib

    from repro.runtime.client import (
        DaemonFleet,
        SessionClient,
        SessionClientError,
    )
    from repro.runtime.daemon import MeshSpec
    from repro.runtime.manifest import pair_key
    from repro.runtime.orchestrator import build_manifest

    if bool(args.spec) == bool(args.spawn):
        raise SystemExit("submit needs exactly one of --spec or --spawn")

    psk = _resolve_psk(args)
    fleet = None
    if args.spawn:
        names = tuple(f"party{index}" for index in range(args.parties))
        fleet = DaemonFleet(names, mode="process", psk=psk,
                            trace_dir=args.trace_dir).start()
        spec = fleet.spec
    else:
        spec = MeshSpec.from_json(pathlib.Path(args.spec).read_text())

    args.parties = len(spec.names)
    by_party, seeds = _orchestrate_workload(args)
    # _orchestrate_workload names parties party0..k-1; rebind the same
    # partitions to the mesh's party names in slot order.
    by_party = dict(zip(spec.names, by_party.values()))
    config = ProtocolConfig(
        eps=args.eps, min_pts=args.min_pts, scale=100,
        smc=SmcConfig(paillier_bits=args.key_bits, comparison="bitwise",
                      key_seed=args.seed))
    ports = {pair_key(a, b): 0
             for i, a in enumerate(spec.names)
             for b in spec.names[i + 1:]}
    try:
        with SessionClient(spec, psk=psk) as client:
            concurrency = max(1, getattr(args, "concurrency", 1))
            handles = []
            for index in range(max(1, args.sessions)):
                manifest = build_manifest(
                    by_party, config, seeds,
                    session_id=f"submit-{index:03d}",
                    ports=ports, host=spec.host)
                if concurrency > 1:
                    handles.extend(client.submit_wave(
                        manifest, by_party, concurrency))
                else:
                    handles.append(client.submit(manifest, by_party))
            failures = 0
            for handle in handles:
                try:
                    run = handle.result()
                except SessionClientError as exc:
                    print(f"{handle.session_id}: FAILED ({exc})",
                          file=sys.stderr)
                    failures += 1
                    continue
                info = next(iter(run.reports.values())).runtime_info
                print(f"{handle.session_id}: labels="
                      f"{dict(run.result.labels_by_party)}  "
                      f"comparisons={run.result.comparisons}  "
                      f"{run.elapsed_seconds:.2f}s  "
                      f"(warm_start={info.get('warm_start')})")
                if args.verify and not _verify_daemon_run(
                        run, by_party, config, seeds):
                    failures += 1
            if args.shutdown:
                client.shutdown_mesh(drain=True)
        return 1 if failures else 0
    finally:
        if fleet is not None:
            fleet.stop()


def _run_stats(args) -> int:
    import json
    import pathlib

    from repro.runtime.client import SessionClient, SessionClientError
    from repro.runtime.daemon import MeshSpec

    spec = MeshSpec.from_json(pathlib.Path(args.spec).read_text())
    try:
        with SessionClient(spec, psk=_resolve_psk(args)) as client:
            snapshots = client.get_metrics(timeout=args.timeout)
    except SessionClientError as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshots, indent=2, sort_keys=True))
        return 0
    for party in sorted(snapshots):
        _print_daemon_stats(party, snapshots[party])
    return 0


def _print_daemon_stats(party: str, snapshot: dict) -> None:
    from repro.obs.metrics import parse_series_key

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})

    def total(name: str) -> float:
        return sum(value for key, value in counters.items()
                   if parse_series_key(key)[0] == name)

    def level(name: str, **labels) -> float:
        from repro.obs.metrics import series_key
        return gauges.get(series_key(name, labels), 0)

    consumed = level("repro_randomness", stat="factors_consumed")
    hits = level("repro_randomness", stat="factors_hit")
    hit_rate = f"{hits / consumed:.1%}" if consumed else "n/a"
    print(f"{party}: sessions run={level('repro_sessions_run'):g} "
          f"active={level('repro_sessions_active'):g} "
          f"admitted={total('repro_sessions_admitted_total'):g} "
          f"completed={total('repro_sessions_completed_total'):g} "
          f"failed={total('repro_sessions_failed_total'):g} "
          f"rejected={total('repro_sessions_rejected_total'):g}")
    print(f"  restarts={total('repro_restarts_total'):g}  "
          f"pool hit rate {hit_rate} ({hits:g}/{consumed:g})  "
          f"threads={level('repro_daemon_threads'):g}")
    links: dict[str, dict[str, float]] = {}
    for key, value in counters.items():
        name, labels = parse_series_key(key)
        if name not in ("repro_link_frames_total", "repro_link_bytes_total"):
            continue
        entry = links.setdefault(labels.get("pair", "?"), {
            "frames_out": 0, "frames_in": 0, "bytes_out": 0, "bytes_in": 0})
        unit = "frames" if name == "repro_link_frames_total" else "bytes"
        entry[f"{unit}_{labels.get('dir', 'out')}"] += value
    for pair in sorted(links):
        entry = links[pair]
        print(f"  link {pair}: out {entry['frames_out']:g} frames / "
              f"{entry['bytes_out']:g} bytes, in {entry['frames_in']:g} "
              f"frames / {entry['bytes_in']:g} bytes")


def _run_trace(args) -> int:
    from repro.obs.trace import format_trace_summary, summarize_trace_dir

    summary = summarize_trace_dir(args.trace_dir)
    if not summary["sessions"]:
        print(f"no session spans found under {args.trace_dir}",
              file=sys.stderr)
        return 1
    print(format_trace_summary(summary), end="")
    return 0


def _verify_daemon_run(run, by_party, config, seeds) -> bool:
    from repro.net.transcript import transcript_digest
    from repro.runtime.manifest import pair_key

    # The reference must share the session's coin stream: wave sessions
    # (--concurrency) run under derived rng_namespaces, and a
    # namespace-mismatched reference would flag transcript drift that
    # is really just different coins.
    mesh = PartyMesh(list(by_party), config.smc, seeds=seeds,
                     rng_namespace=run.manifest.rng_namespace)
    reference = run_multiparty_horizontal_dbscan(by_party, config,
                                                 seeds=seeds, mesh=mesh)
    digests = {pair_key(*pair): transcript_digest(transcript)
               for pair, transcript in mesh.pair_transcripts().items()}
    checks = {
        "labels": run.result.labels_by_party == reference.labels_by_party,
        "ledger": run.result.ledger.events == reference.ledger.events,
        "comparisons": run.result.comparisons == reference.comparisons,
        "transcripts": run.transcript_digests == digests,
    }
    for check, passed in checks.items():
        print(f"  verify {check}: "
              f"{'bit-identical' if passed else 'MISMATCH'}")
    return all(checks.values())


def _run_attack(args) -> int:
    domain = Domain2D(x_min=-10, x_max=10, y_min=-10, y_max=10)
    rows = []
    for count in range(1, args.observers + 1):
        observers = ring_of_observers((0.0, 0.0), count,
                                      distance=args.eps * 0.85)
        report = intersection_attack_report(
            observers, args.eps, domain, random.Random(args.seed),
            samples=args.samples)
        rows.append([count,
                     f"{report.kumar_posterior_area:.3f}",
                     format_ratio(report.kumar_localization),
                     f"{report.permuted_posterior_area:.2f}",
                     format_ratio(report.permuted_localization)])
    print(render_table(
        ["observers", "kumar_area", "kumar_frac", "ours_area", "ours_frac"],
        rows, title=f"Figure 1 attack, eps={args.eps}, "
                    f"prior={domain.area:.0f}"))
    return 0


def _run_figures() -> int:
    dataset = Dataset.from_points([(1, 2, 3, 4), (5, 6, 7, 8),
                                   (9, 10, 11, 12)])
    print("Figure 2 -- horizontally partitioned data:")
    print(render_horizontal_figure(partition_horizontal(dataset, 2)))
    print("\nFigure 3 -- vertically partitioned data:")
    print(render_vertical_figure(partition_vertical(dataset, 2)))
    print("\nFigure 4 -- arbitrarily partitioned data:")
    print(render_arbitrary_figure(
        partition_arbitrary(dataset, random.Random(4),
                            shared_fraction=1.0)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
