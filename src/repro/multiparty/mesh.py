"""Pairwise session mesh for k-party protocols.

Each physical party has one set of key material, reused across all of
its pairwise channels; each unordered pair of parties gets its own
channel (with its own transcript, over the fabric
``SmcConfig.transport`` selects) and an :class:`SmcSession` over it.
Global statistics are the merge of the pairwise channels.

Per-pair randomness: a party's coin tosses on the link to peer ``P``
come from a dedicated substream derived deterministically from the
party's seed and the canonical pair key (SHA-256 of
``seed | party | pair``).  The seed-era mesh handed *one*
``random.Random`` per party to all of its pairwise channels, which made
the draw sequence depend on the order the pairwise protocols happened
to interleave -- harmless while driver passes visited peers strictly
sequentially, but a data race the moment two pairwise sessions run
concurrently (``ProtocolConfig(concurrent_peers=True)``).  With
substreams, concurrent and sequential executions draw bit-identical
randomness per pair, so labels, per-pair transcripts, and ledgers match
exactly (property-tested in ``tests/multiparty/test_scheduler.py``).
"""

from __future__ import annotations

import random

from repro.net.party import Party
from repro.net.transport import derive_seeded_stream
from repro.net.stats import CommunicationStats
from repro.smc.session import (
    CryptoContext,
    FullKeyProvider,
    SmcConfig,
    SmcSession,
    channel_for_config,
)


def derive_pair_rng(seed: int | None, party: str, left: str,
                    right: str,
                    namespace: str | None = None) -> random.Random:
    """A party's private RNG substream for one pairwise link.

    Derived (via :func:`~repro.net.transport.derive_seeded_stream`) by
    hashing the party seed with the party's own name and the canonical
    (ordered) pair key, so the stream is (a) deterministic under a
    seed, (b) distinct per (party, pair), and (c) independent of *when*
    the pair's protocol runs relative to the party's other pairs --
    which is also what lets the PR-5 socket runtime re-derive the exact
    same coins in every party process.  ``None`` stays
    nondeterministic.

    ``namespace`` adds a further derivation level for multi-session
    deployments: a daemon serving many clustering sessions derives each
    session's coins from (seed, namespace=session id, party, pair), so
    two sessions sharing seeds never share a coin stream.  ``None``
    keeps the legacy per-(party, pair) stream -- the default everywhere,
    so all existing single-session equivalences are unchanged.
    """
    if namespace is None:
        return derive_seeded_stream(seed, party, left, right)
    return derive_seeded_stream(seed, "session", namespace, party, left,
                                right)


class MeshError(ValueError):
    """Raised for degenerate meshes or unknown parties."""


class PartyMesh:
    """``k`` parties, a channel and session per unordered pair.

    Args:
        names: distinct party names, e.g. ``["party0", "party1", ...]``.
        config: shared cryptographic configuration.
        seeds: optional per-party RNG seeds (parallel to ``names``).
        rng_namespace: optional per-session derivation tag threaded into
            every :func:`derive_pair_rng` call (see there); ``None``
            keeps the legacy streams.
    """

    def __init__(self, names: list[str], config: SmcConfig,
                 seeds: list[int | None] | None = None,
                 rng_namespace: str | None = None,
                 key_provider=None):
        if len(names) < 2:
            raise MeshError("a mesh needs at least two parties")
        if len(set(names)) != len(names):
            raise MeshError(f"duplicate party names in {names}")
        if seeds is not None and len(seeds) != len(names):
            raise MeshError("seeds must parallel names")
        self.names = list(names)
        # name -> position, so the hot pair-ordering path is two dict
        # hits instead of two O(k) list scans per routed lookup.
        self._slots = {name: slot for slot, name in enumerate(self.names)}
        self.config = config
        self.rng_namespace = rng_namespace
        self._seeds = {name: (seeds[index] if seeds else None)
                       for index, name in enumerate(names)}
        # Party-level stream: key generation only (pairwise channels use
        # derive_pair_rng substreams -- see module docstring).
        self._rngs = {
            name: random.Random(seed) for name, seed in self._seeds.items()
        }
        # Key material goes through a provider so the runtime layers can
        # swap the trust model (sealed peer contexts) without touching
        # the mesh wiring; the default derives every party's full
        # keypair exactly as before.
        self._key_provider = key_provider or FullKeyProvider(config)
        self._contexts = {
            name: self._make_context(name, slot)
            for slot, name in enumerate(names)
        }
        self._channels: dict[tuple[str, str], Channel] = {}
        self._sessions: dict[tuple[str, str], SmcSession] = {}
        self._parties: dict[tuple[str, str], dict[str, Party]] = {}
        for index, left in enumerate(names):
            for right in names[index + 1:]:
                self._build_pair(left, right)

    def _make_context(self, name: str, slot: int) -> CryptoContext:
        return self._key_provider.context_for(name, slot, self._rngs[name])

    def _build_pair(self, left: str, right: str) -> None:
        channel = channel_for_config(self.config, left, right)
        left_party = Party(
            channel.left, derive_pair_rng(self._seeds[left], left,
                                          left, right,
                                          namespace=self.rng_namespace))
        right_party = Party(
            channel.right, derive_pair_rng(self._seeds[right], right,
                                           left, right,
                                           namespace=self.rng_namespace))
        session = SmcSession(left_party, right_party, self.config,
                             preset_contexts=self._contexts)
        key = (left, right)
        self._channels[key] = channel
        self._sessions[key] = session
        self._parties[key] = {left: left_party, right: right_party}

    def _pair_key(self, a: str, b: str) -> tuple[str, str]:
        if a == b:
            raise MeshError(f"{a!r} cannot pair with itself")
        for name in (a, b):
            if name not in self._slots:
                raise MeshError(f"unknown party {name!r}")
        return (a, b) if self._slots[a] < self._slots[b] else (b, a)

    def session_between(self, a: str, b: str) -> SmcSession:
        return self._sessions[self._pair_key(a, b)]

    def party_in_pair(self, name: str, peer: str) -> Party:
        """The :class:`Party` handle ``name`` uses when talking to ``peer``."""
        return self._parties[self._pair_key(name, peer)][name]

    def peers_of(self, name: str) -> list[str]:
        if name not in self.names:
            raise MeshError(f"unknown party {name!r}")
        return [other for other in self.names if other != name]

    def precompute_pools(self, factors: "int | dict") -> None:
        """Offline phase across the whole mesh.

        ``factors`` is either one count applied to every (actor, key)
        pair of every pairwise session, or a
        ``{(left, right): session_plan}`` mapping keyed like
        :meth:`pool_report` -- e.g. the consumption a probe run
        reported.  Refills run through each session's engine; every
        distinct engine is warmed up first so the pool-spawn latency is
        paid here, in the offline phase, not by the first online batch.
        """
        for engine in {id(session.engine): session.engine
                       for session in self._sessions.values()}.values():
            engine.warm_up()
        if isinstance(factors, int):
            for session in self._sessions.values():
                session.precompute_pools(factors)
            return
        for pair, plan in factors.items():
            self._sessions[self._pair_key(*pair)].precompute_pools(plan)

    def begin_peer_query(self, driver_name: str, peer_name: str) -> None:
        """Runtime hook: one per-peer secure query is about to start.

        The in-process mesh needs no announcement -- both parties live
        here -- so this is a no-op.  The socket runtime's mesh view
        overrides it to emit the control frame that tells the peer
        process to enter the query choreography (the driver's pass
        structure is data-dependent, so the peer cannot infer it).
        Called from inside the scheduler task, on the task's thread, so
        the announcement and the query's protocol frames stay ordered
        per link even under ``concurrent_peers``.
        """

    def pool_report(self) -> dict:
        """Per-pair pool accounting: ``{(left, right): session_report}``."""
        return {pair: session.pool_report()
                for pair, session in sorted(self._sessions.items())}

    def merged_stats(self) -> CommunicationStats:
        total = CommunicationStats()
        for channel in self._channels.values():
            total.merge(channel.stats)
        return total

    def pair_stats(self, a: str, b: str) -> CommunicationStats:
        return self._channels[self._pair_key(a, b)].stats

    def pair_channel(self, a: str, b: str):
        """The channel of one unordered pair (scheduler timing probes,
        per-pair transcript comparisons in the equivalence tests)."""
        return self._channels[self._pair_key(a, b)]

    def pair_transcripts(self) -> dict:
        """``{(left, right): transcript}`` over every pair, sorted."""
        return {pair: channel.transcript
                for pair, channel in sorted(self._channels.items())}

    @property
    def size(self) -> int:
        return len(self.names)
