"""Pass executors: sequential or concurrent per-peer queries of a pass.

Within one driver pass of the k-party protocol, the per-peer secure
region queries are *independent*: each runs over its own pairwise
channel, its own :class:`~repro.smc.session.SmcSession` (own keys-view,
own pools, own comparison backend), and -- since the mesh derives
per-pair RNG substreams -- its own randomness stream.  The executor
abstraction makes that independence schedulable: the driver hands every
pass a list of :class:`PeerQuery` tasks, and the executor runs them
either in order (seed-era choreography) or on a thread pool
(``ProtocolConfig(concurrent_peers=True)``).

Determinism contract: both executors return outcomes **in task order**
and record each task's disclosures into a private sub-ledger that the
caller merges in task order -- so labels, per-pair transcripts, the
leakage-ledger event sequence, and comparison counts are bit-identical
between sequential and concurrent execution (property-tested in
``tests/multiparty/test_scheduler.py``).  Concurrency changes only
wall-clock: with a
:class:`~repro.net.transport.SimulatedNetworkTransport` on the links,
the executor charges a pass the *sum* of its per-link virtual time when
sequential but only the *maximum* when concurrent -- the round-trips to
different peers overlap, which is exactly the latency-hiding a real
network deployment would see.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.core.leakage import LeakageLedger
from repro.obs.metrics import default_registry


class SchedulerError(ValueError):
    """Raised on invalid executor parameters."""


@dataclass(frozen=True)
class PeerQuery:
    """One peer's secure region query within a driver pass.

    Attributes:
        peer: the queried peer's name (merge order follows task order).
        run: executes the pairwise protocol, recording every disclosure
            into the supplied sub-ledger; returns the neighbour count.
        prepare: fired exactly once per task, before ``run`` -- the
            query announcement (``begin_peer_query``).  Split out of
            ``run`` so an executor that may *re-execute* ``run`` (the
            restartable async path) never re-announces the query.
        simulated_clock: zero-argument probe returning the pair link's
            simulated seconds (0.0 on real fabrics); sampled before and
            after the query so the executor can charge virtual time.
    """

    peer: str
    run: Callable[[LeakageLedger], int]
    prepare: Callable[[], None] = lambda: None
    simulated_clock: Callable[[], float] = lambda: 0.0


@dataclass(frozen=True)
class PeerQueryOutcome:
    """One task's result: the count plus its private disclosure record."""

    peer: str
    count: int
    ledger: LeakageLedger
    simulated_delta: float


class PassExecutor:
    """Base: runs the tasks of one pass, accumulates virtual wall-clock.

    ``simulated_seconds`` is the executor's running total of virtual
    network time across every pass it ran -- the figure the latency
    sweep in ``benchmarks/run_quick.py`` compares between sequential
    and concurrent scheduling.
    """

    concurrent = False

    def __init__(self):
        self.simulated_seconds = 0.0
        self.passes = 0
        # Process-wide scheduling accounting (executors are created per
        # run/session, so per-instance counters would vanish with
        # them); instruments fetched once, incremented per pass.
        registry = default_registry()
        kind = type(self).__name__
        self._obs_passes = registry.counter(
            "repro_pass_executor_passes_total", kind=kind)
        self._obs_queries = registry.counter(
            "repro_pass_executor_queries_total", kind=kind)

    def run_pass(self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        """Execute one pass; outcomes are returned in task order."""
        self.passes += 1
        self._obs_passes.inc()
        self._obs_queries.inc(len(tasks))
        if not tasks:
            return []
        outcomes = self._execute(tasks)
        self.simulated_seconds += self._charge(
            [outcome.simulated_delta for outcome in outcomes])
        return outcomes

    @staticmethod
    def _run_one(task: PeerQuery) -> PeerQueryOutcome:
        task.prepare()
        ledger = LeakageLedger()
        before = task.simulated_clock()
        count = task.run(ledger)
        return PeerQueryOutcome(
            peer=task.peer, count=count, ledger=ledger,
            simulated_delta=task.simulated_clock() - before)

    def _execute(self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        return [self._run_one(task) for task in tasks]

    def _charge(self, deltas: list[float]) -> float:
        """Sequential: the peer queries of a pass happen back to back."""
        return sum(deltas)

    def close(self) -> None:
        """Release executor resources (thread pool)."""


class SequentialPassExecutor(PassExecutor):
    """Seed-era scheduling: one peer after another, in mesh order."""


class ConcurrentPassExecutor(PassExecutor):
    """Thread pool over the independent pairwise sessions of a pass.

    Each worker thread drives one complete pairwise choreography -- both
    parties' local steps plus their private link -- so no two threads
    ever share a channel, session, pool, or RNG substream.  The shared
    pieces that remain (the engine's counters, each channel's stats and
    transcript) are internally locked.
    """

    concurrent = True

    def __init__(self, max_workers: int | None = None,
                 expected_tasks: int | None = None):
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise SchedulerError(
                f"max_workers must be >= 1, got {max_workers}")
        if expected_tasks is not None and expected_tasks < 1:
            raise SchedulerError(
                f"expected_tasks must be >= 1, got {expected_tasks}")
        self.max_workers = max_workers
        # Sizing hint from the caller (the mesh's max peer count): the
        # pool opens at its steady-state width instead of growing
        # pass by pass.
        self.expected_tasks = expected_tasks
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0
        # Shrink accounting: how many pooled workers the last pass left
        # idle, how many times the pool was narrowed, and how many
        # consecutive passes have under-used it.
        self.idle_workers = 0
        self.shrinks = 0
        self._surplus_streak = 0
        registry = default_registry()
        self._obs_shrinks = registry.counter(
            "repro_pass_executor_shrinks_total")
        self._obs_pool_width = registry.gauge(
            "repro_pass_executor_pool_width")

    def run_pass(self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        outcomes = super().run_pass(tasks)
        # Single-task passes run inline (no pool submit), so their pool
        # demand is zero.
        self._note_demand(len(tasks) if len(tasks) >= 2 else 0)
        return outcomes

    def _note_demand(self, demand: int) -> None:
        """Narrow the pool once demand has stayed below its width.

        The growth path above never shrinks, so a session whose
        ``expected_tasks`` hint overshot real demand (peers with empty
        partitions are skipped, and single-task passes bypass the pool)
        would hold k-1 idle threads for its whole lifetime.  Two
        consecutive under-used passes are taken as the new steady
        state: the pool is recreated at the observed demand -- or torn
        down entirely when the pool sees no work at all -- and the
        sizing hint is lowered so ``_ensure_pool`` does not immediately
        grow it back.
        """
        if self._pool is None:
            self.idle_workers = 0
            self._surplus_streak = 0
            return
        self.idle_workers = max(0, self._pool_workers - demand)
        if self.idle_workers == 0:
            self._surplus_streak = 0
            return
        self._surplus_streak += 1
        if self._surplus_streak < 2:
            return
        self._pool.shutdown(wait=False)
        if demand > 0:
            self._pool = ThreadPoolExecutor(max_workers=demand)
            self._pool_workers = demand
        else:
            self._pool = None
            self._pool_workers = 0
        self.expected_tasks = demand or None
        self.shrinks += 1
        self._obs_shrinks.inc()
        self._obs_pool_width.set(self._pool_workers)
        self._surplus_streak = 0
        self.idle_workers = 0

    def _ensure_pool(self, task_count: int) -> ThreadPoolExecutor:
        """A pool at least ``task_count`` wide, without churn.

        The pool is created once -- sized from the ``expected_tasks``
        hint when given -- and *grown in place* if a later pass needs
        more width: bumping ``_max_workers`` makes the executor's lazy
        thread spawner top the pool up on the next submits.  The old
        behaviour (shutdown + recreate on every wider pass) threw away
        every warm worker thread each time the task count grew.
        """
        workers = self.max_workers or max(task_count,
                                          self.expected_tasks or 0)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=workers)
            self._pool_workers = workers
            self._obs_pool_width.set(workers)
        elif workers > self._pool_workers:
            self._pool._max_workers = workers
            self._pool_workers = workers
            self._obs_pool_width.set(workers)
        return self._pool

    def _execute(self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        if len(tasks) == 1:
            return [self._run_one(tasks[0])]
        pool = self._ensure_pool(len(tasks))
        # map() preserves task order regardless of completion order --
        # the merge-determinism half of the equivalence guarantee.
        return list(pool.map(self._run_one, tasks))

    def _charge(self, deltas: list[float]) -> float:
        """Concurrent: round-trips overlap, bounded by the pool width.

        With at least as many workers as peers this is the slowest
        single link; a width-capped pool can only overlap ``workers``
        queries at a time, so the charge is the makespan of a greedy
        least-loaded assignment (longest first) -- ``sum`` at width 1,
        ``max`` at full width, honest in between.  Deterministic, so
        repeated runs report identical simulated time regardless of how
        the OS actually interleaved the threads.
        """
        workers = min(self.max_workers or len(deltas), len(deltas))
        if workers >= len(deltas):
            return max(deltas)
        loads = [0.0] * workers
        for delta in sorted(deltas, reverse=True):
            loads[loads.index(min(loads))] += delta
        return max(loads)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class AsyncPassExecutor(PassExecutor):
    """Coroutine-per-peer scheduling on the daemon's event loop.

    The daemon runtime injects ``run_query`` -- an awaitable that
    drives one task's pairwise choreography at message granularity,
    parking on the per-(session, pair) frame queue instead of blocking
    a thread.  ``asyncio.gather`` preserves argument order, so outcomes
    come back in task order and the merge-determinism contract of the
    threaded executors carries over unchanged; the virtual-time charge
    is ``max`` (all peers overlap), matching an unbounded
    :class:`ConcurrentPassExecutor`.

    ``prepare`` fires exactly once per task here, *outside* ``run`` --
    the restartable channel may re-execute the query body, and the
    query announcement must not repeat.
    """

    concurrent = True

    def __init__(self, run_query: Callable[
            [PeerQuery, LeakageLedger], Awaitable[int]]):
        super().__init__()
        self._run_query = run_query

    def run_pass(self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        raise SchedulerError(
            "AsyncPassExecutor schedules passes on the event loop; "
            "await run_pass_async() instead of calling run_pass()")

    async def run_pass_async(
            self, tasks: list[PeerQuery]) -> list[PeerQueryOutcome]:
        """Execute one pass concurrently; outcomes in task order."""
        self.passes += 1
        self._obs_passes.inc()
        self._obs_queries.inc(len(tasks))
        if not tasks:
            return []
        outcomes = list(await asyncio.gather(
            *(self._run_one_async(task) for task in tasks)))
        self.simulated_seconds += self._charge(
            [outcome.simulated_delta for outcome in outcomes])
        return outcomes

    async def _run_one_async(self, task: PeerQuery) -> PeerQueryOutcome:
        task.prepare()
        ledger = LeakageLedger()
        before = task.simulated_clock()
        count = await self._run_query(task, ledger)
        return PeerQueryOutcome(
            peer=task.peer, count=count, ledger=ledger,
            simulated_delta=task.simulated_clock() - before)

    def _charge(self, deltas: list[float]) -> float:
        """All peer coroutines overlap: the pass costs its slowest link."""
        return max(deltas)


def make_pass_executor(concurrent: bool,
                       max_workers: int | None = None,
                       expected_tasks: int | None = None) -> PassExecutor:
    """Executor factory driven by ``ProtocolConfig(concurrent_peers=...)``.

    ``expected_tasks`` -- typically the mesh's max peer count per pass,
    ``k - 1`` -- pre-sizes the concurrent pool so it never grows (and,
    before the growth fix, never churned) mid-run.
    """
    if concurrent:
        return ConcurrentPassExecutor(max_workers=max_workers,
                                      expected_tasks=expected_tasks)
    return SequentialPassExecutor()
