"""k-party privacy preserving DBSCAN over horizontally partitioned data.

Algorithm 3/4 generalized: each party drives a pass over its own points;
the density test for a queried point sums the local neighbour count with
one secure count per peer; expansion proceeds through own points only.
For ``k = 2`` this reduces exactly to the two-party protocol.

Each per-peer secure count runs, by default, as **one batched HDP region
query** (:func:`repro.core.distance.hdp_region_query`): the driver's
point is encrypted once per peer (``O(d)`` encryptions regardless of the
peer's point count) and all cross terms travel in a single round-trip.
``ProtocolConfig(batched_region_queries=False)`` reproduces the seed-era
per-point ``hdp_within_eps`` loop -- bit-identical labels and identical
leakage-ledger sequences, property-tested in ``tests/multiparty``.  With
``cache_peer_ciphertexts=True`` each driver pass keeps one
:class:`~repro.core.distance.PeerCipherCache` per peer, so a peer
point's encrypted coordinates cross the wire once per pass (the linkable
trade recorded by the ledger, exactly as in the two-party protocol).

Scheduling: the per-peer queries of one driver step are independent
pairwise protocols (own channel, session, and RNG substream per pair),
so they go through a :mod:`~repro.multiparty.scheduler` pass executor.
``ProtocolConfig(concurrent_peers=True)`` issues them on a thread pool;
disclosure records are merged in deterministic peer order either way,
so labels, per-pair transcripts, the ledger sequence, and comparison
counts are bit-identical to the sequential pass while the simulated
round-trips to different peers overlap (the
:class:`~repro.net.transport.SimulatedNetworkTransport` sweep in
``benchmarks/run_quick.py`` quantifies the hidden latency).

Reference semantics: each party's labels equal
``union_density_dbscan(own_points, concatenation_of_all_peer_points)``
-- property-tested in ``tests/multiparty``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.clustering.neighborhoods import BruteForceIndex
from repro.core.config import ProtocolConfig
from repro.core.distance import (
    PeerCipherCache,
    hdp_region_query,
    hdp_region_query_cached,
    hdp_within_eps,
    hdp_within_eps_cached,
)
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.quantize import squared_distance_bound
from repro.multiparty.mesh import MeshError, PartyMesh
from repro.multiparty.scheduler import (
    PassExecutor,
    PeerQuery,
    make_pass_executor,
)
from repro.smc.permutation import PermutedView


@dataclass(frozen=True)
class MultipartyRunResult:
    """Output of a k-party horizontal run.

    Attributes:
        labels_by_party: each party's cluster numbering over its points.
        ledger: disclosure accounting across all pairwise protocols.
        stats: merged communication snapshot over all pairwise channels
            (its ``simulated_seconds`` is the per-link sum -- the
            conservative sequential figure).
        comparisons: secure-comparison invocations, summed over sessions.
        simulated_seconds: scheduler-accounted virtual network time --
            per-pass sum of link time when sequential, per-pass maximum
            when ``concurrent_peers`` overlapped the peer queries.  Zero
            on real (non-simulated) transports.
    """

    labels_by_party: dict[str, tuple[int, ...]]
    ledger: LeakageLedger
    stats: dict
    comparisons: int
    simulated_seconds: float = 0.0


def run_multiparty_horizontal_dbscan(points_by_party: dict[str, list],
                                     config: ProtocolConfig,
                                     *, seeds: list[int] | None = None,
                                     mesh: PartyMesh | None = None,
                                     rng_namespace: str | None = None,
                                     ) -> MultipartyRunResult:
    """Run the k-party horizontal protocol.

    Args:
        points_by_party: party name -> that party's integer-grid points.
        config: protocol parameters; ``config.smc`` configures every
            pairwise session (including its transport fabric) and
            ``config.concurrent_peers`` selects the pass scheduler.
        seeds: optional per-party RNG seeds (ordered as the dict).
        mesh: a pre-built :class:`PartyMesh` over the same party names,
            so callers can run the offline phase
            (``mesh.precompute_pools``) outside whatever they are
            timing; when omitted, the mesh is created here.
        rng_namespace: per-session coin-stream namespace for the mesh
            built here (ignored when ``mesh`` is supplied); matches the
            daemon runtime's per-session derivation so reference runs
            can reproduce a multiplexed session's coins exactly.
    """
    names = list(points_by_party)
    if len(names) < 2:
        raise MeshError("need at least two parties")
    if mesh is None:
        mesh = PartyMesh(names, config.smc, seeds=seeds,
                         rng_namespace=rng_namespace)
    elif set(mesh.names) != set(names):
        raise MeshError(
            f"mesh parties {mesh.names} do not match data parties {names}")
    ledger = LeakageLedger()

    all_points = [p for points in points_by_party.values() for p in points]
    value_bound = squared_distance_bound(all_points, all_points)

    executor = make_pass_executor(config.concurrent_peers,
                                  config.peer_workers,
                                  expected_tasks=max(1, len(names) - 1))
    try:
        labels_by_party = {}
        for driver_name in names:
            caches = ({peer: PeerCipherCache() for peer in
                       mesh.peers_of(driver_name)}
                      if config.cache_peer_ciphertexts else None)
            labels = _driver_pass(mesh, driver_name, points_by_party,
                                  config, value_bound, ledger, caches,
                                  executor)
            labels_by_party[driver_name] = labels.as_tuple()
    finally:
        executor.close()

    comparisons = sum(
        mesh.session_between(a, b).comparison_backend.invocations
        for index, a in enumerate(names) for b in names[index + 1:])
    return MultipartyRunResult(
        labels_by_party=labels_by_party,
        ledger=ledger,
        stats=mesh.merged_stats().snapshot(),
        comparisons=comparisons,
        simulated_seconds=executor.simulated_seconds,
    )


def _pass_program(own_points: list, config: ProtocolConfig):
    """Algorithm 3+4 as a generator: the single protocol implementation.

    Yields each query point whose cross-party neighbour count the
    protocol needs (one yield per density test -- the seed test of
    Algorithm 3 and every BFS step of Algorithm 4), receives the summed
    peer total back via ``send``, and returns the finished
    :class:`ClusterLabels` through ``StopIteration.value``.

    Both drivers -- the synchronous :func:`_driver_pass` below and the
    daemon's message-granularity ``drive_pass_async`` -- step this same
    generator, so the clustering control flow (and therefore the exact
    sequence of secure queries) cannot diverge between runtimes.
    """
    labels = ClusterLabels(len(own_points))
    index = BruteForceIndex(own_points)
    eps_squared = config.eps_squared
    cluster_id = next_cluster_id(NOISE)
    for point_index in range(len(own_points)):
        if not labels.is_unclassified(point_index):
            continue
        seeds = index.region_query(index.points[point_index], eps_squared)
        peer_total = yield index.points[point_index]
        if len(seeds) + peer_total < config.min_pts:
            labels.change_cluster_id(point_index, NOISE)
            continue
        labels.change_cluster_ids(seeds, cluster_id)
        queue = deque(s for s in seeds if s != point_index)
        while queue:
            current = queue.popleft()
            result = index.region_query(index.points[current], eps_squared)
            peer_total = yield index.points[current]
            if len(result) + peer_total >= config.min_pts:
                for neighbor in result:
                    if labels[neighbor] in (UNCLASSIFIED, NOISE):
                        if labels[neighbor] == UNCLASSIFIED:
                            queue.append(neighbor)
                        labels.change_cluster_id(neighbor, cluster_id)
        cluster_id = next_cluster_id(cluster_id)
    return labels


def _driver_pass(mesh: PartyMesh, driver_name: str,
                 points_by_party: dict[str, list], config: ProtocolConfig,
                 value_bound: int, ledger: LeakageLedger,
                 caches: dict[str, PeerCipherCache] | None,
                 executor: PassExecutor) -> ClusterLabels:
    """Drive :func:`_pass_program` with blocking per-peer queries."""
    program = _pass_program(list(points_by_party[driver_name]), config)
    try:
        query_point = next(program)
        while True:
            total = _all_peer_counts(mesh, driver_name, points_by_party,
                                     query_point, config, value_bound,
                                     ledger, caches, executor)
            query_point = program.send(total)
    except StopIteration as done:
        return done.value


def _all_peer_counts(mesh: PartyMesh, driver_name: str,
                     points_by_party: dict[str, list],
                     query_point: tuple[int, ...], config: ProtocolConfig,
                     value_bound: int, ledger: LeakageLedger,
                     caches: dict[str, PeerCipherCache] | None,
                     executor: PassExecutor) -> int:
    """One secure neighbour count per peer, summed.

    The per-peer queries run through the pass executor (sequentially or
    on a thread pool); each records into a private sub-ledger that is
    merged here in deterministic peer order, so the disclosure sequence
    is identical however the queries were scheduled.
    """
    tasks = _build_peer_queries(mesh, driver_name, points_by_party,
                                query_point, config, value_bound, caches)
    return _merge_outcomes(executor.run_pass(tasks), ledger)


def _merge_outcomes(outcomes, ledger: LeakageLedger) -> int:
    """Fold pass outcomes (already in task order) into the run ledger."""
    total = 0
    for outcome in outcomes:
        ledger.extend(outcome.ledger)
        total += outcome.count
    return total


def _build_peer_queries(mesh: PartyMesh, driver_name: str,
                        points_by_party: dict[str, list],
                        query_point: tuple[int, ...],
                        config: ProtocolConfig, value_bound: int,
                        caches: dict[str, PeerCipherCache] | None,
                        ) -> list[PeerQuery]:
    """The scheduler tasks of one density test, in mesh peer order."""
    tasks = []
    for peer_name in mesh.peers_of(driver_name):
        peer_points = points_by_party[peer_name]
        if not peer_points:
            continue
        tasks.append(PeerQuery(
            peer=peer_name,
            run=_make_peer_task(mesh, driver_name, peer_name, query_point,
                                list(peer_points), config, value_bound,
                                caches),
            prepare=_make_prepare(mesh, driver_name, peer_name),
            simulated_clock=_simulated_clock(mesh, driver_name, peer_name),
        ))
    return tasks


def _make_prepare(mesh: PartyMesh, driver_name: str, peer_name: str):
    """The query announcement, split from ``run`` so executors that may
    re-execute the query body (the restartable async path) announce it
    exactly once."""
    return lambda: mesh.begin_peer_query(driver_name, peer_name)


def _make_peer_task(mesh: PartyMesh, driver_name: str, peer_name: str,
                    query_point: tuple[int, ...], peer_points: list,
                    config: ProtocolConfig, value_bound: int,
                    caches: dict[str, PeerCipherCache] | None):
    """Bind one peer's query into a scheduler task closure."""
    session = mesh.session_between(driver_name, peer_name)
    driver = mesh.party_in_pair(driver_name, peer_name)
    peer = mesh.party_in_pair(peer_name, driver_name)
    cache = caches[peer_name] if caches is not None else None

    def run(sub_ledger: LeakageLedger) -> int:
        count = _peer_count(session, driver, peer, query_point, peer_points,
                            config, value_bound, sub_ledger, cache,
                            label=f"multiparty/{driver_name}-{peer_name}")
        sub_ledger.record(f"multiparty/{driver_name}", driver_name,
                          Disclosure.NEIGHBOR_COUNT,
                          detail=f"peer {peer_name}: {count}")
        return count

    return run


def _simulated_clock(mesh: PartyMesh, driver_name: str, peer_name: str):
    channel = mesh.pair_channel(driver_name, peer_name)
    return lambda: channel.simulated_seconds


def _peer_count(session, driver, peer, query_point: tuple[int, ...],
                peer_points: list, config: ProtocolConfig, value_bound: int,
                ledger: LeakageLedger, cache: PeerCipherCache | None, *,
                label: str) -> int:
    """One peer's secure neighbour count, batched or seed-era per-point.

    The batched paths reuse the two-party region-query machinery
    verbatim, so their bits, comparison sub-protocols, and ledger
    records are identical to the per-point loops (property-tested).
    """
    eps_squared = config.eps_squared
    if config.batched_region_queries:
        if cache is not None:
            bits = hdp_region_query_cached(
                session, driver, query_point, peer, list(peer_points),
                list(range(len(peer_points))), cache, eps_squared,
                value_bound, ledger=ledger,
                blind_cross_sum=config.blind_cross_sum,
                query_constant_blinding=config.query_constant_blinding,
                batched_comparisons=config.batched_comparisons,
                label=f"{label}/cached")
        else:
            bits = hdp_region_query(
                session, driver, query_point, peer, list(peer_points),
                eps_squared, value_bound, ledger=ledger,
                blind_cross_sum=config.blind_cross_sum,
                query_constant_blinding=config.query_constant_blinding,
                batched_comparisons=config.batched_comparisons,
                label=label)
        return sum(bits)
    if cache is not None:
        return sum(
            hdp_within_eps_cached(
                session, driver, query_point, peer, peer_point, point_id,
                cache, eps_squared, value_bound, ledger=ledger,
                blind_cross_sum=config.blind_cross_sum,
                label=f"{label}/cached")
            for point_id, peer_point in enumerate(peer_points))
    view = PermutedView.fresh(len(peer_points), peer.rng)
    count = 0
    for position in range(len(view)):
        point = peer_points[view.true_index(position)]
        if hdp_within_eps(session, driver, query_point, peer, point,
                          eps_squared, value_bound, ledger=ledger,
                          blind_cross_sum=config.blind_cross_sum,
                          label=label):
            count += 1
    return count
