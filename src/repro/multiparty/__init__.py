"""Multi-party extension (paper Section 1: "the two-party algorithm can
be extended to multi-party cases").

The paper develops its protocols for two parties and notes the
extension; this package realizes it for horizontally partitioned data:
``k`` parties, each holding a record subset, pairwise channels between
all of them, and the Algorithm 3/4 semantics generalized so every
party's density test counts the Eps-neighbours held by *all* peers
(each counted through an independent pairwise HDP run over that peer's
fresh permutation).

Privacy carries over pairwise: a driver learns, per query, one count
per peer (base protocol semantics, Theorem 9 applied pairwise); peers
learn nothing about each other's contributions.
"""

from repro.multiparty.mesh import PartyMesh, derive_pair_rng
from repro.multiparty.horizontal import (
    MultipartyRunResult,
    run_multiparty_horizontal_dbscan,
)
from repro.multiparty.scheduler import (
    ConcurrentPassExecutor,
    PassExecutor,
    PeerQuery,
    SequentialPassExecutor,
    make_pass_executor,
)

__all__ = [
    "PartyMesh",
    "derive_pair_rng",
    "MultipartyRunResult",
    "run_multiparty_horizontal_dbscan",
    "PassExecutor",
    "SequentialPassExecutor",
    "ConcurrentPassExecutor",
    "PeerQuery",
    "make_pass_executor",
]
