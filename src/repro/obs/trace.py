"""Structured span tracing with a privacy guard.

A :class:`Tracer` records a tree of timed spans -- session -> pass ->
peer-query -> attempt -- and writes one JSON line per finished span to a
per-party file under the run's trace directory.  ``repro trace
summarize`` folds those files back into a per-session critical-path
breakdown (which pass, which peer, how much replay).

Every attribute that enters a span passes through :func:`guard_value`,
which admits only *shapes* of data -- small numbers, short digit-free
strings, sizes, and truncated digests -- and replaces anything that
could carry protocol secrets (big integers, long strings, raw bytes,
containers) with its size or digest.  Plaintexts, randomness factors,
and key components are arbitrary-precision integers, so they can never
survive the guard; this is property-tested in ``tests/obs``.

Timing uses ``time.monotonic`` offsets from the tracer's epoch, so span
durations are immune to wall-clock steps; traces are observational only
and never feed back into the protocol, keeping instrumented runs
bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import threading
import time
from typing import Mapping

#: Integers at or above this magnitude are digested, never recorded.
#: Protocol counts (frames, restarts, steps) sit far below; Paillier and
#: RSA material sits far above.
INT_BOUND = 1 << 63

_STR_MAX_CHARS = 120
_DIGIT_RUN = re.compile(r"[0-9]{19,}")
_DIGEST_HEX_CHARS = 16


def _digest(data: bytes) -> str:
    return "sha256:" + hashlib.sha256(data).hexdigest()[:_DIGEST_HEX_CHARS]


def guard_value(value: object) -> object:
    """Admit only privacy-safe shapes; reduce everything else.

    - ``None``/``bool``/``float`` and small ints pass through.
    - Big ints (``abs >= 2**63``) become ``{"digest", "bits"}``.
    - Short digit-run-free strings pass; long or numeric-looking ones
      become ``{"digest", "len"}``.
    - ``bytes`` always become ``{"digest", "len"}`` (wire payloads).
    - Containers are reduced to their sizes; other objects to their
      type name.  The guard never raises: a span attribute cannot take
      down a protocol pass.
    """
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        if abs(value) < INT_BOUND:
            return value
        data = value.to_bytes((value.bit_length() + 8) // 8,
                              "big", signed=True)
        return {"digest": _digest(data), "bits": value.bit_length()}
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        if len(value) <= _STR_MAX_CHARS and not _DIGIT_RUN.search(value):
            return value
        return {"digest": _digest(value.encode()), "len": len(value)}
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return {"digest": _digest(data), "len": len(data)}
    if isinstance(value, (list, tuple, set, frozenset)):
        return {"len": len(value)}
    if isinstance(value, Mapping):
        return {"keys": len(value)}
    return {"type": type(value).__name__}


class _NullSpan:
    """Shared no-op span from a disabled tracer."""

    __slots__ = ()
    span_id = 0

    def set(self, **attrs) -> None:
        pass

    def child(self, kind: str, name: str, **attrs) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; emit happens on close (context manager)."""

    __slots__ = ("_tracer", "span_id", "parent_id", "kind", "name",
                 "start", "attrs", "_closed")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: int | None, kind: str, name: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start = tracer.now()
        self.attrs = {key: guard_value(value)
                      for key, value in attrs.items()}
        self._closed = False

    def set(self, **attrs) -> None:
        for key, value in attrs.items():
            self.attrs[key] = guard_value(value)

    def child(self, kind: str, name: str, **attrs) -> "Span":
        return self._tracer.span(kind, name, parent=self, **attrs)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer._emit(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info and exc_info[0] is not None:
            self.attrs["error"] = guard_value(exc_info[0].__name__)
        self.close()


class Tracer:
    """Writes finished spans as JSONL to one per-party file.

    A falsy ``path`` builds a disabled tracer whose :meth:`span`
    returns the shared :data:`NULL_SPAN` -- the enabled check happens
    once per span, not per attribute.
    """

    def __init__(self, path: str | os.PathLike | None,
                 party: str) -> None:
        self.party = party
        self.path = os.fspath(path) if path else None
        self.enabled = self.path is not None
        self._epoch = time.monotonic()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._file = None
        if self.enabled:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def span(self, kind: str, name: str, *,
             parent: "Span | _NullSpan | None" = None, **attrs):
        if not self.enabled:
            return NULL_SPAN
        parent_id = None
        if isinstance(parent, Span):
            parent_id = parent.span_id
        return Span(self, next(self._ids), parent_id, kind, name, attrs)

    def _emit(self, span: Span) -> None:
        if self._file is None:
            return
        end = self.now()
        record = {
            "id": span.span_id,
            "parent": span.parent_id,
            "kind": span.kind,
            "name": span.name,
            "party": self.party,
            "t0": round(span.start, 6),
            "t1": round(end, 6),
            "dur": round(end - span.start, 6),
            "attrs": span.attrs,
        }
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._file is not None:
                self._file.write(line + "\n")
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
        self.enabled = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tracer_for(trace_dir: str | os.PathLike | None, party: str) -> Tracer:
    """Per-party tracer under ``trace_dir`` (disabled when unset)."""
    if not trace_dir:
        return Tracer(None, party)
    return Tracer(os.path.join(os.fspath(trace_dir), f"{party}.jsonl"),
                  party)


# -- summaries ---------------------------------------------------------------


def read_trace_dir(trace_dir: str | os.PathLike) -> list[dict]:
    """All span records under ``trace_dir`` (``*.jsonl``), unordered."""
    spans: list[dict] = []
    root = os.fspath(trace_dir)
    for entry in sorted(os.listdir(root)):
        if not entry.endswith(".jsonl"):
            continue
        with open(os.path.join(root, entry), encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


def summarize_trace_dir(trace_dir: str | os.PathLike) -> dict:
    """Fold a trace directory into per-session breakdowns.

    Returns ``{"sessions": {session: {"parties": {party: {...}}}}}``
    where each party entry carries total duration, per-pass rows (role,
    duration, queries, attempts, restarts), and the pass critical path:
    the sum over protocol steps of the *slowest* peer query at that
    step -- concurrent peers overlap, so the per-step max is the time a
    pass actually spends waiting.
    """
    spans = read_trace_dir(trace_dir)
    by_party_id = {(span["party"], span["id"]): span for span in spans}

    def session_of(span: dict) -> str | None:
        while span is not None:
            if span["kind"] == "session":
                return span["name"]
            parent = span.get("parent")
            span = by_party_id.get((span["party"], parent)) \
                if parent else None
        return None

    sessions: dict[str, dict] = {}
    for span in spans:
        session = session_of(span)
        if session is None:
            continue
        parties = sessions.setdefault(session, {"parties": {}})["parties"]
        entry = parties.setdefault(span["party"], {
            "duration": 0.0, "passes": [], "_queries": {}})
        if span["kind"] == "session":
            entry["duration"] = span["dur"]
        elif span["kind"] == "pass":
            entry["passes"].append({
                "name": span["name"],
                "id": span["id"],
                "role": span["attrs"].get("role"),
                "duration": span["dur"],
                "queries": 0,
                "attempts": 0,
                "restarts": 0,
                "critical_path": 0.0,
            })
        elif span["kind"] == "peer_query":
            entry["_queries"].setdefault(
                span.get("parent"), []).append(span)
        elif span["kind"] == "attempt":
            entry.setdefault("_attempts", {}).setdefault(
                span.get("parent"), []).append(span)

    for session in sessions.values():
        for entry in session["parties"].values():
            queries = entry.pop("_queries", {})
            attempts = entry.pop("_attempts", {})
            entry["passes"].sort(key=lambda row: row["name"])
            for row in entry["passes"]:
                pass_queries = queries.get(row.pop("id"), [])
                row["queries"] = len(pass_queries)
                by_step: dict[object, float] = {}
                for query in pass_queries:
                    step = query["attrs"].get("step")
                    by_step[step] = max(by_step.get(step, 0.0),
                                        query["dur"])
                    query_attempts = attempts.get(query["id"], [])
                    row["attempts"] += len(query_attempts)
                    row["restarts"] += max(0, len(query_attempts) - 1)
                row["critical_path"] = round(sum(by_step.values()), 6)
    return {"sessions": sessions}


def format_trace_summary(summary: dict) -> str:
    """Human-readable critical-path breakdown for ``repro trace``."""
    lines: list[str] = []
    for session, data in sorted(summary["sessions"].items()):
        lines.append(f"session {session}")
        for party, entry in sorted(data["parties"].items()):
            lines.append(f"  party {party}: "
                         f"{entry['duration']:.3f}s total")
            for row in entry["passes"]:
                role = row["role"] or "?"
                lines.append(
                    f"    {row['name']} [{role}] "
                    f"{row['duration']:.3f}s"
                    f" critical-path {row['critical_path']:.3f}s"
                    f" queries {row['queries']}"
                    f" attempts {row['attempts']}"
                    f" restarts {row['restarts']}")
    return "\n".join(lines) + ("\n" if lines else "")
