"""Unified observability layer: metrics registry + span tracing.

``repro.obs.metrics`` holds the thread-safe counter/gauge/histogram
registry every subsystem reports into (one source of truth, JSON
snapshot + Prometheus-style text); ``repro.obs.trace`` holds the
privacy-guarded span tracer (session -> pass -> peer-query -> attempt)
and the ``repro trace summarize`` critical-path folding.  Both are
observational only: instrumented runs stay bit-identical to
uninstrumented ones in labels, ledger, and transcripts.
"""

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    MetricsRegistry,
    NULL_INSTRUMENT,
    default_registry,
    parse_series_key,
    series_key,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    format_trace_summary,
    guard_value,
    read_trace_dir,
    summarize_trace_dir,
    tracer_for,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "default_registry",
    "format_trace_summary",
    "guard_value",
    "parse_series_key",
    "read_trace_dir",
    "series_key",
    "summarize_trace_dir",
    "tracer_for",
]
