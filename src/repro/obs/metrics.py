"""Thread-safe metrics registry: counters, gauges, histograms.

One registry replaces the ad-hoc counters that grew alongside the
runtime (per-session ``runtime_info`` dicts, bench-script bookkeeping):
every subsystem increments *named, labeled series* on a shared
:class:`MetricsRegistry`, and a single ``snapshot()`` (JSON-friendly
dict) or ``render_text()`` (Prometheus-style exposition) reads the
whole state.  The daemon answers the ``get_metrics`` control frame and
the ``repro stats`` CLI from this snapshot.

Design rules:

- **Near-zero overhead when disabled.**  A registry constructed with
  ``enabled=False`` hands out one shared null instrument whose
  ``inc``/``dec``/``set``/``observe`` are no-op methods; hot paths keep
  a reference to the instrument, so the disabled cost is one attribute
  call.  Enablement is fixed at construction -- there is no toggle to
  race against.
- **Observation only.**  Nothing in the runtime ever *reads* a metric
  to make a decision, so instrumented runs stay bit-identical to
  uninstrumented ones in labels, ledger, and transcripts.
- **Privacy at the type level.**  Metric values are bounded numbers
  (``abs(value) < 2**63``) and label values are short digit-run-free
  strings; cryptographic material (plaintexts, randomness factors, key
  components) is arbitrary-precision and cannot fit, so a registry can
  never leak it.  The bound is enforced with :class:`ValueError`, not
  truncation, and is property-tested in ``tests/obs``.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Iterable, Mapping

#: Hard bound on metric magnitudes and label numerals.  Everything the
#: runtime counts (frames, bytes, sessions, restarts) sits far below
#: this; Paillier/RSA material sits far above it.
VALUE_BOUND = 1 << 63

_LABEL_MAX_CHARS = 120
_DIGIT_RUN = re.compile(r"[0-9]{19,}")


def _check_value(value: float) -> float:
    """Reject magnitudes large enough to smuggle crypto material."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"metric value must be int or float, got "
                         f"{type(value).__name__}")
    if abs(value) >= VALUE_BOUND:
        raise ValueError("metric value magnitude must stay below 2**63 "
                         "(record sizes/counts/digests, never values)")
    return value


def _check_label(name: str, value: object) -> str:
    text = str(value)
    if len(text) > _LABEL_MAX_CHARS:
        raise ValueError(f"label {name!r} longer than {_LABEL_MAX_CHARS} "
                         "chars -- labels identify series, they do not "
                         "carry payloads")
    if _DIGIT_RUN.search(text):
        raise ValueError(f"label {name!r} contains a long digit run -- "
                         "never label series with protocol values")
    return text


def series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_key` (used by the ``repro stats`` CLI)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, __, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    for part in inner.split(","):
        if part:
            label, __, value = part.partition("=")
            labels[label] = value
    return name, labels


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing count (frames, restarts, sessions)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        amount = _check_value(amount)
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time level (parked coroutines, active sessions)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: float) -> None:
        value = _check_value(value)
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        _check_value(amount)
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Distribution summary (durations): count/sum/min/max + buckets."""

    __slots__ = ("_lock", "count", "sum", "min", "max", "_bounds",
                 "_buckets")

    #: Seconds-oriented default boundaries; +inf is implicit.
    DEFAULT_BOUNDS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._bounds = tuple(sorted(bounds))
        self._buckets = [0] * (len(self._bounds) + 1)

    def observe(self, value: float) -> None:
        value = _check_value(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._buckets[index] += 1
                    return
            self._buckets[-1] += 1

    def summary(self) -> dict[str, float | None]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
            }


class MetricsRegistry:
    """Registry of labeled series plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` return the live instrument for
    ``(name, labels)``, creating it on first use; callers on hot paths
    should fetch once and keep the reference.  ``register_collector``
    adds a callback invoked (with the registry) at snapshot time --
    used for levels cheaper to read on demand than to track, such as
    ``threading.active_count()`` or the engine/randomness reports.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []

    # -- instrument lookup ---------------------------------------------------

    def _series(self, table: dict, factory, name: str,
                labels: dict[str, object]):
        checked = {key: _check_label(key, value)
                   for key, value in labels.items()}
        key = series_key(name, checked)
        with self._lock:
            instrument = table.get(key)
            if instrument is None:
                instrument = table[key] = factory()
            return instrument

    def counter(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._series(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._series(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._series(self._histograms, Histogram, name, labels)

    def register_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._collectors.append(collector)

    # -- reading -------------------------------------------------------------

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:  # a dead subsystem must not break snapshots
                continue

    def snapshot(self) -> dict:
        """JSON-friendly full read: ``{"enabled", "counters", ...}``."""
        self._run_collectors()
        with self._lock:
            counters = {key: counter.value
                        for key, counter in sorted(self._counters.items())}
            gauges = {key: gauge.value
                      for key, gauge in sorted(self._gauges.items())}
            histograms = {key: histogram.summary()
                          for key, histogram
                          in sorted(self._histograms.items())}
        return {
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_text(self) -> str:
        """Prometheus-style text exposition of the current snapshot."""
        snapshot = self.snapshot()
        lines: list[str] = []
        for table in ("counters", "gauges"):
            for key, value in snapshot[table].items():
                lines.append(f"{_exposition_key(key)} {value}")
        for key, summary in snapshot["histograms"].items():
            name, labels = parse_series_key(key)
            for stat in ("count", "sum"):
                stat_key = series_key(f"{name}_{stat}", labels)
                lines.append(f"{_exposition_key(stat_key)} {summary[stat]}")
        return "\n".join(lines) + ("\n" if lines else "")


def _exposition_key(key: str) -> str:
    name, labels = parse_series_key(key)
    if not labels:
        return name
    inner = ",".join(f'{label}="{value}"'
                     for label, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


#: Process-wide default registry for call sites with no daemon to hang a
#: registry off (orchestrator, party processes, scheduler executors).
DEFAULT_REGISTRY = MetricsRegistry(enabled=True)


def default_registry() -> MetricsRegistry:
    return DEFAULT_REGISTRY
