"""Protocol transcripts -- the "view" of Definition 5.

A :class:`Transcript` records every message that crossed the channel:
sender, receiver, a protocol-phase label, the deserialized value, and the
wire size.  The privacy simulators (``repro.core.simulators``) compare
the distribution of real transcript entries against simulator output, and
the leakage ledger cites transcript labels as evidence.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TranscriptEntry:
    """One message crossing the channel."""

    index: int
    sender: str
    receiver: str
    label: str
    value: object
    size_bytes: int


@dataclass
class Transcript:
    """Ordered record of all messages in a protocol execution.

    ``record`` is locked so a channel whose two party programs run on
    separate threads (:class:`~repro.net.transport.ThreadedTransport`)
    cannot assign duplicate indices; entry *order* under true
    concurrency is whatever the interleaving produced.
    """

    entries: list[TranscriptEntry] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, sender: str, receiver: str, label: str, value,
               size_bytes: int) -> TranscriptEntry:
        with self._lock:
            entry = TranscriptEntry(
                index=len(self.entries),
                sender=sender,
                receiver=receiver,
                label=label,
                value=value,
                size_bytes=size_bytes,
            )
            self.entries.append(entry)
        return entry

    def received_by(self, party_name: str) -> list[TranscriptEntry]:
        """The messages constituting ``party_name``'s view (Def. 5)."""
        return [e for e in self.entries if e.receiver == party_name]

    def sent_by(self, party_name: str) -> list[TranscriptEntry]:
        return [e for e in self.entries if e.sender == party_name]

    def with_label(self, label_prefix: str) -> list[TranscriptEntry]:
        """All entries whose label starts with ``label_prefix``.

        Protocols namespace labels like ``"mult/encrypted_x"`` so phases
        can be isolated for analysis.
        """
        return [e for e in self.entries if e.label.startswith(label_prefix)]

    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries)

    def message_count(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()


def transcript_digest(transcript: Transcript) -> str:
    """SHA-256 over the transcript's canonical wire rendering.

    Each entry contributes ``serialize_message([sender, receiver, label,
    value])`` -- the canonical encoding the fuzz suite guarantees is
    injective -- so two transcripts share a digest iff their message
    sequences are bit-identical.  The socket runtime compares digests
    instead of shipping full transcripts between processes: both ends of
    every TCP pair must agree, and an orchestrated run must match the
    in-process fabric entry for entry.
    """
    from repro.net.serialization import serialize_message

    digest = hashlib.sha256()
    for entry in transcript.entries:
        digest.update(serialize_message(
            [entry.sender, entry.receiver, entry.label, entry.value]))
    return digest.hexdigest()
