"""Length-prefixed binary serialization for protocol messages.

Every value a protocol sends is serialized here, so the byte counts the
channel reports are the *actual wire size* of the protocol, not an
estimate.  Supported value types are the ones the paper's protocols
transmit: non-negative/negative integers (arbitrary precision), booleans,
strings (labels), and nested lists/tuples of these.

Wire format (type tag byte, then payload):

- ``I`` int: 1 sign byte + 4-byte big-endian length + magnitude bytes
- ``B`` bool: 1 byte
- ``S`` str: 4-byte length + UTF-8 bytes
- ``L`` list/tuple: 4-byte element count + concatenated elements
- ``N`` None: no payload
"""

from __future__ import annotations

import struct


class SerializationError(ValueError):
    """Raised for unsupported types or truncated/invalid wire data."""


def serialize_message(value) -> bytes:
    """Serialize a message value to its wire representation."""
    out = bytearray()
    _write(out, value)
    return bytes(out)


def deserialize_message(data: bytes):
    """Inverse of :func:`serialize_message`.

    Raises:
        SerializationError: on trailing bytes or malformed input, both of
            which indicate a protocol framing bug.
    """
    value, offset = _read(data, 0)
    if offset != len(data):
        raise SerializationError(
            f"{len(data) - offset} trailing bytes after message"
        )
    return value


def serialized_size(value) -> int:
    """Wire size in bytes; what the accounting channel charges."""
    return len(serialize_message(value))


def _write(out: bytearray, value) -> None:
    # bool must be checked before int: bool is an int subclass.
    if isinstance(value, bool):
        out += b"B"
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out += b"I"
        out.append(0 if value >= 0 else 1)
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1,
                                     "big")
        out += struct.pack(">I", len(payload))
        out += payload
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += b"S"
        out += struct.pack(">I", len(encoded))
        out += encoded
    elif isinstance(value, (list, tuple)):
        out += b"L"
        out += struct.pack(">I", len(value))
        for element in value:
            _write(out, element)
    elif value is None:
        out += b"N"
    else:
        raise SerializationError(
            f"unsupported message type: {type(value).__name__}"
        )


def _read(data: bytes, offset: int):
    if offset >= len(data):
        raise SerializationError("truncated message: no type tag")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == b"B":
        _need(data, offset, 1)
        if data[offset] not in (0, 1):
            raise SerializationError(
                f"non-canonical boolean byte {data[offset]:#x}")
        return data[offset] == 1, offset + 1
    if tag == b"I":
        _need(data, offset, 5)
        if data[offset] not in (0, 1):
            raise SerializationError(
                f"non-canonical sign byte {data[offset]:#x}")
        negative = data[offset] == 1
        (length,) = struct.unpack_from(">I", data, offset + 1)
        offset += 5
        if length == 0:
            raise SerializationError("empty integer magnitude")
        _need(data, offset, length)
        payload = data[offset:offset + length]
        # Canonical form: minimal length (no leading zero except the
        # single-byte zero itself) and no negative zero.
        if length > 1 and payload[0] == 0:
            raise SerializationError("non-canonical integer padding")
        magnitude = int.from_bytes(payload, "big")
        if magnitude == 0 and negative:
            raise SerializationError("non-canonical negative zero")
        return (-magnitude if negative else magnitude), offset + length
    if tag == b"S":
        _need(data, offset, 4)
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        _need(data, offset, length)
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == b"L":
        _need(data, offset, 4)
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        elements = []
        for _ in range(count):
            element, offset = _read(data, offset)
            elements.append(element)
        return elements, offset
    if tag == b"N":
        return None, offset
    raise SerializationError(f"unknown type tag {tag!r}")


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise SerializationError(
            f"truncated message: need {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
