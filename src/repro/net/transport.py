"""Pluggable message-delivery fabrics for a two-party link.

A :class:`~repro.net.channel.Channel` owns *accounting* (wire
serialization, byte/round statistics, the transcript); the
:class:`Transport` underneath it owns *delivery*: how a framed message
travels from one endpoint's outbox to the other endpoint's inbox, and
what "the inbox is empty" means.  Three fabrics implement the interface:

- :class:`InProcessTransport` -- the seed-era semantics: plain FIFO
  deques, zero cost, and an empty inbox is a protocol bug
  (:class:`ProtocolDesyncError`), never a timing condition.  This is
  what single-threaded choreographies run on.
- :class:`ThreadedTransport` -- thread-safe queues with blocking
  receive and a timeout, so the two party programs of one link can run
  on separate threads; an empty inbox blocks until the peer's send
  lands, and only a timeout (deadlock, crashed peer) raises
  (:class:`TransportTimeoutError`).
- :class:`SimulatedNetworkTransport` -- in-process delivery plus a
  per-link latency/bandwidth model: every endpoint carries a virtual
  clock, each message arrives ``latency + wire_bits/bandwidth`` after
  its sender's clock, and a receive that has to "wait" for an arrival
  advances the receiver's clock and charges the wait to the link's
  :class:`~repro.net.stats.CommunicationStats` latency ledger.  This is
  how benchmarks make round-trip latency -- the dominant online cost of
  interactive protocols on real networks -- visible without sleeping.

Transports never look inside ``wire`` bytes and never see plaintext
values; the trust boundary stays in the channel layer.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats type)
    from repro.net.stats import CommunicationStats


class TransportError(RuntimeError):
    """Raised on delivery to unknown endpoints or misconfiguration."""


class ProtocolDesyncError(RuntimeError):
    """Raised when a receive finds an empty inbox or a label mismatch.

    In a single-threaded choreography an empty inbox means the two party
    programs disagree about the message sequence -- always a bug, never a
    timing issue, so it fails loudly.
    """


class TransportTimeoutError(ProtocolDesyncError):
    """A blocking receive outlived its timeout (deadlock or dead peer).

    Subclasses :class:`ProtocolDesyncError`: by the time the timeout has
    expired the two party programs demonstrably disagree about the
    message sequence, so callers that handle desyncs handle this too.
    """


class TransportClosedError(TransportError):
    """The link was closed while (or before) a receive was waiting."""


class Transport(ABC):
    """Delivery fabric between the two named endpoints of one link."""

    def __init__(self, left_name: str, right_name: str):
        if left_name == right_name:
            raise TransportError("endpoints must have distinct names")
        self.left_name = left_name
        self.right_name = right_name

    def _check_endpoint(self, name: str) -> None:
        if name not in (self.left_name, self.right_name):
            raise TransportError(
                f"{name!r} is not an endpoint of this link "
                f"({self.left_name!r} <-> {self.right_name!r})")

    def attach_stats(self, stats: "CommunicationStats") -> None:
        """Give the transport a stats ledger to charge timing costs to.

        Called by the channel at construction; the base fabrics have
        nothing to charge and ignore it.
        """

    @abstractmethod
    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        """Append one framed message to ``receiver``'s inbox."""

    @abstractmethod
    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        """Pop the next inbound ``(label, wire)`` for ``receiver``.

        ``expected_label`` is advisory -- it only improves error
        messages; label *verification* happens in the channel so every
        fabric enforces identical framing rules.
        """

    def close(self) -> None:
        """Release fabric resources; delivery after close is undefined."""

    @property
    def simulated_seconds(self) -> float:
        """Simulated link time consumed so far (0.0 for real fabrics)."""
        return 0.0


class InProcessTransport(Transport):
    """Seed-era FIFO deques: free delivery, loud desync on empty inbox."""

    def __init__(self, left_name: str = "alice", right_name: str = "bob"):
        super().__init__(left_name, right_name)
        self._inboxes: dict[str, deque] = {left_name: deque(),
                                           right_name: deque()}

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(receiver)
        self._inboxes[receiver].append((label, wire))

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        inbox = self._inboxes[receiver]
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but the inbox is empty")
        return inbox.popleft()


class ThreadedTransport(Transport):
    """Blocking thread-safe queues: one party program per thread.

    The choreography style (one thread playing both parties) still works
    -- a send is always enqueued before the matching receive runs, so
    the blocking get returns immediately.  Two-thread executions block
    on empty inboxes until the peer catches up; ``timeout_s`` bounds the
    wait so a desynchronized pair of programs fails with a
    :class:`TransportTimeoutError` instead of deadlocking the suite.

    :meth:`close` poisons both inboxes with a sentinel (queued *behind*
    any undelivered messages, which stay readable), so a receiver that
    is parked in the blocking get when the peer tears the link down
    fails immediately with :class:`TransportClosedError` instead of
    stalling out its full timeout.
    """

    _CLOSED = object()  # inbox poison; never crosses serialization

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 timeout_s: float = 5.0):
        super().__init__(left_name, right_name)
        if timeout_s <= 0:
            raise TransportError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self._inboxes: dict[str, queue.Queue] = {left_name: queue.Queue(),
                                                 right_name: queue.Queue()}

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(receiver)
        self._inboxes[receiver].put((label, wire))

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        try:
            item = self._inboxes[receiver].get(timeout=self.timeout_s)
        except queue.Empty:
            raise TransportTimeoutError(
                f"{receiver} waited {self.timeout_s}s for "
                f"{expected_label or 'a message'}; the peer never sent it"
            ) from None
        if item is self._CLOSED:
            # Re-poison so every later receive fails fast too.
            self._inboxes[receiver].put(self._CLOSED)
            raise TransportClosedError(
                f"link closed while {receiver} waited for "
                f"{expected_label or 'a message'}")
        return item

    def close(self) -> None:
        for inbox in self._inboxes.values():
            inbox.put(self._CLOSED)


class SimulatedNetworkTransport(Transport):
    """In-process delivery under a virtual latency/bandwidth clock.

    Each endpoint carries a virtual clock (seconds).  A message sent at
    sender-time ``t`` arrives at ``t + latency_s + wire_bits/bandwidth``;
    collecting it advances the receiver's clock to the arrival time (the
    receiver "waited" for the network) and charges the wait to the stats
    latency ledger.  Consecutive messages from one sender pipeline: each
    pays its own transfer time but the link's latency is paid once per
    direction switch along the conversation, exactly the round structure
    :class:`~repro.net.stats.CommunicationStats` counts.

    ``elapsed`` -- the maximum endpoint clock -- is the simulated
    wall-clock a single-threaded choreography over this link would have
    consumed on a real network with these link parameters.
    """

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 latency_s: float = 0.005,
                 bandwidth_bps: float | None = None):
        super().__init__(left_name, right_name)
        if latency_s < 0:
            raise TransportError(f"latency_s must be >= 0, got {latency_s}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise TransportError(
                f"bandwidth_bps must be > 0, got {bandwidth_bps}")
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._inboxes: dict[str, deque] = {left_name: deque(),
                                           right_name: deque()}
        self._clocks: dict[str, float] = {left_name: 0.0, right_name: 0.0}
        self._stats: "CommunicationStats | None" = None

    def attach_stats(self, stats: "CommunicationStats") -> None:
        self._stats = stats

    def _transfer_seconds(self, wire: bytes) -> float:
        if self.bandwidth_bps is None:
            return 0.0
        return (8 * len(wire)) / self.bandwidth_bps

    def _charge(self, endpoint: str, elapsed_before: float) -> None:
        """Charge the link's critical-path advance to the stats ledger.

        Charging ``max(clocks) - previous max(clocks)`` (instead of each
        endpoint's raw idle time, which overlaps across endpoints in an
        alternating conversation) telescopes: the per-link ledger total
        always equals :attr:`elapsed`, the link's simulated wall-clock.
        """
        advance = max(self._clocks.values()) - elapsed_before
        if advance > 0 and self._stats is not None:
            self._stats.record_simulated_wait(endpoint, advance)

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(sender)
        self._check_endpoint(receiver)
        # Serialization on the sender's NIC: back-to-back sends queue
        # behind each other, so the sender's clock advances by the
        # transfer time while the propagation latency overlaps.
        elapsed_before = max(self._clocks.values())
        self._clocks[sender] += self._transfer_seconds(wire)
        arrival = self._clocks[sender] + self.latency_s
        self._inboxes[receiver].append((label, wire, arrival))
        self._charge(sender, elapsed_before)

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        inbox = self._inboxes[receiver]
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but the inbox is empty")
        label, wire, arrival = inbox.popleft()
        if arrival > self._clocks[receiver]:
            elapsed_before = max(self._clocks.values())
            self._clocks[receiver] = arrival
            self._charge(receiver, elapsed_before)
        return label, wire

    def clock_of(self, name: str) -> float:
        """The named endpoint's virtual clock, in seconds."""
        self._check_endpoint(name)
        return self._clocks[name]

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock of the link: the later endpoint clock."""
        return max(self._clocks.values())

    @property
    def simulated_seconds(self) -> float:
        return self.elapsed


_TRANSPORT_KINDS = ("in_process", "threaded", "simulated")


@dataclass(frozen=True)
class TransportSpec:
    """Declarative transport choice, carried by ``SmcConfig``.

    Configs are frozen value objects shared across pairwise links, so
    they carry a *spec* rather than a transport instance; every link
    calls :meth:`create` for its own private fabric.

    Attributes:
        kind: ``"in_process"`` (default), ``"threaded"``, or
            ``"simulated"``.
        latency_s: one-way link latency for the simulated fabric.
        bandwidth_bps: link bandwidth in bits/second for the simulated
            fabric; ``None`` models infinite bandwidth (latency only).
        timeout_s: blocking-receive timeout for the threaded fabric.
    """

    kind: str = "in_process"
    latency_s: float = 0.005
    bandwidth_bps: float | None = None
    timeout_s: float = 5.0

    def __post_init__(self):
        if self.kind not in _TRANSPORT_KINDS:
            raise TransportError(
                f"unknown transport kind {self.kind!r}; "
                f"expected one of {_TRANSPORT_KINDS}")

    def create(self, left_name: str, right_name: str) -> Transport:
        """Build a fresh fabric for one link."""
        if self.kind == "threaded":
            return ThreadedTransport(left_name, right_name,
                                     timeout_s=self.timeout_s)
        if self.kind == "simulated":
            return SimulatedNetworkTransport(
                left_name, right_name, latency_s=self.latency_s,
                bandwidth_bps=self.bandwidth_bps)
        return InProcessTransport(left_name, right_name)
