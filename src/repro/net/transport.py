"""Pluggable message-delivery fabrics for a two-party link.

A :class:`~repro.net.channel.Channel` owns *accounting* (wire
serialization, byte/round statistics, the transcript); the
:class:`Transport` underneath it owns *delivery*: how a framed message
travels from one endpoint's outbox to the other endpoint's inbox, and
what "the inbox is empty" means.  Four fabrics implement the interface:

- :class:`InProcessTransport` -- the seed-era semantics: plain FIFO
  deques, zero cost, and an empty inbox is a protocol bug
  (:class:`ProtocolDesyncError`), never a timing condition.  This is
  what single-threaded choreographies run on.
- :class:`ThreadedTransport` -- thread-safe queues with blocking
  receive and a timeout, so the two party programs of one link can run
  on separate threads; an empty inbox blocks until the peer's send
  lands, and only a timeout (deadlock, crashed peer) raises
  (:class:`TransportTimeoutError`).
- :class:`SimulatedNetworkTransport` -- in-process delivery plus a
  per-link latency/bandwidth model: every endpoint carries a virtual
  clock, each message arrives ``latency + wire_bits/bandwidth`` after
  its sender's clock (plus an optional seeded jitter draw), and a
  receive that has to "wait" for an arrival advances the receiver's
  clock and charges the wait to the link's
  :class:`~repro.net.stats.CommunicationStats` latency ledger.  This is
  how benchmarks make round-trip latency -- the dominant online cost of
  interactive protocols on real networks -- visible without sleeping.
- :class:`TcpTransport` -- a real socket: the link's two endpoints live
  in *different OS processes*, connected by a
  :class:`~repro.net.framing.FramedConnection`.  Each process serves
  only its local endpoint -- ``deliver`` writes one length-prefixed
  frame carrying the label and the exact
  :mod:`repro.net.serialization` wire bytes, ``collect`` blocks on the
  socket -- so the message sequence on the wire is byte-identical to
  what the in-process fabrics queue.  Timeouts map to
  :class:`TransportTimeoutError`, peer teardown (goodbye frame or EOF)
  to :class:`TransportClosedError`, and both error messages name the
  pair, the local party, and the last frame seen, so an orchestrated
  party that dies mid-protocol is diagnosable from the survivor's
  exception alone.

Transports never look inside ``wire`` bytes and never see plaintext
values; the trust boundary stays in the channel layer.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import queue
import random
import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_CONTROL,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_MESSAGE,
    FRAME_MUX_CONTROL,
    FRAME_MUX_MESSAGE,
    MUX_KINDS,
    ConnectionClosedError,
    FrameAuthenticationError,
    FrameAuthenticator,
    FramedConnection,
    FramingError,
    ReceiveTimeout,
    decode_message_payload,
    decode_mux_payload,
    encode_frame,
    encode_message_payload,
    encode_mux_payload,
    read_frame_async,
)
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats type)
    from repro.net.stats import CommunicationStats


class TransportError(RuntimeError):
    """Raised on delivery to unknown endpoints or misconfiguration."""


class ProtocolDesyncError(RuntimeError):
    """Raised when a receive finds an empty inbox or a label mismatch.

    In a single-threaded choreography an empty inbox means the two party
    programs disagree about the message sequence -- always a bug, never a
    timing issue, so it fails loudly.
    """


class TransportTimeoutError(ProtocolDesyncError):
    """A blocking receive outlived its timeout (deadlock or dead peer).

    Subclasses :class:`ProtocolDesyncError`: by the time the timeout has
    expired the two party programs demonstrably disagree about the
    message sequence, so callers that handle desyncs handle this too.
    """


class TransportClosedError(TransportError):
    """The link was closed while (or before) a receive was waiting."""


def link_context(left_name: str, right_name: str,
                 last_frame: tuple[str, str, str] | None,
                 local_name: str | None = None) -> str:
    """The shared diagnosis suffix of transport errors: which pair,
    (optionally) which local party, and the last ``sender->receiver
    label`` frame that made it across -- how far the protocol got."""
    trail = (f"last frame {last_frame[0]}->{last_frame[1]} "
             f"{last_frame[2]!r}" if last_frame
             else "no frames were delivered")
    local = f", local {local_name!r}" if local_name is not None else ""
    return f"pair {left_name!r}<->{right_name!r}{local}; {trail}"


class Transport(ABC):
    """Delivery fabric between the two named endpoints of one link."""

    def __init__(self, left_name: str, right_name: str):
        if left_name == right_name:
            raise TransportError("endpoints must have distinct names")
        self.left_name = left_name
        self.right_name = right_name

    def _check_endpoint(self, name: str) -> None:
        if name not in (self.left_name, self.right_name):
            raise TransportError(
                f"{name!r} is not an endpoint of this link "
                f"({self.left_name!r} <-> {self.right_name!r})")

    def attach_stats(self, stats: "CommunicationStats") -> None:
        """Give the transport a stats ledger to charge timing costs to.

        Called by the channel at construction; the base fabrics have
        nothing to charge and ignore it.
        """

    @abstractmethod
    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        """Append one framed message to ``receiver``'s inbox."""

    @abstractmethod
    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        """Pop the next inbound ``(label, wire)`` for ``receiver``.

        ``expected_label`` is advisory -- it only improves error
        messages; label *verification* happens in the channel so every
        fabric enforces identical framing rules.
        """

    def close(self, reason: str | None = None) -> None:
        """Release fabric resources; delivery after close is undefined.

        ``reason`` is a human-readable diagnosis (e.g. *"party bob died:
        ZeroDivisionError"*) that fabrics with blocking receivers thread
        into the error their parked peers see.  Fabrics with nothing to
        unblock ignore it.
        """

    @property
    def simulated_seconds(self) -> float:
        """Simulated link time consumed so far (0.0 for real fabrics)."""
        return 0.0


class InProcessTransport(Transport):
    """Seed-era FIFO deques: free delivery, loud desync on empty inbox."""

    def __init__(self, left_name: str = "alice", right_name: str = "bob"):
        super().__init__(left_name, right_name)
        self._inboxes: dict[str, deque] = {left_name: deque(),
                                           right_name: deque()}

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(receiver)
        self._inboxes[receiver].append((label, wire))

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        inbox = self._inboxes[receiver]
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but the inbox is empty")
        return inbox.popleft()


class ThreadedTransport(Transport):
    """Blocking thread-safe queues: one party program per thread.

    The choreography style (one thread playing both parties) still works
    -- a send is always enqueued before the matching receive runs, so
    the blocking get returns immediately.  Two-thread executions block
    on empty inboxes until the peer catches up; ``timeout_s`` bounds the
    wait so a desynchronized pair of programs fails with a
    :class:`TransportTimeoutError` instead of deadlocking the suite.

    :meth:`close` poisons both inboxes with a sentinel (queued *behind*
    any undelivered messages, which stay readable), so a receiver that
    is parked in the blocking get when the peer tears the link down
    fails immediately with :class:`TransportClosedError` instead of
    stalling out its full timeout.  ``close(reason=...)`` threads a
    diagnosis -- typically *which* party program died and why -- into
    that error, and both the timeout and the closed error name the pair
    and the last frame that made it across, so a supervisor tearing
    down a crashed party leaves the surviving program with an exception
    that says who failed, on which link, and how far the protocol got.
    """

    _CLOSED = object()  # inbox poison; never crosses serialization

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 timeout_s: float = 5.0):
        super().__init__(left_name, right_name)
        if timeout_s <= 0:
            raise TransportError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self._inboxes: dict[str, queue.Queue] = {left_name: queue.Queue(),
                                                 right_name: queue.Queue()}
        self._last_frame: tuple[str, str, str] | None = None
        self._close_reason: str | None = None

    def _pair_context(self) -> str:
        return link_context(self.left_name, self.right_name,
                            self._last_frame)

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(receiver)
        self._last_frame = (sender, receiver, label)
        self._inboxes[receiver].put((label, wire))

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        try:
            item = self._inboxes[receiver].get(timeout=self.timeout_s)
        except queue.Empty:
            raise TransportTimeoutError(
                f"{receiver} waited {self.timeout_s}s for "
                f"{expected_label or 'a message'}; the peer never sent it "
                f"({self._pair_context()})"
            ) from None
        if item is self._CLOSED:
            # Re-poison so every later receive fails fast too.
            self._inboxes[receiver].put(self._CLOSED)
            reason = f": {self._close_reason}" if self._close_reason else ""
            raise TransportClosedError(
                f"link closed while {receiver} waited for "
                f"{expected_label or 'a message'}{reason} "
                f"({self._pair_context()})")
        return item

    def close(self, reason: str | None = None) -> None:
        if reason is not None and self._close_reason is None:
            self._close_reason = reason
        for inbox in self._inboxes.values():
            inbox.put(self._CLOSED)


class SimulatedNetworkTransport(Transport):
    """In-process delivery under a virtual latency/bandwidth clock.

    Each endpoint carries a virtual clock (seconds).  A message sent at
    sender-time ``t`` arrives at ``t + latency_s + wire_bits/bandwidth``;
    collecting it advances the receiver's clock to the arrival time (the
    receiver "waited" for the network) and charges the wait to the stats
    latency ledger.  Consecutive messages from one sender pipeline: each
    pays its own transfer time but the link's latency is paid once per
    direction switch along the conversation, exactly the round structure
    :class:`~repro.net.stats.CommunicationStats` counts.

    ``elapsed`` -- the maximum endpoint clock -- is the simulated
    wall-clock a single-threaded choreography over this link would have
    consumed on a real network with these link parameters.

    Jitter: with ``jitter_s > 0`` every message pays an extra uniform
    draw from ``[0, jitter_s)`` on top of the base latency, from
    ``jitter_rng`` -- seed it (see :meth:`TransportSpec.create`, which
    derives a per-link stream from ``jitter_seed``) and the perturbed
    timing is exactly reproducible.  Jitter models per-packet delay
    variance only; it never reorders messages (FIFO per link, as TCP
    guarantees) and never changes the message sequence, so protocol
    observables stay bit-identical to the jitter-free run.
    """

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 latency_s: float = 0.005,
                 bandwidth_bps: float | None = None,
                 jitter_s: float = 0.0,
                 jitter_rng: random.Random | None = None):
        super().__init__(left_name, right_name)
        if latency_s < 0:
            raise TransportError(f"latency_s must be >= 0, got {latency_s}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise TransportError(
                f"bandwidth_bps must be > 0, got {bandwidth_bps}")
        if jitter_s < 0:
            raise TransportError(f"jitter_s must be >= 0, got {jitter_s}")
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.jitter_s = jitter_s
        self._jitter_rng = (jitter_rng if jitter_rng is not None
                            else random.Random())
        self._inboxes: dict[str, deque] = {left_name: deque(),
                                           right_name: deque()}
        self._clocks: dict[str, float] = {left_name: 0.0, right_name: 0.0}
        self._stats: "CommunicationStats | None" = None

    def attach_stats(self, stats: "CommunicationStats") -> None:
        self._stats = stats

    def _transfer_seconds(self, wire: bytes) -> float:
        if self.bandwidth_bps is None:
            return 0.0
        return (8 * len(wire)) / self.bandwidth_bps

    def _charge(self, endpoint: str, elapsed_before: float) -> None:
        """Charge the link's critical-path advance to the stats ledger.

        Charging ``max(clocks) - previous max(clocks)`` (instead of each
        endpoint's raw idle time, which overlaps across endpoints in an
        alternating conversation) telescopes: the per-link ledger total
        always equals :attr:`elapsed`, the link's simulated wall-clock.
        """
        advance = max(self._clocks.values()) - elapsed_before
        if advance > 0 and self._stats is not None:
            self._stats.record_simulated_wait(endpoint, advance)

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(sender)
        self._check_endpoint(receiver)
        # Serialization on the sender's NIC: back-to-back sends queue
        # behind each other, so the sender's clock advances by the
        # transfer time while the propagation latency overlaps.
        elapsed_before = max(self._clocks.values())
        self._clocks[sender] += self._transfer_seconds(wire)
        arrival = self._clocks[sender] + self.latency_s
        if self.jitter_s > 0:
            arrival += self._jitter_rng.uniform(0.0, self.jitter_s)
        inbox = self._inboxes[receiver]
        if inbox:
            # In-order delivery (TCP semantics): a lucky jitter draw
            # cannot overtake a message already in flight to the same
            # receiver -- head-of-line, arrivals are monotone per link
            # direction.
            arrival = max(arrival, inbox[-1][2])
        inbox.append((label, wire, arrival))
        self._charge(sender, elapsed_before)

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        inbox = self._inboxes[receiver]
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but the inbox is empty")
        label, wire, arrival = inbox.popleft()
        if arrival > self._clocks[receiver]:
            elapsed_before = max(self._clocks.values())
            self._clocks[receiver] = arrival
            self._charge(receiver, elapsed_before)
        return label, wire

    def clock_of(self, name: str) -> float:
        """The named endpoint's virtual clock, in seconds."""
        self._check_endpoint(name)
        return self._clocks[name]

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock of the link: the later endpoint clock."""
        return max(self._clocks.values())

    @property
    def simulated_seconds(self) -> float:
        return self.elapsed


class TcpTransport(Transport):
    """Real socket fabric: each endpoint lives in its own OS process.

    One process constructs this transport around the connected,
    handshaken :class:`~repro.net.framing.FramedConnection` of a link
    and names which endpoint is *local*.  ``deliver`` is only valid for
    the local sender (a process cannot fabricate its peer's traffic) and
    writes one message frame -- the label plus the exact serialization
    wire bytes.  ``collect`` is only valid for the local receiver and
    blocks on the socket.

    Error mapping, all carrying pair / party / last-frame context:

    - receive timeout -> :class:`TransportTimeoutError` (a desync or a
      hung peer);
    - goodbye frame or EOF/reset -> :class:`TransportClosedError`
      (orderly teardown vs. peer death, the reason string tells which);
    - control/hello frames inside the protocol stream, or malformed
      frames -> :class:`ProtocolDesyncError`.
    """

    def __init__(self, left_name: str, right_name: str,
                 connection: FramedConnection, local_name: str):
        super().__init__(left_name, right_name)
        self._check_endpoint(local_name)
        self.connection = connection
        self.local_name = local_name
        self.peer_name = (right_name if local_name == left_name
                          else left_name)
        self._last_frame: tuple[str, str, str] | None = None

    def _context(self) -> str:
        return link_context(self.left_name, self.right_name,
                            self._last_frame, local_name=self.local_name)

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(sender)
        self._check_endpoint(receiver)
        if sender != self.local_name:
            raise TransportError(
                f"{sender!r} is not the local endpoint of this process; "
                f"a socket fabric only transmits its own party's messages "
                f"({self._context()})")
        try:
            self.connection.write_message(label, wire)
        except ConnectionClosedError as exc:
            raise TransportClosedError(
                f"{sender} could not send {label!r}: {exc} "
                f"({self._context()})") from exc
        self._last_frame = (sender, receiver, label)

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        if receiver != self.local_name:
            raise TransportError(
                f"{receiver!r} is not the local endpoint of this process "
                f"({self._context()})")
        want = expected_label or "a message"
        try:
            kind, payload = self.connection.read_frame()
        except ReceiveTimeout as exc:
            raise TransportTimeoutError(
                f"{receiver} waited {self.connection.timeout_s}s for "
                f"{want}; the peer never sent it ({self._context()})"
            ) from exc
        except ConnectionClosedError as exc:
            raise TransportClosedError(
                f"link closed while {receiver} waited for {want}: {exc} "
                f"({self._context()})") from exc
        except FrameAuthenticationError:
            # Not a desync: the peer (or someone on the path) fails the
            # MAC.  Propagate unchanged so the failure classifier maps
            # it to the fatal, never-retried auth cause instead of the
            # generic desync.
            raise
        except FramingError as exc:
            raise ProtocolDesyncError(
                f"malformed frame while {receiver} waited for {want}: "
                f"{exc} ({self._context()})") from exc
        if kind == FRAME_GOODBYE:
            raise TransportClosedError(
                f"peer {self.peer_name!r} closed the link "
                f"({payload.decode('utf-8', 'replace')!r}) while "
                f"{receiver} waited for {want} ({self._context()})")
        if kind != FRAME_MESSAGE:
            # Control/hello frames inside the protocol stream, or a
            # session-multiplexed ``m``/``c`` frame on a dedicated
            # single-session link -- either way the two ends disagree
            # about what this connection carries.
            what = ("control frame" if kind == FRAME_CONTROL
                    else f"{kind!r} frame")
            raise ProtocolDesyncError(
                f"unexpected {what} inside the protocol stream "
                f"while {receiver} waited for {want} ({self._context()})")
        try:
            label, wire = decode_message_payload(payload)
        except FramingError as exc:
            raise ProtocolDesyncError(
                f"unreadable message frame while {receiver} waited for "
                f"{want}: {exc} ({self._context()})") from exc
        self._last_frame = (self.peer_name, receiver, label)
        return label, wire

    def close(self, reason: str | None = None) -> None:
        if not self.connection.closed:
            try:
                self.connection.write_goodbye(reason or "done")
            except ConnectionClosedError:
                pass  # peer already gone; nothing to announce
            self.connection.close()


class AsyncTcpTransport:
    """Session-demultiplexing hub over one persistent mux connection.

    The daemon runtime keeps exactly one TCP connection per party-pair,
    alive across many clustering sessions.  This hub owns that
    connection's event-loop plumbing:

    - an *inbound demux task* reads ``m``/``c`` frames and routes each,
      by session tag, into the per-session future queues of a
      :class:`SessionLinkTransport` view (created eagerly on first
      sight of a tag, so a peer whose session raced ahead of ours never
      loses frames);
    - an *outbound writer task* drains a loop-side queue of pre-encoded
      frames, so worker threads enqueue via ``call_soon_threadsafe``
      and per-thread send order is preserved end to end.

    Each :meth:`session` view is a full :class:`Transport`: the
    unchanged :class:`~repro.runtime.mirror.MirrorChannel` machinery
    runs over it, which is the equivalence argument -- multiplexing
    changes which frames share a socket, never the bytes or the
    per-session order of any (session, pair, direction) stream.

    ``net_delay_s`` is the daemon's simulated-latency profile: every
    inbound frame is released to its queue ``net_delay_s`` after it is
    read (``loop.call_later`` keeps FIFO order for equal delays).  The
    sleep is *real* loop time shared by all sessions on the connection,
    so latency hiding across concurrent sessions is measured, not
    modeled.
    """

    _CLOSED = object()  # queue poison; never crosses the wire

    def __init__(self, left_name: str, right_name: str, local_name: str,
                 *, timeout_s: float = 30.0, net_delay_s: float = 0.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 authenticator: FrameAuthenticator | None = None,
                 metrics: "MetricsRegistry | None" = None):
        if left_name == right_name:
            raise TransportError("endpoints must have distinct names")
        if local_name not in (left_name, right_name):
            raise TransportError(
                f"{local_name!r} is not an endpoint of this link "
                f"({left_name!r} <-> {right_name!r})")
        if timeout_s <= 0:
            raise TransportError(f"timeout_s must be > 0, got {timeout_s}")
        if net_delay_s < 0:
            raise TransportError(
                f"net_delay_s must be >= 0, got {net_delay_s}")
        self.left_name = left_name
        self.right_name = right_name
        self.local_name = local_name
        self.peer_name = (right_name if local_name == left_name
                          else left_name)
        self.timeout_s = timeout_s
        self.net_delay_s = net_delay_s
        self.max_frame_bytes = max_frame_bytes
        #: Optional per-frame MAC layer shared by every session on the
        #: connection (context: the mesh-spec digest, known a priori on
        #: both ends).  Outbound frames are sealed at encode time via
        #: :meth:`encode_sealed`; inbound frames are verified in
        #: :meth:`_pump_in` *before* any demultiplexing parses them.
        self.authenticator = authenticator
        self.name = f"mux {left_name}<->{right_name} at {local_name}"
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._outbox: asyncio.Queue | None = None
        self._sessions: dict[str, SessionLinkTransport] = {}
        self._tasks: list[asyncio.Task] = []
        self._closed = False
        self._close_reason: str | None = None
        self._auth_failed = False
        self._last_frame: tuple[str, str, str] | None = None
        # Frame/byte accounting per (pair, direction, kind).  A missing
        # registry degrades to the shared null instruments, so the hot
        # pumps pay one attribute call when observability is off.
        if metrics is None:
            metrics = MetricsRegistry(enabled=False)
        self.metrics = metrics
        self._obs_pair = f"{left_name}-{right_name}"
        self._frames_out: dict[bytes, object] = {}
        self._frames_in: dict[bytes, object] = {}
        self._bytes_out = metrics.counter(
            "repro_link_bytes_total", pair=self._obs_pair, dir="out")
        self._bytes_in = metrics.counter(
            "repro_link_bytes_total", pair=self._obs_pair, dir="in")
        self._auth_failures = metrics.counter(
            "repro_link_auth_failures_total", pair=self._obs_pair)

    def _frame_counter(self, table: dict, direction: str, kind: bytes):
        counter = table.get(kind)
        if counter is None:
            counter = table[kind] = self.metrics.counter(
                "repro_link_frames_total", pair=self._obs_pair,
                dir=direction, kind=kind.decode("ascii", "replace"))
        return counter

    # -- lifecycle (event-loop thread only) --------------------------------

    def start(self, reader: asyncio.StreamReader,
              writer: asyncio.StreamWriter) -> None:
        """Adopt a connected, handshaken stream pair and start pumping."""
        self._loop = asyncio.get_running_loop()
        self._reader = reader
        self._writer = writer
        self._outbox = asyncio.Queue()
        self._tasks = [self._loop.create_task(self._pump_out()),
                       self._loop.create_task(self._pump_in())]

    def session(self, session_id: str) -> "SessionLinkTransport":
        """The (auto-created) per-session view of this connection."""
        view = self._sessions.get(session_id)
        if view is None:
            if self._closed:
                raise TransportClosedError(
                    f"{self.name}: connection closed"
                    + (f": {self._close_reason}" if self._close_reason
                       else ""))
            view = SessionLinkTransport(self, session_id)
            self._sessions[session_id] = view
        return view

    def release(self, session_id: str) -> None:
        """Forget a finished session's queues (memory hygiene)."""
        self._sessions.pop(session_id, None)

    async def aclose(self, reason: str = "done") -> None:
        """Orderly teardown: goodbye frame, close the stream, poison
        every parked receiver."""
        if self._closed:
            return
        self._poison(reason)
        if self._writer is not None:
            try:
                self._writer.write(self.encode_sealed(
                    FRAME_GOODBYE, reason.encode("utf-8")))
                await self._writer.drain()
            except (ConnectionResetError, OSError):
                pass  # peer already gone; nothing to announce
            self._writer.close()
        for task in self._tasks:
            task.cancel()

    def _poison(self, reason: str) -> None:
        self._closed = True
        if self._close_reason is None:
            self._close_reason = reason
        for view in self._sessions.values():
            view._message_queue.put_nowait(self._CLOSED)
            view._control_queue.put_nowait(self._CLOSED)

    def _abort(self, reason: str) -> None:
        """Connection-level failure seen by the demux reader: every
        session on this link fails with the same diagnosis."""
        self._poison(reason)
        if self._writer is not None:
            self._writer.close()

    def _abort_in_order(self, reason: str) -> None:
        """Abort *after* every already-delayed inbound frame lands.

        With simulated latency, data frames are released to their
        queues ``net_delay_s`` after being read; poisoning immediately
        on goodbye/EOF would let the closure overtake frames the peer
        sent (and TCP delivered) before closing -- e.g. a final
        END_PASS racing the peer daemon's drain teardown.  Scheduling
        the abort through the same ``call_later`` lane preserves the
        stream's FIFO order end to end."""
        if self.net_delay_s > 0:
            self._loop.call_later(self.net_delay_s, self._abort, reason)
        else:
            self._abort(reason)

    # -- outbound (any thread) ---------------------------------------------

    def encode_sealed(self, kind: bytes, payload: bytes) -> bytes:
        """Encode one frame, sealing it when the link is authenticated.

        Every outbound frame on this connection must go through here
        (or carry a tag applied by the same authenticator): a mix of
        sealed and unsealed frames on one authenticated link would fail
        verification at the peer.
        """
        if self.authenticator is not None:
            payload = self.authenticator.seal(kind, payload)
        frame = encode_frame(kind, payload)
        self._frame_counter(self._frames_out, "out", kind).inc()
        self._bytes_out.inc(len(frame))
        return frame

    def send_frame(self, frame: bytes) -> None:
        """Enqueue one pre-encoded frame for the writer task.

        Thread-safe: per-thread enqueue order is preserved, which is
        all the protocol needs -- within one session exactly one thread
        sends on a given link at a time.
        """
        if len(frame) > 4 + self.max_frame_bytes:
            raise FramingError(
                f"{self.name}: frame of {len(frame) - 4} bytes exceeds "
                f"the {self.max_frame_bytes}-byte ceiling")
        if self._closed:
            raise TransportClosedError(
                f"{self.name}: send on closed connection"
                + (f": {self._close_reason}" if self._close_reason
                   else ""))
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._outbox.put_nowait(frame)
        else:
            self._loop.call_soon_threadsafe(self._outbox.put_nowait, frame)

    # -- pump tasks (event-loop thread) ------------------------------------

    async def _pump_out(self) -> None:
        while True:
            frame = await self._outbox.get()
            if frame is self._CLOSED:
                return
            try:
                self._writer.write(frame)
                await self._writer.drain()
            except (ConnectionResetError, OSError) as exc:
                self._abort(f"peer gone while writing ({exc})")
                return

    async def _pump_in(self) -> None:
        while True:
            try:
                kind, payload = await read_frame_async(
                    self._reader, max_frame_bytes=self.max_frame_bytes,
                    name=self.name, authenticator=self.authenticator)
            except ConnectionClosedError as exc:
                self._abort_in_order(f"connection lost ({exc})")
                return
            except FrameAuthenticationError as exc:
                # Verified (and failed) before any demux parsing; the
                # flag makes every parked receiver on this hub re-raise
                # the auth failure instead of a retryable closure.
                self._auth_failed = True
                self._auth_failures.inc()
                self._abort(f"link authentication failed ({exc})")
                return
            except FramingError as exc:
                self._abort(f"malformed frame ({exc})")
                return
            self._frame_counter(self._frames_in, "in", kind).inc()
            self._bytes_in.inc(5 + len(payload))
            if kind == FRAME_GOODBYE:
                self._abort_in_order(
                    f"peer {self.peer_name!r} closed the link "
                    f"({payload.decode('utf-8', 'replace')!r})")
                return
            if kind not in MUX_KINDS:
                self._abort(f"non-multiplexed {kind!r} frame on a mux "
                            f"connection")
                return
            try:
                session_id, inner = decode_mux_payload(payload)
                if kind == FRAME_MUX_MESSAGE:
                    item = decode_message_payload(inner)
                else:
                    item = inner
            except FramingError as exc:
                self._abort(f"unreadable mux frame ({exc})")
                return
            view = self.session(session_id)
            target = (view._message_queue if kind == FRAME_MUX_MESSAGE
                      else view._control_queue)
            if kind == FRAME_MUX_MESSAGE:
                self._last_frame = (self.peer_name, self.local_name,
                                    f"{session_id}:{item[0]}")
            if self.net_delay_s > 0:
                # Real loop time, shared by every session on the link:
                # call_later keeps FIFO for equal delays, so simulated
                # latency never reorders a stream.
                self._loop.call_later(self.net_delay_s,
                                      target.put_nowait, item)
            else:
                target.put_nowait(item)

    def _context(self) -> str:
        return link_context(self.left_name, self.right_name,
                            self._last_frame, local_name=self.local_name)


class SessionLinkTransport(Transport):
    """One session's view of a shared :class:`AsyncTcpTransport`.

    A full :class:`Transport`: ``deliver`` encodes the protocol message
    as an ``m`` frame tagged with the session id and hands it to the
    hub's writer queue; ``collect`` -- called from a session worker
    thread, never the loop -- parks on the session's inbound future
    queue via ``run_coroutine_threadsafe``.  The control plane
    (``c`` frames: query announcements, end-of-pass, session sync) uses
    :meth:`send_control` / :meth:`next_control` and never touches the
    message queue, mirroring the single-session runtime's strict
    C-frame / M-frame separation.

    Closing a view never closes the shared connection; it only detaches
    the session from the hub's demux table.
    """

    def __init__(self, hub: AsyncTcpTransport, session_id: str):
        super().__init__(hub.left_name, hub.right_name)
        self.hub = hub
        self.session_id = session_id
        self.local_name = hub.local_name
        self._message_queue: asyncio.Queue = asyncio.Queue()
        self._control_queue: asyncio.Queue = asyncio.Queue()

    # -- protocol-message plane (Transport interface) ----------------------

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        self._check_endpoint(sender)
        self._check_endpoint(receiver)
        if sender != self.local_name:
            raise TransportError(
                f"{sender!r} is not the local endpoint of this daemon; "
                f"a socket fabric only transmits its own party's messages "
                f"({self._context()})")
        inner = encode_message_payload(label, wire)
        try:
            self.hub.send_frame(self.hub.encode_sealed(
                FRAME_MUX_MESSAGE,
                encode_mux_payload(self.session_id, inner)))
        except TransportClosedError as exc:
            raise TransportClosedError(
                f"{sender} could not send {label!r}: {exc} "
                f"({self._context()})") from exc
        self.hub._last_frame = (sender, receiver,
                                f"{self.session_id}:{label}")

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        self._check_endpoint(receiver)
        if receiver != self.local_name:
            raise TransportError(
                f"{receiver!r} is not the local endpoint of this daemon "
                f"({self._context()})")
        want = expected_label or "a message"
        item = self._await_from_worker(self._message_queue, want)
        return item

    def try_collect(self, receiver: str,
                    expected_label: str | None
                    ) -> tuple[str, bytes] | None:
        """Non-blocking :meth:`collect`: the already-arrived frame, or
        ``None`` when the peer's frame is still in flight.

        This is the message-granularity probe of the async pass
        executor: a restartable choreography segment calls it at a
        remote-send substitution and, on ``None``, unwinds so its
        *coroutine* can park on :meth:`wait_message` -- no thread ever
        blocks.  Event-loop thread only (the queue is loop-owned).
        """
        self._check_endpoint(receiver)
        if receiver != self.local_name:
            raise TransportError(
                f"{receiver!r} is not the local endpoint of this daemon "
                f"({self._context()})")
        try:
            item = self._message_queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        want = expected_label or "a message"
        return self._checked_item(item, self._message_queue, want)

    async def wait_message(self, want: str = "a message"
                           ) -> tuple[str, bytes]:
        """Await the session's next protocol frame (loop coroutine).

        The coroutine twin of a worker-thread :meth:`collect`: same
        timeout budget, same closed/auth-failure classification, but it
        parks only this coroutine on the per-(session, pair) queue --
        the daemon's thread count stays flat however many sessions are
        simultaneously waiting here.
        """
        try:
            item = await asyncio.wait_for(self._message_queue.get(),
                                          self.hub.timeout_s)
        except asyncio.TimeoutError:
            raise TransportTimeoutError(
                f"{self.local_name} waited {self.hub.timeout_s}s for "
                f"{want}; the peer never sent it ({self._context()})"
            ) from None
        return self._checked_item(item, self._message_queue, want)

    def close(self, reason: str | None = None) -> None:
        self.hub.release(self.session_id)

    # -- control plane -----------------------------------------------------

    def send_control(self, record_wire: bytes) -> None:
        """Write one session-tagged control frame (thread-safe)."""
        self.hub.send_frame(self.hub.encode_sealed(
            FRAME_MUX_CONTROL,
            encode_mux_payload(self.session_id, record_wire)))

    async def next_control(self) -> bytes:
        """Await the session's next control record (loop coroutine)."""
        item = await self._control_queue.get()
        if item is AsyncTcpTransport._CLOSED:
            self._control_queue.put_nowait(AsyncTcpTransport._CLOSED)
            reason = (f": {self.hub._close_reason}"
                      if self.hub._close_reason else "")
            if self.hub._auth_failed:
                raise FrameAuthenticationError(
                    f"link authentication failed while {self.local_name} "
                    f"waited for a control record{reason} "
                    f"({self._context()})")
            raise TransportClosedError(
                f"link closed while {self.local_name} waited for a "
                f"control record{reason} ({self._context()})")
        return item

    # -- plumbing ----------------------------------------------------------

    def _await_from_worker(self, source: asyncio.Queue, want: str):
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise TransportError(
                f"collect() must not run on the event loop thread "
                f"({self._context()})")
        future = asyncio.run_coroutine_threadsafe(source.get(),
                                                  self.hub._loop)
        try:
            item = future.result(self.hub.timeout_s)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TransportTimeoutError(
                f"{self.local_name} waited {self.hub.timeout_s}s for "
                f"{want}; the peer never sent it ({self._context()})"
            ) from None
        return self._checked_item(item, source, want)

    def _checked_item(self, item, source: asyncio.Queue, want: str):
        """Classify a dequeued item: re-seat the closed sentinel (every
        later receiver must see it too) and raise the same failure the
        worker-thread path raises -- auth failures named as such."""
        if item is AsyncTcpTransport._CLOSED:
            source.put_nowait(AsyncTcpTransport._CLOSED)
            reason = (f": {self.hub._close_reason}"
                      if self.hub._close_reason else "")
            if self.hub._auth_failed:
                raise FrameAuthenticationError(
                    f"link authentication failed while {self.local_name} "
                    f"waited for {want}{reason} ({self._context()})")
            raise TransportClosedError(
                f"link closed while {self.local_name} waited for "
                f"{want}{reason} ({self._context()})")
        return item

    def _context(self) -> str:
        return (f"session {self.session_id!r}, "
                + link_context(self.left_name, self.right_name,
                               self.hub._last_frame,
                               local_name=self.local_name))


def derive_seeded_stream(seed: int | None, *parts) -> random.Random:
    """A deterministic ``random.Random`` for one named purpose.

    SHA-256 over ``seed | part | part | ...`` keeps the stream stable
    across processes (``PYTHONHASHSEED``-proof) and independent of
    creation order; ``None`` stays nondeterministic.  The derivation
    primitive behind ``repro.multiparty.mesh.derive_pair_rng`` (per-pair
    protocol coins) and :func:`derive_jitter_rng` (per-link timing
    noise) -- one implementation, distinct part-tagged streams.
    """
    if seed is None:
        return random.Random()
    material = "|".join(str(part) for part in (seed, *parts)).encode()
    return random.Random(
        int.from_bytes(hashlib.sha256(material).digest(), "big"))


def derive_jitter_rng(seed: int | None, left: str,
                      right: str) -> random.Random:
    """Deterministic per-link jitter stream (see
    :func:`derive_seeded_stream`; the ``"jitter"`` tag keeps it disjoint
    from every protocol coin stream)."""
    return derive_seeded_stream(seed, "jitter", left, right)


@dataclass(frozen=True)
class LinkProfile:
    """Per-link overrides for the simulated fabric (heterogeneous WANs).

    ``None`` fields inherit the :class:`TransportSpec` defaults, so a
    profile can override just the latency of one slow pair while the
    rest of the mesh keeps the spec-wide numbers.
    """

    latency_s: float | None = None
    bandwidth_bps: float | None = None
    jitter_s: float | None = None


_TRANSPORT_KINDS = ("in_process", "threaded", "simulated")


def canonical_pair(left: str, right: str) -> tuple[str, str]:
    return (left, right) if left <= right else (right, left)


@dataclass(frozen=True)
class TransportSpec:
    """Declarative transport choice, carried by ``SmcConfig``.

    Configs are frozen value objects shared across pairwise links, so
    they carry a *spec* rather than a transport instance; every link
    calls :meth:`create` for its own private fabric.  (The TCP fabric is
    *not* spec-creatable: a real socket needs a connected, handshaken
    link that only the :mod:`repro.runtime` session layer can provide.)

    Attributes:
        kind: ``"in_process"`` (default), ``"threaded"``, or
            ``"simulated"``.
        latency_s: one-way link latency for the simulated fabric.
        bandwidth_bps: link bandwidth in bits/second for the simulated
            fabric; ``None`` models infinite bandwidth (latency only).
        timeout_s: blocking-receive timeout for the threaded fabric.
        jitter_s: per-message uniform delay spread for the simulated
            fabric (0 = the deterministic fixed-latency model).
        jitter_seed: when set, each link draws its jitter from a
            deterministic per-link stream (stable across processes and
            link creation order); ``None`` = nondeterministic jitter.
        per_link: heterogeneous link parameters -- a mapping from an
            unordered name pair to a :class:`LinkProfile`; accepted as a
            dict at construction and normalized to a sorted tuple so the
            spec stays hashable.  Links without a profile use the
            spec-wide defaults.
    """

    kind: str = "in_process"
    latency_s: float = 0.005
    bandwidth_bps: float | None = None
    timeout_s: float = 5.0
    jitter_s: float = 0.0
    jitter_seed: int | None = None
    per_link: object = ()

    def __post_init__(self):
        if self.kind not in _TRANSPORT_KINDS:
            raise TransportError(
                f"unknown transport kind {self.kind!r}; "
                f"expected one of {_TRANSPORT_KINDS}")
        if self.jitter_s < 0:
            raise TransportError(
                f"jitter_s must be >= 0, got {self.jitter_s}")
        items = (self.per_link.items() if isinstance(self.per_link, dict)
                 else self.per_link)
        normalized = []
        for pair, profile in items:
            left, right = pair
            if left == right:
                raise TransportError(
                    f"per_link pair {pair!r} names one endpoint twice")
            if not isinstance(profile, LinkProfile):
                raise TransportError(
                    f"per_link value for {pair!r} must be a LinkProfile, "
                    f"got {type(profile).__name__}")
            normalized.append((canonical_pair(left, right), profile))
        normalized.sort(key=lambda item: item[0])
        keys = [pair for pair, _ in normalized]
        if len(set(keys)) != len(keys):
            raise TransportError(
                f"duplicate per_link pair in {keys}")
        object.__setattr__(self, "per_link", tuple(normalized))

    def link_profile(self, left_name: str,
                     right_name: str) -> LinkProfile | None:
        key = canonical_pair(left_name, right_name)
        for pair, profile in self.per_link:
            if pair == key:
                return profile
        return None

    def create(self, left_name: str, right_name: str) -> Transport:
        """Build a fresh fabric for one link."""
        if self.kind == "threaded":
            return ThreadedTransport(left_name, right_name,
                                     timeout_s=self.timeout_s)
        if self.kind == "simulated":
            profile = self.link_profile(left_name, right_name) \
                or LinkProfile()
            latency = (profile.latency_s if profile.latency_s is not None
                       else self.latency_s)
            bandwidth = (profile.bandwidth_bps
                         if profile.bandwidth_bps is not None
                         else self.bandwidth_bps)
            jitter = (profile.jitter_s if profile.jitter_s is not None
                      else self.jitter_s)
            return SimulatedNetworkTransport(
                left_name, right_name, latency_s=latency,
                bandwidth_bps=bandwidth, jitter_s=jitter,
                jitter_rng=derive_jitter_rng(self.jitter_seed, left_name,
                                             right_name))
        return InProcessTransport(left_name, right_name)
