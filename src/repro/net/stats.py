"""Communication accounting.

Tracks bytes and message counts per direction and per protocol-phase
label.  This is the measurement side of the paper's cost claims: the E2,
E3, E4, E9 and E10 benchmarks read these counters and fit them against
the closed-form predictions in ``repro.analysis.communication``.

Thread safety: one accumulator is shared by both endpoints of a channel,
and with a :class:`~repro.net.transport.ThreadedTransport` those
endpoints live on different threads -- so :meth:`record`,
:meth:`record_simulated_wait`, :meth:`merge`, and :meth:`snapshot` all
take an internal lock.  Single-threaded choreographies pay one
uncontended lock acquire per message, which is noise next to
serialization.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class CommunicationStats:
    """Mutable accumulator shared by both endpoints of a channel.

    ``rounds`` counts direction switches: consecutive messages from the
    same sender batch into one round (the latency-relevant cost measure
    for interactive protocols).

    ``simulated_seconds`` is the latency ledger: virtual wall-clock a
    :class:`~repro.net.transport.SimulatedNetworkTransport` charged to
    this link (the time an endpoint spent waiting for arrivals), broken
    down per waiting endpoint in ``simulated_waits``.  Real fabrics
    leave both at zero.
    """

    bytes_by_direction: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    messages_by_direction: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    bytes_by_label: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    messages_by_label: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    rounds: int = 0
    simulated_seconds: float = 0.0
    simulated_waits: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    _last_sender: str | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, sender: str, receiver: str, label: str,
               size_bytes: int) -> None:
        with self._lock:
            direction = f"{sender}->{receiver}"
            self.bytes_by_direction[direction] += size_bytes
            self.messages_by_direction[direction] += 1
            self.bytes_by_label[label] += size_bytes
            self.messages_by_label[label] += 1
            if sender != self._last_sender:
                self.rounds += 1
                self._last_sender = sender

    def record_simulated_wait(self, receiver: str, seconds: float) -> None:
        """Charge virtual network wait time to the latency ledger."""
        with self._lock:
            self.simulated_seconds += seconds
            self.simulated_waits[receiver] += seconds

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_direction.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_direction.values())

    @property
    def total_bits(self) -> int:
        """The unit the paper's formulas are stated in."""
        return 8 * self.total_bytes

    def bytes_for_phase(self, label_prefix: str) -> int:
        return sum(size for label, size in self.bytes_by_label.items()
                   if label.startswith(label_prefix))

    def messages_for_phase(self, label_prefix: str) -> int:
        return sum(count for label, count in self.messages_by_label.items()
                   if label.startswith(label_prefix))

    def merge(self, other: "CommunicationStats") -> None:
        """Fold another accumulator into this one (multi-channel runs).

        Rounds and simulated seconds add up: pairwise channels are
        independent links, so the merged figure is the conservative
        sequential sum (a concurrent scheduler reports its overlapped
        wall-clock separately -- see ``multiparty.scheduler``).
        """
        with other._lock:
            other_bytes_dir = dict(other.bytes_by_direction)
            other_msgs_dir = dict(other.messages_by_direction)
            other_bytes_label = dict(other.bytes_by_label)
            other_msgs_label = dict(other.messages_by_label)
            other_rounds = other.rounds
            other_sim = other.simulated_seconds
            other_waits = dict(other.simulated_waits)
        with self._lock:
            for key, value in other_bytes_dir.items():
                self.bytes_by_direction[key] += value
            for key, value in other_msgs_dir.items():
                self.messages_by_direction[key] += value
            for key, value in other_bytes_label.items():
                self.bytes_by_label[key] += value
            for key, value in other_msgs_label.items():
                self.messages_by_label[key] += value
            self.rounds += other_rounds
            self.simulated_seconds += other_sim
            for key, value in other_waits.items():
                self.simulated_waits[key] += value

    def snapshot(self) -> dict:
        """Plain-dict copy for reports and benchmark JSON output."""
        with self._lock:
            return {
                "total_bytes": sum(self.bytes_by_direction.values()),
                "total_messages": sum(self.messages_by_direction.values()),
                "rounds": self.rounds,
                "simulated_seconds": self.simulated_seconds,
                "bytes_by_direction": dict(self.bytes_by_direction),
                "messages_by_direction": dict(self.messages_by_direction),
                "bytes_by_label": dict(self.bytes_by_label),
            }


#: The scalar/mapping split of :meth:`CommunicationStats.snapshot` --
#: the single authoritative field list :func:`merge_snapshots` folds.
#: Extend these alongside ``snapshot()`` and cross-process merges stay
#: in lockstep automatically.
_SNAPSHOT_SCALARS = ("total_bytes", "total_messages", "rounds",
                     "simulated_seconds")
_SNAPSHOT_MAPPINGS = ("bytes_by_direction", "messages_by_direction",
                      "bytes_by_label")


def merge_snapshots(snapshots) -> dict:
    """Fold :meth:`CommunicationStats.snapshot` dicts into one.

    Semantically :meth:`CommunicationStats.merge` over independent links
    followed by :meth:`~CommunicationStats.snapshot` -- scalars add (the
    conservative sequential figure, as ``merge`` documents), mappings
    add per key.  Lives here, next to the snapshot field list, so the
    socket runtime's cross-process merge cannot drift from the
    in-process accounting when a field is added.
    """
    merged: dict = {name: 0 for name in _SNAPSHOT_SCALARS}
    merged["simulated_seconds"] = 0.0
    for name in _SNAPSHOT_MAPPINGS:
        merged[name] = {}
    for snapshot in snapshots:
        # Tolerate snapshots from before a field existed (an old report
        # replayed through a newer merge): a missing scalar counts as
        # zero, a missing mapping as empty, instead of a KeyError.
        for name in _SNAPSHOT_SCALARS:
            merged[name] += snapshot.get(name, 0)
        for name in _SNAPSHOT_MAPPINGS:
            for key, value in snapshot.get(name, {}).items():
                merged[name][key] = merged[name].get(key, 0) + value
    return merged
