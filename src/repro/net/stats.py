"""Communication accounting.

Tracks bytes and message counts per direction and per protocol-phase
label.  This is the measurement side of the paper's cost claims: the E2,
E3, E4, E9 and E10 benchmarks read these counters and fit them against
the closed-form predictions in ``repro.analysis.communication``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class CommunicationStats:
    """Mutable accumulator shared by both endpoints of a channel.

    ``rounds`` counts direction switches: consecutive messages from the
    same sender batch into one round (the latency-relevant cost measure
    for interactive protocols).
    """

    bytes_by_direction: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    messages_by_direction: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    bytes_by_label: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    messages_by_label: dict[str, int] = field(
        default_factory=lambda: defaultdict(int))
    rounds: int = 0
    _last_sender: str | None = field(default=None, repr=False)

    def record(self, sender: str, receiver: str, label: str,
               size_bytes: int) -> None:
        direction = f"{sender}->{receiver}"
        self.bytes_by_direction[direction] += size_bytes
        self.messages_by_direction[direction] += 1
        self.bytes_by_label[label] += size_bytes
        self.messages_by_label[label] += 1
        if sender != self._last_sender:
            self.rounds += 1
            self._last_sender = sender

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_direction.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_direction.values())

    @property
    def total_bits(self) -> int:
        """The unit the paper's formulas are stated in."""
        return 8 * self.total_bytes

    def bytes_for_phase(self, label_prefix: str) -> int:
        return sum(size for label, size in self.bytes_by_label.items()
                   if label.startswith(label_prefix))

    def messages_for_phase(self, label_prefix: str) -> int:
        return sum(count for label, count in self.messages_by_label.items()
                   if label.startswith(label_prefix))

    def merge(self, other: "CommunicationStats") -> None:
        """Fold another accumulator into this one (multi-channel runs).

        Rounds add up: pairwise channels are independent links, so a
        lower bound on the merged round count is the per-channel sum
        (channels could in principle overlap in time; we report the
        conservative sequential figure).
        """
        for key, value in other.bytes_by_direction.items():
            self.bytes_by_direction[key] += value
        for key, value in other.messages_by_direction.items():
            self.messages_by_direction[key] += value
        for key, value in other.bytes_by_label.items():
            self.bytes_by_label[key] += value
        for key, value in other.messages_by_label.items():
            self.messages_by_label[key] += value
        self.rounds += other.rounds

    def snapshot(self) -> dict:
        """Plain-dict copy for reports and benchmark JSON output."""
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "rounds": self.rounds,
            "bytes_by_direction": dict(self.bytes_by_direction),
            "messages_by_direction": dict(self.messages_by_direction),
            "bytes_by_label": dict(self.bytes_by_label),
        }
