"""Party abstraction: a named principal with private state and randomness.

Protocol implementations take :class:`Party` objects rather than raw
endpoints so that each party's private data, keys, and RNG are grouped in
one place and never accidentally cross the channel except through
explicit ``send`` calls.
"""

from __future__ import annotations

import random

from repro.net.channel import ChannelEndpoint


class Party:
    """A protocol participant.

    Attributes:
        name: party identifier ("alice" / "bob" in the paper).
        endpoint: this party's channel endpoint.
        rng: private randomness; all of the party's coin tosses
            (Definition 5's ``r1``/``r2``) come from here, which makes
            executions reproducible under a seed.
    """

    def __init__(self, endpoint: ChannelEndpoint,
                 rng: random.Random | None = None):
        self.endpoint = endpoint
        self.rng = rng if rng is not None else random.Random()

    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def peer_name(self) -> str:
        return self.endpoint.peer_name

    def send(self, label: str, value) -> None:
        self.endpoint.send(label, value)

    def receive(self, expected_label: str | None = None):
        return self.endpoint.receive(expected_label)

    def __repr__(self) -> str:
        return f"Party({self.name!r})"


def make_party_pair(channel, alice_seed: int | None = None,
                    bob_seed: int | None = None) -> tuple[Party, Party]:
    """Build the (Alice, Bob) pair over an existing channel.

    Seeds are optional; passing them makes the whole protocol execution
    deterministic, which the correctness tests and simulators rely on.
    """
    alice = Party(channel.left, random.Random(alice_seed))
    bob = Party(channel.right, random.Random(bob_seed))
    return alice, bob
