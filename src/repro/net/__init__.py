"""Two-party messaging substrate.

The paper's complexity claims (Sections 4.2.2, 4.3.2, 5.1) are about
communication bits, and its privacy proofs (Definition 5) are about the
*view* -- the sequence of messages a party receives.  This package
provides both: a duplex channel whose endpoints serialize every message,
count the exact bytes, and append to a transcript that the privacy
simulators replay.

Delivery underneath the channel is pluggable (``repro.net.transport``):
in-process deques for single-threaded choreographies, blocking
thread-safe queues so party programs can run on separate threads, and a
simulated-network fabric that charges virtual round-trip latency to the
stats ledger.
"""

from repro.net.serialization import serialize_message, deserialize_message
from repro.net.channel import Channel, ChannelEndpoint, ChannelClosedError
from repro.net.transcript import Transcript, TranscriptEntry
from repro.net.stats import CommunicationStats
from repro.net.party import Party
from repro.net.transport import (
    InProcessTransport,
    ProtocolDesyncError,
    SimulatedNetworkTransport,
    ThreadedTransport,
    Transport,
    TransportClosedError,
    TransportError,
    TransportSpec,
    TransportTimeoutError,
)

__all__ = [
    "serialize_message",
    "deserialize_message",
    "Channel",
    "ChannelEndpoint",
    "ChannelClosedError",
    "Transcript",
    "TranscriptEntry",
    "CommunicationStats",
    "Party",
    "Transport",
    "TransportSpec",
    "TransportError",
    "TransportClosedError",
    "TransportTimeoutError",
    "ProtocolDesyncError",
    "InProcessTransport",
    "ThreadedTransport",
    "SimulatedNetworkTransport",
]
