"""Length-prefixed frames over a byte stream (the TCP wire format).

Everything the socket runtime puts on a TCP connection travels as one
*frame*::

    4-byte big-endian frame length | 1 kind byte | payload

The length counts the kind byte plus the payload, so an empty payload
frames as ``00 00 00 01 <kind>``.  Four kinds exist:

- ``H`` (hello) -- the versioned handshake record exchanged before any
  protocol traffic (see :mod:`repro.runtime.handshake`).
- ``M`` (message) -- one protocol message: a label (what the channel
  layer calls the protocol-phase label) followed by the *exact*
  :mod:`repro.net.serialization` wire bytes the in-process fabrics
  carry.  The framing adds routing, never re-encodes the payload, so a
  TCP run and an in-process run serialize every value identically.
- ``C`` (control) -- runtime session-control records (begin-query /
  end-of-pass), encoded with :func:`serialize_message`.  Control frames
  belong to the orchestration layer and are **not** protocol messages:
  they never enter a channel's stats or transcript.
- ``X`` (goodbye) -- clean close announcement with a reason string, so
  the peer can distinguish an orderly teardown from a crash.

Two *multiplexed* kinds extend the wire for the daemon runtime, where
one persistent connection per party-pair carries interleaved frames
from many concurrent clustering sessions:

- ``m`` (mux message) -- an ``M`` payload prefixed with a session tag::

      2-byte tag length | session id (UTF-8) | message payload

  The inner payload is byte-identical to what a dedicated ``M`` frame
  would carry for the same protocol message, so demultiplexing strips
  the tag and hands the single-session machinery the exact same bytes.
- ``c`` (mux control) -- a control record with the same session-tag
  prefix; the inner payload is :func:`serialize_message` bytes exactly
  as in a ``C`` frame.

The tag routes; it never re-encodes.  That is the whole equivalence
argument at the framing layer: a multiplexed run and a single-session
run put identical protocol bytes on the wire, differing only in the
envelope that says which session each frame belongs to.

:class:`FramedConnection` wraps a connected socket with these frames,
a receive timeout, a maximum frame size (malformed length prefixes must
not trigger gigabyte allocations), and close-versus-timeout error
mapping.  It is transport-agnostic plumbing: the delivery semantics
(what an empty inbox means, who may read) live in
:class:`repro.net.transport.TcpTransport`.

Link authentication
-------------------

When a :class:`FrameAuthenticator` is attached, every frame's payload
carries a trailing 32-byte HMAC-SHA256 tag computed from an
out-of-band pre-shared key over ``context | kind | payload``.  The
``context`` (the session id for party links, the mesh-spec digest for
daemon links) is known a priori on both ends -- there is no key
bootstrap inside the channel -- and makes a frame replayed from a
*different* session fail verification even under the same PSK.  Tags
are verified with :func:`hmac.compare_digest` before a payload reaches
any parser; failure raises :class:`FrameAuthenticationError`, which the
runtime classifies as **fatal** (an authentication failure is never
retried against the recovery budget).  The MAC authenticates and
integrity-protects; it does not encrypt -- see DESIGN.md's threat
model for what that buys and what it does not.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import socket
import struct
import threading

FRAME_HELLO = b"H"
FRAME_MESSAGE = b"M"
FRAME_CONTROL = b"C"
FRAME_GOODBYE = b"X"
FRAME_MUX_MESSAGE = b"m"
FRAME_MUX_CONTROL = b"c"

_FRAME_KINDS = (FRAME_HELLO, FRAME_MESSAGE, FRAME_CONTROL, FRAME_GOODBYE,
                FRAME_MUX_MESSAGE, FRAME_MUX_CONTROL)

#: Frame kinds that carry a session tag (see :func:`encode_mux_payload`).
MUX_KINDS = (FRAME_MUX_MESSAGE, FRAME_MUX_CONTROL)

# Generous ceiling: the largest legitimate frames are ciphertext batches
# (a few MB at realistic key sizes and batch widths).  A corrupt length
# prefix above this fails loudly instead of allocating.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FramingError(RuntimeError):
    """Malformed frame: bad kind, oversized length, or a short read."""


class ConnectionClosedError(FramingError):
    """The stream ended (EOF or reset) where a frame was expected."""


class ReceiveTimeout(FramingError):
    """No frame arrived within the configured timeout."""


class FrameAuthenticationError(FramingError):
    """A frame's MAC failed verification (tamper, truncation, replay
    from another session, or a pre-shared-key mismatch).

    Subclasses :class:`FramingError` so generic plumbing treats it as a
    wire-level failure, but the runtime's failure classifier matches it
    *first* and maps it to a fatal, never-retried cause: retrying an
    authentication failure cannot succeed and would burn the recovery
    budget against an active attacker or a misconfigured fleet.
    """


#: Length of the per-frame HMAC-SHA256 tag appended to sealed payloads.
MAC_BYTES = 32


class FrameAuthenticator:
    """Per-frame HMAC sealing/verification for one authenticated link.

    Args:
        psk: the out-of-band pre-shared key (text or bytes).  Never
            serialized anywhere; both ends must receive it through a
            channel outside the mesh (environment, CLI flag).
        context: public per-link binding mixed into every tag -- the
            session id for party links, the mesh-spec digest for daemon
            pair/client links.  Both ends know it before connecting, so
            authentication needs no in-band negotiation, and a frame
            captured on one session fails verification when replayed
            into another even under the same PSK.
    """

    def __init__(self, psk: str | bytes, context: str):
        if not psk:
            raise FramingError("link authentication needs a non-empty PSK")
        raw = psk.encode("utf-8") if isinstance(psk, str) else bytes(psk)
        # Hash the PSK into a fixed-width HMAC key so arbitrary-length
        # passphrases behave identically and the raw secret is not kept
        # on the instance.
        self._key = hashlib.sha256(b"repro-link-psk|" + raw).digest()
        self.context = context
        self._context_bytes = context.encode("utf-8")

    def tag(self, kind: bytes, payload: bytes) -> bytes:
        """The 32-byte MAC over ``context | kind | payload``."""
        return hmac.new(self._key,
                        self._context_bytes + b"|" + kind + payload,
                        hashlib.sha256).digest()

    def seal(self, kind: bytes, payload: bytes) -> bytes:
        """Payload with its tag appended (what goes on the wire)."""
        return payload + self.tag(kind, payload)

    def open(self, kind: bytes, sealed: bytes, *,
             name: str = "link") -> bytes:
        """Verify and strip the trailing tag; raise on any mismatch."""
        if len(sealed) < MAC_BYTES:
            raise FrameAuthenticationError(
                f"{name}: authenticated {kind!r} frame of {len(sealed)} "
                f"bytes is shorter than the {MAC_BYTES}-byte MAC")
        payload, received = sealed[:-MAC_BYTES], sealed[-MAC_BYTES:]
        if not hmac.compare_digest(received, self.tag(kind, payload)):
            raise FrameAuthenticationError(
                f"{name}: MAC verification failed on a {kind!r} frame "
                f"(tampered frame, cross-session replay, or pre-shared "
                f"key mismatch)")
        return payload


def encode_frame(kind: bytes, payload: bytes = b"") -> bytes:
    """The exact bytes :meth:`FramedConnection.write_frame` emits.

    Exposed so the fault injector (``repro.runtime.faults``) can write a
    deliberately truncated prefix of a *well-formed* frame -- the
    receiver must then see the stream end mid-frame, which is the
    connection-loss shape the framing layer distinguishes from a
    timeout.
    """
    if kind not in _FRAME_KINDS:
        raise FramingError(f"unknown frame kind {kind!r}")
    return _LENGTH.pack(1 + len(payload)) + kind + payload


def encode_message_payload(label: str, wire: bytes) -> bytes:
    """Payload of an ``M`` frame: 2-byte label length, label, wire bytes."""
    encoded = label.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise FramingError(f"label too long ({len(encoded)} bytes)")
    return struct.pack(">H", len(encoded)) + encoded + wire


def decode_message_payload(payload: bytes) -> tuple[str, bytes]:
    """Inverse of :func:`encode_message_payload`."""
    if len(payload) < 2:
        raise FramingError("message frame too short for a label length")
    (label_length,) = struct.unpack_from(">H", payload, 0)
    if len(payload) < 2 + label_length:
        raise FramingError(
            f"message frame truncated: label needs {label_length} bytes, "
            f"have {len(payload) - 2}")
    try:
        label = payload[2:2 + label_length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FramingError(f"frame label is not valid UTF-8: {exc}") from exc
    return label, payload[2 + label_length:]


def encode_mux_payload(session_id: str, inner: bytes) -> bytes:
    """Payload of an ``m``/``c`` frame: session tag + untouched inner bytes.

    ``inner`` is exactly what the corresponding single-session frame
    (``M`` or ``C``) would carry -- the tag is routing only, so the
    protocol bytes under multiplexing are byte-identical to a dedicated
    per-session connection.
    """
    tag = session_id.encode("utf-8")
    if not tag:
        raise FramingError("mux frames need a non-empty session id")
    if len(tag) > 0xFFFF:
        raise FramingError(f"session id too long ({len(tag)} bytes)")
    return struct.pack(">H", len(tag)) + tag + inner


def decode_mux_payload(payload: bytes) -> tuple[str, bytes]:
    """Inverse of :func:`encode_mux_payload`."""
    if len(payload) < 2:
        raise FramingError("mux frame too short for a session-tag length")
    (tag_length,) = struct.unpack_from(">H", payload, 0)
    if tag_length == 0:
        raise FramingError("mux frame has an empty session tag")
    if len(payload) < 2 + tag_length:
        raise FramingError(
            f"mux frame truncated: session tag needs {tag_length} bytes, "
            f"have {len(payload) - 2}")
    try:
        session_id = payload[2:2 + tag_length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FramingError(
            f"mux session tag is not valid UTF-8: {exc}") from exc
    return session_id, payload[2 + tag_length:]


async def read_frame_async(reader: asyncio.StreamReader, *,
                           max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                           name: str = "link",
                           authenticator: FrameAuthenticator | None = None,
                           ) -> tuple[bytes, bytes]:
    """One ``(kind, payload)`` frame from an asyncio stream.

    The event-loop twin of :meth:`FramedConnection.read_frame`, with the
    same length/kind validation; EOF maps to
    :class:`ConnectionClosedError` so loop-side readers classify peer
    death exactly like the blocking runtime does.  Timeouts are the
    caller's concern (``asyncio.wait_for`` or none at all -- a daemon's
    demux reader legitimately idles between sessions).  When an
    ``authenticator`` is given, the trailing MAC is verified and
    stripped before the payload is returned -- and in particular before
    any mux demultiplexing parses it.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        if length < 1:
            raise FramingError(f"{name}: frame length {length} < 1")
        if length > max_frame_bytes:
            raise FramingError(
                f"{name}: frame length {length} exceeds the "
                f"{max_frame_bytes}-byte ceiling")
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ConnectionClosedError(
                f"{name}: stream ended mid-frame (peer died with a "
                f"frame in flight)") from exc
        raise ConnectionClosedError(
            f"{name}: peer closed the connection") from exc
    except (ConnectionResetError, OSError) as exc:
        raise ConnectionClosedError(
            f"{name}: connection lost while reading a frame "
            f"({exc})") from exc
    kind, payload = body[:1], body[1:]
    if kind not in _FRAME_KINDS:
        raise FramingError(f"{name}: unknown frame kind {kind!r}")
    if authenticator is not None:
        payload = authenticator.open(kind, payload, name=name)
    return kind, payload


class FramedConnection:
    """Typed length-prefixed frames over one connected socket.

    Writes are locked (the runtime may interleave control-plane writes
    with protocol writes from a pass-executor thread); reads are
    single-consumer by design -- exactly one logical reader per link at
    any time -- and locked anyway so a misuse corrupts nothing.
    """

    def __init__(self, sock: socket.socket, *,
                 timeout_s: float = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 name: str = "link",
                 authenticator: FrameAuthenticator | None = None):
        if timeout_s <= 0:
            raise FramingError(f"timeout_s must be > 0, got {timeout_s}")
        if max_frame_bytes < 1:
            raise FramingError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}")
        self._sock = sock
        self.timeout_s = timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.name = name
        #: Optional per-frame MAC layer; sealing happens on write,
        #: verification on read, both below the kind/payload interface
        #: so callers never see tags.
        self.authenticator = authenticator
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        # Partial-read buffer: bytes consumed from the socket stay here
        # until a whole frame is available, so a ReceiveTimeout never
        # loses data and read_frame is safely retryable mid-frame.
        self._pending = b""
        self._closed = False
        sock.settimeout(timeout_s)

    # -- writing -----------------------------------------------------------

    def write_frame(self, kind: bytes, payload: bytes = b"") -> None:
        if kind not in _FRAME_KINDS:
            raise FramingError(f"unknown frame kind {kind!r}")
        if self.authenticator is not None:
            payload = self.authenticator.seal(kind, payload)
        if 1 + len(payload) > self.max_frame_bytes:
            # Mirror of the read-side ceiling: fail at the producing call
            # site with the real cause, not at the receiver as a
            # malformed-frame desync.
            raise FramingError(
                f"{self.name}: frame of {1 + len(payload)} bytes exceeds "
                f"the {self.max_frame_bytes}-byte ceiling; raise "
                f"max_frame_bytes on both ends for batches this large")
        frame = encode_frame(kind, payload)
        with self._send_lock:
            if self._closed:
                raise ConnectionClosedError(
                    f"{self.name}: write on closed connection")
            try:
                self._sock.sendall(frame)
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                raise ConnectionClosedError(
                    f"{self.name}: peer gone while writing "
                    f"{kind!r} frame ({exc})") from exc

    def write_message(self, label: str, wire: bytes) -> None:
        self.write_frame(FRAME_MESSAGE, encode_message_payload(label, wire))

    def write_goodbye(self, reason: str = "done") -> None:
        self.write_frame(FRAME_GOODBYE, reason.encode("utf-8"))

    # -- reading -----------------------------------------------------------

    def _fill(self, count: int, context: str) -> None:
        """Grow the pending buffer to ``count`` bytes without consuming.

        A timeout raises :class:`ReceiveTimeout` but *keeps* whatever
        arrived -- the next call resumes where this one stopped, so a
        frame that straddles a timeout window (slow peer, split TCP
        segments) is never corrupted by a retry.  EOF with bytes already
        buffered means the peer died with a frame in flight -- a
        connection loss, not a protocol bug.
        """
        while len(self._pending) < count:
            try:
                chunk = self._sock.recv(count - len(self._pending))
            except socket.timeout:
                raise ReceiveTimeout(
                    f"{self.name}: no data for {self.timeout_s}s while "
                    f"reading {context}") from None
            except (ConnectionResetError, OSError) as exc:
                raise ConnectionClosedError(
                    f"{self.name}: connection lost while reading "
                    f"{context} ({exc})") from exc
            if not chunk:
                if self._pending:
                    raise ConnectionClosedError(
                        f"{self.name}: stream ended mid-frame while "
                        f"reading {context} (peer died with a frame in "
                        f"flight)")
                raise ConnectionClosedError(
                    f"{self.name}: peer closed the connection")
            self._pending += chunk

    def read_frame(self) -> tuple[bytes, bytes]:
        """Read one ``(kind, payload)`` frame, blocking up to the timeout.

        Retryable after :class:`ReceiveTimeout`: partially received
        bytes stay buffered and the next call resumes the same frame.
        """
        with self._recv_lock:
            self._fill(_LENGTH.size, "a frame length")
            (length,) = _LENGTH.unpack_from(self._pending)
            if length < 1:
                raise FramingError(
                    f"{self.name}: frame length {length} < 1")
            if length > self.max_frame_bytes:
                raise FramingError(
                    f"{self.name}: frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte ceiling")
            self._fill(_LENGTH.size + length, "a frame body")
            body = self._pending[_LENGTH.size:_LENGTH.size + length]
            self._pending = self._pending[_LENGTH.size + length:]
            kind, payload = body[:1], body[1:]
            if kind not in _FRAME_KINDS:
                raise FramingError(
                    f"{self.name}: unknown frame kind {kind!r}")
            if self.authenticator is not None:
                payload = self.authenticator.open(kind, payload,
                                                  name=self.name)
            return kind, payload

    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed
