"""Duplex channel between two semi-honest parties, over a Transport.

The protocols in this library are written in "choreography" style: a
single thread alternates between the two parties' local steps, and every
cross-party value moves through a :class:`Channel`.  Sending serializes
the value (charging exact wire bytes to the shared
:class:`CommunicationStats`) and appends to the :class:`Transcript`;
receiving deserializes from the wire bytes, so a value that cannot
round-trip the wire format can never silently leak through the
accounting.

Delivery itself is delegated to a pluggable
:class:`~repro.net.transport.Transport`: the default
:class:`~repro.net.transport.InProcessTransport` reproduces the seed-era
FIFO-deque semantics exactly (empty inbox = :class:`ProtocolDesyncError`),
:class:`~repro.net.transport.ThreadedTransport` lets the two party
programs run on separate threads, and
:class:`~repro.net.transport.SimulatedNetworkTransport` charges virtual
round-trip latency to the stats ledger.  The channel's accounting is
identical across fabrics -- property-tested in ``tests/net``.
"""

from __future__ import annotations

from repro.net.serialization import deserialize_message, serialize_message
from repro.net.stats import CommunicationStats
from repro.net.transcript import Transcript
from repro.net.transport import (  # noqa: F401  (re-exported: seed-era API)
    InProcessTransport,
    ProtocolDesyncError,
    Transport,
    TransportTimeoutError,
)


class ChannelClosedError(RuntimeError):
    """Raised when sending or receiving on a closed channel."""


class Channel:
    """A duplex link between two named parties."""

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 transcript: Transcript | None = None,
                 stats: CommunicationStats | None = None,
                 transport: Transport | None = None):
        if left_name == right_name:
            raise ValueError("parties must have distinct names")
        self.transcript = transcript if transcript is not None else Transcript()
        self.stats = stats if stats is not None else CommunicationStats()
        if transport is None:
            transport = InProcessTransport(left_name, right_name)
        self.transport = transport
        self.transport.attach_stats(self.stats)
        self._closed = False
        self.left = ChannelEndpoint(self, left_name, right_name)
        self.right = ChannelEndpoint(self, right_name, left_name)

    @property
    def endpoints(self) -> tuple["ChannelEndpoint", "ChannelEndpoint"]:
        return self.left, self.right

    @property
    def simulated_seconds(self) -> float:
        """Virtual link time consumed (0.0 unless the fabric simulates)."""
        return self.transport.simulated_seconds

    def close(self, reason: str | None = None) -> None:
        """Close the link; ``reason`` reaches any peer parked in a
        blocking receive (see :meth:`Transport.close`) so an orchestrated
        party that dies mid-protocol leaves a diagnosable error, not a
        hang.  The channel is marked closed *after* the transport is
        poisoned: a racing party program either completes its call or
        fails fast with the transport's diagnosis -- never with a bare
        "channel is closed" that hides which peer died."""
        self.transport.close(reason)
        self._closed = True

    def _send(self, sender: str, receiver: str, label: str, value) -> None:
        if self._closed:
            raise ChannelClosedError("channel is closed")
        wire = serialize_message(value)
        self.stats.record(sender, receiver, label, len(wire))
        self.transcript.record(sender, receiver, label,
                               deserialize_message(wire), len(wire))
        self.transport.deliver(sender, receiver, label, wire)

    def _receive(self, receiver: str, expected_label: str | None):
        if self._closed:
            raise ChannelClosedError("channel is closed")
        label, wire = self.transport.collect(receiver, expected_label)
        if expected_label is not None and label != expected_label:
            raise ProtocolDesyncError(
                f"{receiver} expected message {expected_label!r} "
                f"but got {label!r}"
            )
        return deserialize_message(wire)


class ChannelEndpoint:
    """One party's handle on a channel: ``send`` to the peer, ``receive``."""

    def __init__(self, channel: Channel, name: str, peer_name: str):
        self._channel = channel
        self.name = name
        self.peer_name = peer_name

    def send(self, label: str, value) -> None:
        """Send ``value`` to the peer, tagged with a protocol-phase label."""
        self._channel._send(self.name, self.peer_name, label, value)

    def receive(self, expected_label: str | None = None):
        """Pop the next inbound message; verify its label when given."""
        return self._channel._receive(self.name, expected_label)

    @property
    def stats(self) -> CommunicationStats:
        return self._channel.stats

    @property
    def transcript(self) -> Transcript:
        return self._channel.transcript

    def __repr__(self) -> str:
        return f"ChannelEndpoint({self.name!r} <-> {self.peer_name!r})"
