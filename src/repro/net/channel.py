"""In-process duplex channel between two semi-honest parties.

The protocols in this library are written in "choreography" style: a
single thread alternates between the two parties' local steps, and every
cross-party value moves through a :class:`Channel`.  Each endpoint has a
FIFO inbox; sending serializes the value (charging exact wire bytes to
the shared :class:`CommunicationStats`) and appends to the
:class:`Transcript`.  Receiving deserializes from the wire bytes, so a
value that cannot round-trip the wire format can never silently leak
through the accounting.
"""

from __future__ import annotations

from collections import deque

from repro.net.serialization import deserialize_message, serialize_message
from repro.net.stats import CommunicationStats
from repro.net.transcript import Transcript


class ChannelClosedError(RuntimeError):
    """Raised when sending or receiving on a closed channel."""


class ProtocolDesyncError(RuntimeError):
    """Raised when a receive finds an empty inbox or a label mismatch.

    In a single-threaded choreography an empty inbox means the two party
    programs disagree about the message sequence -- always a bug, never a
    timing issue, so it fails loudly.
    """


class Channel:
    """A duplex link between two named parties."""

    def __init__(self, left_name: str = "alice", right_name: str = "bob",
                 transcript: Transcript | None = None,
                 stats: CommunicationStats | None = None):
        if left_name == right_name:
            raise ValueError("parties must have distinct names")
        self.transcript = transcript if transcript is not None else Transcript()
        self.stats = stats if stats is not None else CommunicationStats()
        self._closed = False
        self._inboxes: dict[str, deque] = {left_name: deque(),
                                           right_name: deque()}
        self.left = ChannelEndpoint(self, left_name, right_name)
        self.right = ChannelEndpoint(self, right_name, left_name)

    @property
    def endpoints(self) -> tuple["ChannelEndpoint", "ChannelEndpoint"]:
        return self.left, self.right

    def close(self) -> None:
        self._closed = True

    def _send(self, sender: str, receiver: str, label: str, value) -> None:
        if self._closed:
            raise ChannelClosedError("channel is closed")
        wire = serialize_message(value)
        self.stats.record(sender, receiver, label, len(wire))
        self.transcript.record(sender, receiver, label,
                               deserialize_message(wire), len(wire))
        self._inboxes[receiver].append((label, wire))

    def _receive(self, receiver: str, expected_label: str | None):
        if self._closed:
            raise ChannelClosedError("channel is closed")
        inbox = self._inboxes[receiver]
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but the inbox is empty"
            )
        label, wire = inbox.popleft()
        if expected_label is not None and label != expected_label:
            raise ProtocolDesyncError(
                f"{receiver} expected message {expected_label!r} "
                f"but got {label!r}"
            )
        return deserialize_message(wire)


class ChannelEndpoint:
    """One party's handle on a channel: ``send`` to the peer, ``receive``."""

    def __init__(self, channel: Channel, name: str, peer_name: str):
        self._channel = channel
        self.name = name
        self.peer_name = peer_name

    def send(self, label: str, value) -> None:
        """Send ``value`` to the peer, tagged with a protocol-phase label."""
        self._channel._send(self.name, self.peer_name, label, value)

    def receive(self, expected_label: str | None = None):
        """Pop the next inbound message; verify its label when given."""
        return self._channel._receive(self.name, expected_label)

    @property
    def stats(self) -> CommunicationStats:
        return self._channel.stats

    @property
    def transcript(self) -> Transcript:
        return self._channel.transcript

    def __repr__(self) -> str:
        return f"ChannelEndpoint({self.name!r} <-> {self.peer_name!r})"
