"""Plain-text table rendering for the benchmark harness.

Benchmarks print paper-style tables (experiment id, workload, measured
vs predicted) through :func:`render_table` so EXPERIMENTS.md rows can be
pasted straight from the bench output.
"""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list],
                 title: str | None = None) -> str:
    """Monospace table with a header rule; cells are str()-ed."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def render_row(values) -> str:
        return " | ".join(value.ljust(width)
                          for value, width in zip(values, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_bytes(count: int) -> str:
    """Human-readable byte count (KiB/MiB) for table cells."""
    if count < 1024:
        return f"{count} B"
    if count < 1024 * 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{count / (1024 * 1024):.2f} MiB"


def format_ratio(value: float) -> str:
    """Ratio cell with sensible precision for both tiny and large values."""
    if value == 0:
        return "0"
    if value < 0.001:
        return f"{value:.2e}"
    return f"{value:.3f}"
