"""Textual renderings of the paper's partition figures (Figures 2-4).

Figures 2, 3 and 4 of the paper are ownership diagrams of the virtual
database; these functions regenerate them (as ASCII ownership grids)
from actual partition objects, so the diagrams in the docs always match
the data structures.  Each cell shows which party holds that attribute
of that record: ``A`` (Alice), ``B`` (Bob).
"""

from __future__ import annotations

from repro.data.partitioning import (
    ALICE,
    ArbitraryPartition,
    HorizontalPartition,
    VerticalPartition,
)


def render_horizontal_figure(partition: HorizontalPartition) -> str:
    """Figure 2: Alice's record rows above Bob's."""
    dimensions = partition.dimensions
    lines = [_header(dimensions)]
    for index in range(len(partition.alice_points)):
        lines.append(_row(f"d{index + 1}", ["A"] * dimensions))
    for index in range(len(partition.bob_points)):
        record = len(partition.alice_points) + index + 1
        lines.append(_row(f"d{record}", ["B"] * dimensions))
    return "\n".join(lines)


def render_vertical_figure(partition: VerticalPartition) -> str:
    """Figure 3: Alice's attribute columns beside Bob's."""
    owners = [None] * partition.dimensions
    for column in partition.alice_columns:
        owners[column] = "A"
    for column in partition.bob_columns:
        owners[column] = "B"
    lines = [_header(partition.dimensions)]
    for record in range(partition.size):
        lines.append(_row(f"d{record + 1}", owners))
    return "\n".join(lines)


def render_arbitrary_figure(partition: ArbitraryPartition) -> str:
    """Figure 4: per-record, per-attribute ownership."""
    lines = [_header(partition.dimensions)]
    for record in range(partition.size):
        cells = ["A" if partition.owner_of(record, attribute) == ALICE
                 else "B"
                 for attribute in range(partition.dimensions)]
        lines.append(_row(f"d{record + 1}", cells))
    return "\n".join(lines)


def ownership_summary(partition: ArbitraryPartition) -> dict[str, int]:
    """Cell counts per owner -- quick sanity summary for reports."""
    counts = {"alice": 0, "bob": 0}
    for record in range(partition.size):
        for attribute in range(partition.dimensions):
            counts[partition.owner_of(record, attribute)] += 1
    return counts


def _header(dimensions: int) -> str:
    cells = [f"attr{k + 1}" for k in range(dimensions)]
    return _row("", cells)


def _row(label: str, cells) -> str:
    rendered = " ".join(str(cell).center(5) for cell in cells)
    return f"{label:>5} | {rendered}"
