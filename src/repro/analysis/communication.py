"""Communication complexity models (Sections 4.2.2, 4.3.2, 5.1).

The paper states per-protocol bit costs:

- Horizontal (Sec 4.2.2):  ``O(c1*m*l*(n-l) + c2*n0*l*(n-l))``
- Vertical   (Sec 4.3.2):  ``O(c2*n0*n^2)``
- Enhanced   (Sec 5.1):    ``O(c1*m*l*(n-l) + c2*n0*l*(n-l))`` (same
  order as the base horizontal protocol)

where ``c1`` is the bits per attribute value transfer, ``c2`` the bits
per YMPP number, ``n0`` the YMPP domain, ``l`` the records one party
holds, ``m`` the attribute count.  These functions evaluate the formulas
and provide least-squares helpers for fitting measured channel bytes
against the predicted work terms (experiments E2-E4, E9, E10).
"""

from __future__ import annotations

from dataclasses import dataclass


def horizontal_work_term(n: int, l: int, m: int) -> int:
    """The driver of both horizontal cost terms: ``l*(n-l)`` pairings,
    scaled by attribute count for the ciphertext term."""
    return l * (n - l) * m


def horizontal_pair_term(n: int, l: int) -> int:
    """The comparison term's driver: one comparison per cross pair,
    counted once per direction (both parties run a pass)."""
    return l * (n - l)


def horizontal_predicted_bits(n: int, l: int, m: int, c1: int, c2: int,
                              n0: int) -> int:
    """Section 4.2.2 formula, literally."""
    return c1 * m * l * (n - l) + c2 * n0 * l * (n - l)


def vertical_work_term(n: int) -> int:
    """Vertical cost driver: one comparison per ordered record pair."""
    return n * (n - 1)


def vertical_predicted_bits(n: int, c2: int, n0: int) -> int:
    """Section 4.3.2 formula, literally (``O(c2*n0*n^2)``)."""
    return c2 * n0 * n * n


def enhanced_predicted_bits(n: int, l: int, m: int, c1: int, c2: int,
                            n0: int) -> int:
    """Section 5.1 formula -- same order as the base horizontal cost."""
    return c1 * m * l * (n - l) + c2 * n0 * l * (n - l)


def ympp_predicted_bits(n0: int, c2: int) -> int:
    """Per-execution YMPP transfer: ``n0 + 2`` numbers of ``c2`` bits
    (the shifted ciphertext out, the prime and sequence back)."""
    return c2 * (n0 + 2)


@dataclass(frozen=True)
class OriginFit:
    """Least-squares fit ``y ~ a*x`` with goodness of fit."""

    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x


def fit_through_origin(xs: list[float], ys: list[float]) -> OriginFit:
    """Fit ``y = a*x`` by least squares; R^2 against the through-origin
    model.

    The complexity claims are proportionality statements, so the fit is
    constrained through the origin: a high R^2 means the measured bytes
    scale as the predicted work term.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two observations to fit")
    sum_xy = sum(x * y for x, y in zip(xs, ys))
    sum_xx = sum(x * x for x in xs)
    if sum_xx == 0:
        raise ValueError("all work terms are zero; nothing to fit")
    coefficient = sum_xy / sum_xx
    mean_y = sum(ys) / len(ys)
    total = sum((y - mean_y) ** 2 for y in ys)
    residual = sum((y - coefficient * x) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return OriginFit(coefficient=coefficient, r_squared=r_squared)


def bytes_per_unit(measured_bytes: list[int],
                   work_terms: list[int]) -> OriginFit:
    """Convenience wrapper naming the common fit direction."""
    return fit_through_origin([float(w) for w in work_terms],
                              [float(b) for b in measured_bytes])
