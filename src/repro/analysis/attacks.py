"""The Figure 1 intersection attack, quantified.

Section 1 of the paper motivates its privacy requirements with this
scenario: Bob holds records ``B1, B2, B3`` and learns -- under a
Kumar-style protocol [14] that leaks *linkable* neighbourhood hits --
that one specific record ``A`` of Alice's lies within Eps of each of
them.  ``A`` must then sit in the intersection of the three disks, which
"could happen ... is so small that Bob could determine the location".

Under the paper's protocols Bob only ever learns *counts* over freshly
permuted queries, so he cannot link hits across his own points: any disk
might be satisfied by a different Alice record, and his posterior for a
single record is (at best) the *union* of the disks.

This module measures both posteriors by Monte Carlo:

- :func:`disk_intersection_area` -- the Kumar-style posterior.
- :func:`disk_union_area` -- the count-only (our protocols') posterior.
- :func:`intersection_attack_report` -- the E1 experiment row: both
  areas, the prior, and the localization ratios.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


class AttackError(ValueError):
    """Raised for degenerate geometry."""


@dataclass(frozen=True)
class Domain2D:
    """Axis-aligned prior region the adversary starts from."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    @property
    def area(self) -> float:
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)

    def sample(self, rng: random.Random) -> tuple[float, float]:
        return (rng.uniform(self.x_min, self.x_max),
                rng.uniform(self.y_min, self.y_max))


def _estimate_area(centers, radius: float, domain: Domain2D,
                   rng: random.Random, samples: int, *,
                   require_all: bool) -> float:
    if radius <= 0:
        raise AttackError(f"radius must be positive, got {radius}")
    if not centers:
        raise AttackError("need at least one disk center")
    if samples < 1:
        raise AttackError(f"samples must be >= 1, got {samples}")
    radius_squared = radius * radius
    hits = 0
    for _ in range(samples):
        x, y = domain.sample(rng)
        inside = (
            ((x - cx) ** 2 + (y - cy) ** 2) <= radius_squared
            for cx, cy in centers
        )
        if all(inside) if require_all else any(inside):
            hits += 1
    return domain.area * hits / samples


def disk_intersection_area(centers, radius: float, domain: Domain2D,
                           rng: random.Random,
                           samples: int = 20000) -> float:
    """Monte Carlo area of the intersection of Eps-disks (Kumar posterior)."""
    return _estimate_area(centers, radius, domain, rng, samples,
                          require_all=True)


def disk_union_area(centers, radius: float, domain: Domain2D,
                    rng: random.Random, samples: int = 20000) -> float:
    """Monte Carlo area of the union of Eps-disks (count-only posterior)."""
    return _estimate_area(centers, radius, domain, rng, samples,
                          require_all=False)


@dataclass(frozen=True)
class AttackReport:
    """One E1 experiment row."""

    observer_points: int
    eps: float
    prior_area: float
    kumar_posterior_area: float
    permuted_posterior_area: float

    @property
    def kumar_localization(self) -> float:
        """Fraction of the prior the Kumar-style adversary narrows A to."""
        return self.kumar_posterior_area / self.prior_area

    @property
    def permuted_localization(self) -> float:
        """Same fraction under count-only (our protocols') disclosure."""
        return self.permuted_posterior_area / self.prior_area


def ring_of_observers(center: tuple[float, float], count: int,
                      distance: float) -> list[tuple[float, float]]:
    """Bob's points placed on a ring around Alice's point A.

    With ``distance`` slightly under Eps every disk contains A and the
    intersection shrinks as ``count`` grows -- the exact Figure 1 setup.
    """
    if count < 1:
        raise AttackError(f"count must be >= 1, got {count}")
    return [
        (center[0] + distance * math.cos(2.0 * math.pi * k / count),
         center[1] + distance * math.sin(2.0 * math.pi * k / count))
        for k in range(count)
    ]


def intersection_attack_report(observer_centers, eps: float,
                               domain: Domain2D, rng: random.Random,
                               samples: int = 20000) -> AttackReport:
    """Quantify the Figure 1 attack for one observer configuration."""
    kumar = disk_intersection_area(observer_centers, eps, domain, rng,
                                   samples)
    permuted = disk_union_area(observer_centers, eps, domain, rng, samples)
    return AttackReport(
        observer_points=len(observer_centers),
        eps=eps,
        prior_area=domain.area,
        kumar_posterior_area=kumar,
        permuted_posterior_area=permuted,
    )
