"""Analysis layer: cost models, the Figure-1 attack, report rendering.

Turns the paper's analytical evaluation into measurable quantities:

- :mod:`repro.analysis.communication` -- the closed-form communication
  complexity formulas of Sections 4.2.2, 4.3.2 and 5.1, plus fitting
  helpers that compare them against measured channel bytes.
- :mod:`repro.analysis.attacks` -- the Section 1 / Figure 1 intersection
  attack, quantified by Monte Carlo area estimation.
- :mod:`repro.analysis.report` -- plain-text table rendering for the
  benchmark harness output.
"""

from repro.analysis.communication import (
    fit_through_origin,
    horizontal_predicted_bits,
    vertical_predicted_bits,
    enhanced_predicted_bits,
    ympp_predicted_bits,
)
from repro.analysis.attacks import (
    disk_intersection_area,
    disk_union_area,
    intersection_attack_report,
)
from repro.analysis.figures import (
    render_arbitrary_figure,
    render_horizontal_figure,
    render_vertical_figure,
)
from repro.analysis.report import render_table

__all__ = [
    "fit_through_origin",
    "horizontal_predicted_bits",
    "vertical_predicted_bits",
    "enhanced_predicted_bits",
    "ympp_predicted_bits",
    "disk_intersection_area",
    "disk_union_area",
    "intersection_attack_report",
    "render_arbitrary_figure",
    "render_horizontal_figure",
    "render_vertical_figure",
    "render_table",
]
