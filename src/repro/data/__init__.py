"""Data substrate: records, partitioning, and synthetic workloads.

Implements Section 3.2 of the paper: the virtual database
``D = {d_1..d_n}`` of m-attribute records and its three partitioning
formats (horizontal, vertical, arbitrary -- Figures 2, 3, 4), plus the
synthetic workload generators used across tests and benchmarks.
"""

from repro.data.dataset import Dataset
from repro.data.quantize import quantize_points
from repro.data.partitioning import (
    ArbitraryPartition,
    HorizontalPartition,
    VerticalPartition,
    partition_arbitrary,
    partition_horizontal,
    partition_vertical,
)
from repro.data.generators import (
    gaussian_blobs,
    two_moons,
    concentric_rings,
    uniform_noise,
    grid_clusters,
)

__all__ = [
    "Dataset",
    "quantize_points",
    "ArbitraryPartition",
    "HorizontalPartition",
    "VerticalPartition",
    "partition_arbitrary",
    "partition_horizontal",
    "partition_vertical",
    "gaussian_blobs",
    "two_moons",
    "concentric_rings",
    "uniform_noise",
    "grid_clusters",
]
