"""Named standard workloads with tuned DBSCAN parameters.

Tests, benchmarks and examples repeatedly need "a blob/moons/rings
dataset with an eps/min_pts that cleanly clusters it"; this module is
the single source of those combinations so the suites stay consistent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.generators import (
    concentric_rings,
    gaussian_blobs,
    grid_clusters,
    two_moons,
    uniform_noise,
)


class WorkloadError(ValueError):
    """Raised for unknown workload names."""


@dataclass(frozen=True)
class Workload:
    """A dataset plus the DBSCAN parameters that resolve its structure.

    Attributes:
        name: registry key.
        points: grid-quantized integer points (scale 100).
        eps: radius in original units.
        min_pts: density threshold.
        expected_clusters: ground-truth cluster count (None when the
            workload is noise-dominated and the count is seed-dependent).
    """

    name: str
    points: tuple[tuple[int, ...], ...]
    eps: float
    min_pts: int
    expected_clusters: int | None


def _build(name: str, seed: int, size: str) -> Workload:
    rng = random.Random(seed)
    per_unit = {"small": 8, "medium": 16, "large": 32}[size]
    if name == "blobs":
        points = gaussian_blobs(
            rng, centers=[(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)],
            points_per_blob=per_unit, spread=0.4)
        return Workload(name, tuple(points), eps=1.2, min_pts=4,
                        expected_clusters=3)
    if name == "moons":
        # Arc spacing pi*3/(3*per_unit) = 0.39 at small; jitter-safe
        # against the 0.9 eps.
        points = two_moons(rng, points_per_moon=3 * per_unit, noise=0.06,
                           even_spacing=True)
        return Workload(name, tuple(points), eps=0.9, min_pts=3,
                        expected_clusters=2)
    if name == "rings":
        # Points per ring sized so the outer ring's arc spacing
        # (2*pi*3 / (4*per_unit) = 0.59 at small) plus jitter stays
        # under eps.
        points = concentric_rings(rng, points_per_ring=4 * per_unit,
                                  radii=(1.5, 3.0), noise=0.05,
                                  even_spacing=True)
        return Workload(name, tuple(points), eps=0.9, min_pts=3,
                        expected_clusters=2)
    if name == "grid":
        points = grid_clusters(clusters_per_side=2, cluster_size=3)
        return Workload(name, tuple(points), eps=0.5, min_pts=3,
                        expected_clusters=4)
    if name == "noisy_blob":
        points = (gaussian_blobs(rng, centers=[(0.0, 0.0)],
                                 points_per_blob=2 * per_unit, spread=0.3)
                  + uniform_noise(rng, count=per_unit // 2))
        return Workload(name, tuple(points), eps=1.0, min_pts=4,
                        expected_clusters=None)
    raise WorkloadError(f"unknown workload {name!r}")


WORKLOAD_NAMES = ("blobs", "moons", "rings", "grid", "noisy_blob")


def standard_workload(name: str, *, seed: int = 7,
                      size: str = "small") -> Workload:
    """Fetch a named workload.

    Args:
        name: one of :data:`WORKLOAD_NAMES`.
        seed: generator seed (grid is deterministic regardless).
        size: ``"small"`` / ``"medium"`` / ``"large"`` point budget.
    """
    if name not in WORKLOAD_NAMES:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")
    if size not in ("small", "medium", "large"):
        raise WorkloadError(f"unknown size {size!r}")
    return _build(name, seed, size)


def all_standard_workloads(*, seed: int = 7,
                           size: str = "small") -> list[Workload]:
    """Every registered workload, for matrix-style tests."""
    return [standard_workload(name, seed=seed, size=size)
            for name in WORKLOAD_NAMES]
