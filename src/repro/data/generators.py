"""Synthetic workload generators.

DBSCAN's selling point (paper Section 1) is arbitrary-shape clusters
with noise, so the generators cover exactly those regimes: Gaussian
blobs, two moons, concentric rings, uniform background noise, and a
deterministic grid.  All generators emit *grid-quantized integer*
coordinates (via the fixed-point scale) so secure protocol runs and
plaintext references see identical geometry -- no float/int disagreement
can creep in between a test's reference and its protocol run.

Every generator takes an explicit ``random.Random``; nothing reads
global RNG state.
"""

from __future__ import annotations

import math
import random

from repro.crypto.encoding import FixedPointEncoder


def _quantized(points: list[tuple[float, ...]],
               scale: int) -> list[tuple[int, ...]]:
    encoder = FixedPointEncoder(scale)
    return [encoder.encode_point(p) for p in points]


def gaussian_blobs(rng: random.Random, *, centers: list[tuple[float, ...]],
                   points_per_blob: int, spread: float = 0.5,
                   scale: int = 100) -> list[tuple[int, ...]]:
    """Isotropic Gaussian clusters around the given centers."""
    points = []
    for center in centers:
        for _ in range(points_per_blob):
            points.append(tuple(rng.gauss(c, spread) for c in center))
    return _quantized(points, scale)


def two_moons(rng: random.Random, *, points_per_moon: int,
              radius: float = 3.0, noise: float = 0.15,
              scale: int = 100,
              even_spacing: bool = False) -> list[tuple[int, ...]]:
    """The classic interlocking half-circles (2-D only).

    The shape k-means famously butchers and DBSCAN handles -- the
    paper's "arbitrarily shaped clusters" motivation.

    ``even_spacing=True`` places points at regular arc angles (plus the
    Gaussian jitter) instead of uniformly random angles; uniform angles
    produce arc gaps of expected max ``~arc_len * ln(n)/n``, which can
    exceed Eps on sparse moons and split the cluster.  Workloads that
    assert a ground-truth cluster count use even spacing.
    """
    def angles() -> list[float]:
        if even_spacing:
            return [math.pi * (i + 0.5) / points_per_moon
                    for i in range(points_per_moon)]
        return [rng.uniform(0.0, math.pi) for _ in range(points_per_moon)]

    points = []
    for angle in angles():
        points.append((radius * math.cos(angle) + rng.gauss(0, noise),
                       radius * math.sin(angle) + rng.gauss(0, noise)))
    for angle in angles():
        points.append((radius - radius * math.cos(angle) + rng.gauss(0, noise),
                       radius / 2.0 - radius * math.sin(angle)
                       + rng.gauss(0, noise)))
    return _quantized(points, scale)


def concentric_rings(rng: random.Random, *, points_per_ring: int,
                     radii: tuple[float, ...] = (1.5, 4.0),
                     noise: float = 0.12,
                     scale: int = 100,
                     even_spacing: bool = False) -> list[tuple[int, ...]]:
    """Nested rings -- "a cluster completely surrounded by a different
    cluster" (paper Section 1).

    See :func:`two_moons` for the ``even_spacing`` rationale.
    """
    points = []
    for radius in radii:
        for index in range(points_per_ring):
            if even_spacing:
                angle = 2.0 * math.pi * index / points_per_ring
            else:
                angle = rng.uniform(0.0, 2.0 * math.pi)
            points.append((radius * math.cos(angle) + rng.gauss(0, noise),
                           radius * math.sin(angle) + rng.gauss(0, noise)))
    return _quantized(points, scale)


def uniform_noise(rng: random.Random, *, count: int,
                  low: float = -6.0, high: float = 6.0,
                  dimensions: int = 2,
                  scale: int = 100) -> list[tuple[int, ...]]:
    """Background noise points, uniform over a box."""
    points = [tuple(rng.uniform(low, high) for _ in range(dimensions))
              for _ in range(count)]
    return _quantized(points, scale)


def grid_clusters(*, clusters_per_side: int = 2, cluster_size: int = 5,
                  cluster_step: float = 0.2, cluster_gap: float = 5.0,
                  scale: int = 100) -> list[tuple[int, ...]]:
    """Deterministic square mini-grids, far apart -- exact-answer tests.

    Each cluster is a ``cluster_size`` x ``cluster_size`` lattice with
    ``cluster_step`` spacing; cluster origins sit ``cluster_gap`` apart,
    so for any eps between the two scales the ground truth is obvious.
    """
    points = []
    for cluster_x in range(clusters_per_side):
        for cluster_y in range(clusters_per_side):
            origin = (cluster_x * cluster_gap, cluster_y * cluster_gap)
            for i in range(cluster_size):
                for j in range(cluster_size):
                    points.append((origin[0] + i * cluster_step,
                                   origin[1] + j * cluster_step))
    return _quantized(points, scale)


def interleave_for_horizontal(points: list[tuple[int, ...]],
                              rng: random.Random,
                              alice_fraction: float = 0.5,
                              ) -> tuple[list[tuple[int, ...]],
                                         list[tuple[int, ...]]]:
    """Randomly deal points to Alice/Bob for horizontal-partition tests.

    Random dealing (rather than a prefix split) makes both parties hold
    points of every cluster, the regime where union-density support
    actually matters.
    """
    alice: list[tuple[int, ...]] = []
    bob: list[tuple[int, ...]] = []
    for point in points:
        (alice if rng.random() < alice_fraction else bob).append(point)
    return alice, bob
