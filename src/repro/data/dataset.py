"""The virtual database of Section 3.2.

A :class:`Dataset` is the joint view ``D = {d_1..d_n}`` of n records
with m integer attributes each.  Partitioning helpers split it into the
per-party holdings of Figures 2-4; the dataset itself only ever exists
in tests and references (the protocols never materialize it).
"""

from __future__ import annotations

from dataclasses import dataclass


class DatasetError(ValueError):
    """Raised on ragged records or empty datasets where not allowed."""


@dataclass(frozen=True)
class Dataset:
    """Immutable n x m integer record table."""

    records: tuple[tuple[int, ...], ...]

    @classmethod
    def from_points(cls, points) -> "Dataset":
        records = tuple(tuple(point) for point in points)
        if records:
            width = len(records[0])
            for index, record in enumerate(records):
                if len(record) != width:
                    raise DatasetError(
                        f"record {index} has {len(record)} attributes, "
                        f"expected {width}"
                    )
        return cls(records=records)

    @property
    def size(self) -> int:
        return len(self.records)

    @property
    def dimensions(self) -> int:
        if not self.records:
            raise DatasetError("empty dataset has no dimensionality")
        return len(self.records[0])

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    def max_abs_coordinate(self) -> int:
        return max((abs(c) for record in self.records for c in record),
                   default=0)
