"""Partitioned data models -- Figures 2, 3, 4 of the paper.

Three containers describe who holds what:

- :class:`HorizontalPartition` -- each party owns a subset of records
  with full attributes (Figure 2).
- :class:`VerticalPartition` -- each party owns all records but only a
  subset of attributes (Figure 3).
- :class:`ArbitraryPartition` -- per-record, per-attribute ownership
  (Figure 4); subsumes the other two.

Constructors validate that the partition is total and non-overlapping,
and each container can reassemble the joint database (test/reference use
only -- protocols never call ``merged``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import Dataset, DatasetError

ALICE = "alice"
BOB = "bob"


class PartitionError(ValueError):
    """Raised for invalid splits or inconsistent shapes."""


@dataclass(frozen=True)
class HorizontalPartition:
    """Figure 2: Alice holds records ``d_1..d_l``, Bob ``d_{l+1}..d_n``."""

    alice_points: tuple[tuple[int, ...], ...]
    bob_points: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        widths = {len(p) for p in self.alice_points}
        widths |= {len(p) for p in self.bob_points}
        if len(widths) > 1:
            raise PartitionError(f"inconsistent attribute counts: {widths}")

    @property
    def dimensions(self) -> int:
        for side in (self.alice_points, self.bob_points):
            for point in side:
                return len(point)
        raise PartitionError("empty partition has no dimensionality")

    @property
    def total_size(self) -> int:
        return len(self.alice_points) + len(self.bob_points)

    def merged(self) -> Dataset:
        """Joint database, Alice's records first (reference use only)."""
        return Dataset.from_points(list(self.alice_points) +
                                   list(self.bob_points))


@dataclass(frozen=True)
class VerticalPartition:
    """Figure 3: Alice holds attributes ``1..l`` of every record."""

    alice_columns: tuple[int, ...]
    bob_columns: tuple[int, ...]
    alice_records: tuple[tuple[int, ...], ...]
    bob_records: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        if set(self.alice_columns) & set(self.bob_columns):
            raise PartitionError("attribute sets overlap")
        if len(self.alice_records) != len(self.bob_records):
            raise PartitionError(
                f"record counts differ: {len(self.alice_records)} vs "
                f"{len(self.bob_records)}"
            )
        for records, columns, owner in (
                (self.alice_records, self.alice_columns, ALICE),
                (self.bob_records, self.bob_columns, BOB)):
            for index, record in enumerate(records):
                if len(record) != len(columns):
                    raise PartitionError(
                        f"{owner} record {index} has {len(record)} values "
                        f"for {len(columns)} owned attributes"
                    )

    @property
    def size(self) -> int:
        return len(self.alice_records)

    @property
    def dimensions(self) -> int:
        return len(self.alice_columns) + len(self.bob_columns)

    def merged(self) -> Dataset:
        """Joint database in original attribute order (reference only)."""
        points = []
        for alice_rec, bob_rec in zip(self.alice_records, self.bob_records):
            record = [0] * self.dimensions
            for column, value in zip(self.alice_columns, alice_rec):
                record[column] = value
            for column, value in zip(self.bob_columns, bob_rec):
                record[column] = value
            points.append(tuple(record))
        return Dataset.from_points(points)


@dataclass(frozen=True)
class ArbitraryPartition:
    """Figure 4: ownership decided per record, per attribute.

    ``owners[i][k]`` names the party holding attribute ``k`` of record
    ``i``; ``values[i][k]`` is the joint value (only the owner's code
    path may read it -- the protocols slice through the accessors below).
    """

    values: tuple[tuple[int, ...], ...]
    owners: tuple[tuple[str, ...], ...]

    def __post_init__(self):
        if len(self.values) != len(self.owners):
            raise PartitionError(
                f"{len(self.values)} records but {len(self.owners)} owner rows")
        for index, (record, owner_row) in enumerate(
                zip(self.values, self.owners)):
            if len(record) != len(owner_row):
                raise PartitionError(
                    f"record {index}: {len(record)} values vs "
                    f"{len(owner_row)} owners"
                )
            for owner in owner_row:
                if owner not in (ALICE, BOB):
                    raise PartitionError(f"unknown owner {owner!r}")

    @property
    def size(self) -> int:
        return len(self.values)

    @property
    def dimensions(self) -> int:
        if not self.values:
            raise PartitionError("empty partition has no dimensionality")
        return len(self.values[0])

    def owner_of(self, record: int, attribute: int) -> str:
        return self.owners[record][attribute]

    def value_for(self, party: str, record: int, attribute: int) -> int:
        """The attribute value, readable only by its owner."""
        if self.owners[record][attribute] != party:
            raise PartitionError(
                f"{party} does not own attribute {attribute} of record "
                f"{record}"
            )
        return self.values[record][attribute]

    def attributes_owned_by(self, party: str, record: int) -> list[int]:
        return [k for k, owner in enumerate(self.owners[record])
                if owner == party]

    def fully_owned_by(self, record: int) -> str | None:
        """The sole owner of a record, or None if it is split."""
        owner_row = set(self.owners[record])
        if len(owner_row) == 1:
            return next(iter(owner_row))
        return None

    def merged(self) -> Dataset:
        return Dataset.from_points(self.values)


def partition_horizontal(dataset: Dataset,
                         alice_count: int) -> HorizontalPartition:
    """Alice takes the first ``alice_count`` records (the paper's ``l``)."""
    if not 0 <= alice_count <= dataset.size:
        raise PartitionError(
            f"alice_count={alice_count} outside [0, {dataset.size}]")
    return HorizontalPartition(
        alice_points=dataset.records[:alice_count],
        bob_points=dataset.records[alice_count:],
    )


def partition_vertical(dataset: Dataset,
                       alice_attributes: int) -> VerticalPartition:
    """Alice takes the first ``alice_attributes`` attributes (the ``l``)."""
    try:
        dimensions = dataset.dimensions
    except DatasetError as exc:
        raise PartitionError(str(exc)) from exc
    if not 1 <= alice_attributes <= dimensions - 1:
        raise PartitionError(
            f"alice_attributes={alice_attributes} must leave both parties "
            f"at least one of the {dimensions} attributes"
        )
    alice_columns = tuple(range(alice_attributes))
    bob_columns = tuple(range(alice_attributes, dimensions))
    return VerticalPartition(
        alice_columns=alice_columns,
        bob_columns=bob_columns,
        alice_records=tuple(tuple(r[c] for c in alice_columns)
                            for r in dataset.records),
        bob_records=tuple(tuple(r[c] for c in bob_columns)
                          for r in dataset.records),
    )


def partition_arbitrary(dataset: Dataset, rng: random.Random, *,
                        shared_fraction: float = 0.5) -> ArbitraryPartition:
    """Random Figure-4 partition.

    A ``shared_fraction`` of records get their attributes split between
    the parties (at least one attribute each); the rest are wholly owned
    by a coin-flipped party.  ``shared_fraction=1.0`` degenerates to a
    (randomized) vertical-style partition, ``0.0`` to horizontal-style --
    the knob experiment E10 sweeps.
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise PartitionError(
            f"shared_fraction={shared_fraction} outside [0, 1]")
    owner_rows = []
    for record in dataset.records:
        width = len(record)
        if rng.random() < shared_fraction and width >= 2:
            row = [ALICE if rng.random() < 0.5 else BOB for _ in range(width)]
            # Guarantee the record is genuinely split.
            if all(owner == ALICE for owner in row):
                row[rng.randrange(width)] = BOB
            elif all(owner == BOB for owner in row):
                row[rng.randrange(width)] = ALICE
        else:
            sole = ALICE if rng.random() < 0.5 else BOB
            row = [sole] * width
        owner_rows.append(tuple(row))
    return ArbitraryPartition(values=dataset.records,
                              owners=tuple(owner_rows))


def partition_from_masks(dataset: Dataset, owner_rows) -> ArbitraryPartition:
    """Build an arbitrary partition from explicit ownership rows."""
    return ArbitraryPartition(
        values=dataset.records,
        owners=tuple(tuple(row) for row in owner_rows),
    )
