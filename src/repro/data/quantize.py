"""Fixed-point quantization of real-valued points.

The secure protocols run on integers; this module is the single place
where real coordinates become grid integers, so plaintext references and
protocol runs share exactly the same geometry.  See
:class:`repro.crypto.encoding.FixedPointEncoder` for the scalar rules.
"""

from __future__ import annotations

from repro.crypto.encoding import FixedPointEncoder


def quantize_points(points, scale: int = 100) -> list[tuple[int, ...]]:
    """Quantize an iterable of real-coordinate points onto the grid."""
    encoder = FixedPointEncoder(scale)
    return [encoder.encode_point(point) for point in points]


def quantize_eps(eps: float, scale: int = 100) -> int:
    """Integer squared-radius threshold matching :func:`quantize_points`."""
    return FixedPointEncoder(scale).encode_eps_squared(eps)


def max_coordinate(points) -> int:
    """Largest absolute integer coordinate; sizes comparison domains."""
    return max((abs(c) for point in points for c in point), default=0)


def squared_distance_bound(points_a, points_b) -> int:
    """Public bound on any cross squared distance between the two sets.

    Derived from the max absolute coordinate of either set; every secure
    comparison domain in the protocols is sized from this.
    """
    bound = max(max_coordinate(points_a), max_coordinate(points_b))
    dims = 0
    for source in (points_a, points_b):
        for point in source:
            dims = len(point)
            break
        if dims:
            break
    per_axis = 2 * bound
    return max(1, dims * per_axis * per_axis)
