"""Mirrored-choreography execution across a process boundary.

Execution model
---------------

Every protocol in this library is written as a *choreography*: one
function executes both parties' local steps in their global order, and
every cross-party value moves through a channel.  That style cannot be
"split" mechanically -- each party's code is interleaved with its
peer's -- but it has a property the runtime exploits: **a party's
outbound messages depend only on its own inputs, its own coin stream,
and the messages it received**.  That is precisely the semi-honest view
(Definition 5) the privacy analysis is built on, and the codebase
enforces it structurally (no protocol reads the peer's state except
through ``send``/``receive``).

So each party process runs the *same* choreography, with the remote
party's private inputs replaced by public-shape placeholders (all-zero
points with the true, public, counts), and this channel performs the
substitution that makes the execution real:

- a **local** party's send executes normally: the value is serialized,
  recorded, written to the socket as one frame -- and also echoed into a
  local inbox, because the choreography's next step may be the remote
  party's receive of that very message;
- a **remote** party's send is where the mirror acts: the
  locally-computed value is *discarded* (it was derived from
  placeholders) and the authentic frame is read from the socket
  instead -- the real peer process, holding the real data, computed and
  sent it at the same point of its own choreography.  Stats and the
  transcript record the authentic bytes, so the accounting is identical
  to an in-process run;
- receives pop from the corresponding inbox; they never touch the
  socket (the matching send line already did).

Why this terminates: both processes execute the same deterministic
sequence of sends and receives (control flow depends only on public
shapes, wire values, and seed-derived coins -- property-tested).  A
process blocks only at a remote-send substitution, i.e. waiting for a
frame its peer produces at the same choreography point; since the order
is shared, there is no circular wait.

Why this is equivalent: every frame on the wire is computed by the
party that owns the data, from authentic inputs and its seed-derived
coin stream -- the same stream the in-process mesh derives via
``derive_pair_rng``.  Hence byte-identical messages, transcripts,
stats, predicate bits, labels, and ledger events (asserted by the
integration suite).

What the placeholders may influence: local garbage that feeds only into
discarded remote sends, and the *local* copies of remote-side
decisions, which callers on this side must treat as garbage (the party
program only consumes results owned by its local party).  Key material
follows the same ownership rule *structurally*: a party process derives
only its **own** slot's keypair from ``key_seed``; every peer context
is a :mod:`sealed <repro.crypto.sealed>` public-only stand-in whose
authentic public key is captured from the wire key exchange (pinned
against the manifest's ``key_digests``), and any code path that tries
to use a peer's private key raises
:class:`~repro.crypto.sealed.PublicOnlyKeyError` instead of silently
computing with a secret this process must not hold.  The mirror's
discard rule is what makes that sound: the only values a sealed
private key would have produced feed discarded remote sends, so
substituting zeros changes no authentic byte.  See DESIGN.md, 'Sealed
per-party keys'.
"""

from __future__ import annotations

from collections import deque

from repro.net.channel import ChannelEndpoint
from repro.net.serialization import deserialize_message, serialize_message
from repro.net.stats import CommunicationStats
from repro.net.transcript import Transcript
from repro.net.transport import ProtocolDesyncError, TcpTransport


class MirrorChannelError(RuntimeError):
    """Misuse of the mirror channel (unknown party, closed link)."""


class MirrorChannel:
    """Channel-compatible duplex link whose far party lives elsewhere.

    Drop-in for :class:`repro.net.channel.Channel` wherever a session or
    protocol holds a channel: same endpoints, stats, transcript, and
    close semantics; delivery is the mirrored substitution described in
    the module docstring, over a :class:`~repro.net.transport.TcpTransport`.
    """

    def __init__(self, left_name: str, right_name: str, local_name: str,
                 transport: TcpTransport):
        if left_name == right_name:
            raise MirrorChannelError("parties must have distinct names")
        if local_name not in (left_name, right_name):
            raise MirrorChannelError(
                f"{local_name!r} is not an endpoint of "
                f"({left_name!r}, {right_name!r})")
        self.transcript = Transcript()
        self.stats = CommunicationStats()
        self.transport = transport
        self.local_name = local_name
        self.remote_name = (right_name if local_name == left_name
                            else left_name)
        self._closed = False
        # Frames the local party sent, awaiting the choreographed remote
        # receive; frames substituted off the wire, awaiting the local
        # receive.
        self._local_echo: deque[tuple[str, bytes]] = deque()
        self._remote_inbox: deque[tuple[str, bytes]] = deque()
        # The party's wire view of this pair, in choreography order:
        # ("out", label, wire) for local sends, ("in", label, wire) for
        # substituted authentic frames.  This is what a checkpoint
        # persists and what a replayed pass re-produces (see
        # repro.runtime.checkpoint).
        self.frame_log: list[tuple[str, str, bytes]] = []
        self.left = ChannelEndpoint(self, left_name, right_name)
        self.right = ChannelEndpoint(self, right_name, left_name)

    @property
    def endpoints(self) -> tuple[ChannelEndpoint, ChannelEndpoint]:
        return self.left, self.right

    @property
    def simulated_seconds(self) -> float:
        """Real sockets have real time; nothing simulated to report."""
        return 0.0

    def close(self, reason: str | None = None) -> None:
        if not self._closed:
            self._closed = True
            self.transport.close(reason)

    def rebind_transport(self, transport) -> None:
        """Swap the delivery fabric under a live channel.

        The recovery path uses this twice: a resumed party first drives
        the channel over a :class:`~repro.runtime.checkpoint.ReplayTransport`
        (rebuilding state from the recorded wire view, no sockets), then
        rebinds to the fresh epoch's :class:`~repro.net.transport.TcpTransport`
        for live execution.  Channel-level state (stats, transcript,
        inboxes, frame log) carries across untouched -- only delivery
        changes.
        """
        if self._closed:
            raise MirrorChannelError(
                "cannot rebind the transport of a closed channel")
        self.transport = transport

    def assert_drained(self) -> None:
        """Post-run invariant: every sent frame met its receive.

        A leftover means the two processes' choreographies diverged --
        raise with enough context to see where.
        """
        leftovers = []
        if self._local_echo:
            leftovers.append(
                f"{len(self._local_echo)} unconsumed local sends "
                f"(first label {self._local_echo[0][0]!r})")
        if self._remote_inbox:
            leftovers.append(
                f"{len(self._remote_inbox)} unconsumed substituted frames "
                f"(first label {self._remote_inbox[0][0]!r})")
        if leftovers:
            raise ProtocolDesyncError(
                f"mirror channel {self.local_name!r}<->{self.remote_name!r} "
                f"not drained: " + "; ".join(leftovers))

    # -- Channel protocol --------------------------------------------------

    def _send(self, sender: str, receiver: str, label: str, value) -> None:
        if self._closed:
            raise MirrorChannelError("channel is closed")
        if sender == self.local_name:
            wire = serialize_message(value)
            self.stats.record(sender, receiver, label, len(wire))
            self.transcript.record(sender, receiver, label,
                                   deserialize_message(wire), len(wire))
            self.transport.deliver(sender, receiver, label, wire)
            self._local_echo.append((label, wire))
            self.frame_log.append(("out", label, wire))
            return
        # The remote party's send: substitute the authentic frame.  The
        # locally-passed value was computed from placeholders and is
        # dropped unserialized.
        authentic_label, wire = self.transport.collect(self.local_name,
                                                       label)
        if authentic_label != label:
            raise ProtocolDesyncError(
                f"cross-process desync on "
                f"{self.local_name!r}<->{self.remote_name!r}: this "
                f"choreography reached {sender}'s send of {label!r} but "
                f"the peer process sent {authentic_label!r}")
        self.stats.record(sender, receiver, label, len(wire))
        self.transcript.record(sender, receiver, label,
                               deserialize_message(wire), len(wire))
        self._remote_inbox.append((label, wire))
        self.frame_log.append(("in", label, wire))

    def _receive(self, receiver: str, expected_label: str | None):
        if self._closed:
            raise MirrorChannelError("channel is closed")
        inbox = (self._remote_inbox if receiver == self.local_name
                 else self._local_echo)
        if not inbox:
            raise ProtocolDesyncError(
                f"{receiver} tried to receive "
                f"{expected_label or 'a message'} but no matching send "
                f"has executed (mirror channel "
                f"{self.local_name!r}<->{self.remote_name!r})")
        label, wire = inbox.popleft()
        if expected_label is not None and label != expected_label:
            raise ProtocolDesyncError(
                f"{receiver} expected message {expected_label!r} "
                f"but got {label!r}")
        return deserialize_message(wire)
