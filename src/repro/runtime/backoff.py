"""Seeded-jitter exponential backoff, shared by every retry loop.

One implementation serves the party program's dial-with-retry loop and
the orchestrator's re-spawn loop, so the two sides of a recovery never
drift apart in cadence: both compute ``base * 2**attempt`` capped at
``max_delay_s``, scaled by a jitter factor drawn from a seeded stream
(:func:`repro.net.transport.derive_seeded_stream`), which keeps test
runs deterministic while still decorrelating real fleets.
"""

from __future__ import annotations

import random

from repro.net.transport import derive_seeded_stream

#: Default cap: no single retry sleep exceeds this many seconds.
DEFAULT_MAX_DELAY_S = 2.0

#: Jitter range: the exponential delay is scaled by a factor drawn
#: uniformly from [0.5, 1.0] -- "equal jitter", so a delay never drops
#: below half its nominal value (liveness) and never exceeds it
#: (boundedness).
_JITTER_FLOOR = 0.5


def jitter_rng(seed: int | None, *scope) -> random.Random:
    """A deterministic jitter stream for one named retry loop.

    ``scope`` parts (party name, pair key, purpose tag) keep distinct
    loops on distinct streams even under one seed.
    """
    return derive_seeded_stream(seed, "backoff", *scope)


def backoff_delay(base_s: float, attempt: int, rng: random.Random, *,
                  max_delay_s: float = DEFAULT_MAX_DELAY_S) -> float:
    """Delay before retry number ``attempt`` (0-based): capped
    exponential growth with seeded equal-jitter."""
    if base_s <= 0:
        return 0.0
    nominal = min(base_s * (2 ** attempt), max_delay_s)
    return nominal * (_JITTER_FLOOR + (1.0 - _JITTER_FLOOR) * rng.random())
