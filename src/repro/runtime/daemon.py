"""Resident party daemon: one event loop, many clustering sessions.

The PR-5 runtime pays full process spin-up -- interpreter boot, key
derivation, engine warm-up, link-up, handshakes -- for *every* run.
This module keeps the party processes resident instead: ``k`` daemons
(one per data holder, described by a shared :class:`MeshSpec`) hold one
persistent TCP connection per mesh pair and accept ``start_session``
requests from clients, each carrying a full
:class:`~repro.runtime.manifest.RunManifest` plus that daemon's own
partition -- the per-process privacy boundary of the orchestrated
runtime, unchanged.

Execution model
---------------

One :mod:`asyncio` event loop per daemon owns *all* socket I/O: every
pair connection is an :class:`~repro.net.transport.AsyncTcpTransport`
hub whose demux task routes inbound session-tagged ``m``/``c`` frames
into per-session future queues.  The protocol choreographies themselves
are synchronous and run *unchanged* -- but inline on the event loop,
at message granularity, through the restartable machinery of
:mod:`repro.runtime.async_pass`: a choreography that reaches a frame
not yet arrived unwinds via ``NeedFrame``, its *coroutine* parks on the
session's frame queue, and the segment re-executes (replay-verified
against the pair's frame log) once the frame lands.  No session owns a
worker thread, so the daemon's thread count is O(1) in its session
count -- the loop plus the shared engine's workers, whatever the
concurrency.  Responder duties are coroutines awaiting the session's
control queue, serving each announced query through the same
restartable runner.

A daemon-wide :class:`~repro.crypto.precompute.RandomnessService`
amortizes the offline phase across sessions: it learns each keypair's
per-session factor demand as sessions release their leases, prefetches
new sessions' pools to that demand, and tops pools up from an idle-time
background coroutine.  Factor *values* stay per-session (each pool
draws from a per-session forked RNG stream), so warm starts change
where offline time is spent, never a byte of any transcript.

Determinism: a session's coins, keys, and channel machinery are exactly
the single-session runtime's (same ``derive_pair_rng`` streams --
optionally namespaced per session, see
:attr:`~repro.runtime.manifest.RunManifest.rng_namespace` -- same
own-slot key derivation with sealed peer contexts
(:class:`~repro.smc.session.SealedKeyProvider`), same
:class:`~repro.runtime.mirror.MirrorChannel`).  Multiplexing changes
which frames share a socket, never the bytes or per-(session, pair,
direction) order of any stream, so every session's labels, ledger,
per-pair transcripts, and comparison counts are bit-identical to the
dedicated-process run (property-tested with interleaved concurrent
sessions in ``tests/runtime/test_daemon.py``).

Amortization: the daemon builds and warms one
:class:`~repro.crypto.engine.ModexpEngine` at startup and injects it
into every session's :class:`~repro.smc.session.SmcSession`; the
process-level key cache makes every session after the first reuse the
derived key material.  Each session's
:attr:`~repro.runtime.party.PartyReport.runtime_info` records whether
it warm-started and its setup/pool figures, so the amortization is
observable in reports, not just in wall-clock.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import hashlib
import hmac
import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.core.distance import PeerCipherCache
from repro.core.leakage import LeakageLedger
from repro.crypto.engine import ModexpEngine
from repro.crypto.integer_math import powmod_cache_report
from repro.crypto.precompute import PrecomputeError, RandomnessService
from repro.crypto.sealed import paillier_public_digest
from repro.multiparty.horizontal import _peer_count
from repro.multiparty.mesh import derive_pair_rng
from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_GOODBYE,
    FRAME_HELLO,
    ConnectionClosedError,
    FrameAuthenticationError,
    FrameAuthenticator,
    FramingError,
    encode_frame,
    read_frame_async,
)
from repro.net.party import Party
from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)
from repro.net.transcript import transcript_digest
from repro.net.transport import AsyncTcpTransport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer, tracer_for
from repro.runtime.handshake import (
    PROTOCOL_VERSION,
    ROLE_CLIENT,
    ROLE_DAEMON,
    HandshakeError,
    HandshakePeerLost,
    Hello,
    client_hello_mismatch,
    hello_mismatch,
)
from repro.runtime.manifest import (
    DEFAULT_HOST,
    RunManifest,
    manifest_digest,
    pair_key,
)
from repro.runtime.async_pass import (
    PairRuntime,
    RestartableMirrorChannel,
    drive_pass_async,
)
from repro.runtime.mirror import MirrorChannel
from repro.runtime.party import (
    CONTROL_END_PASS,
    CONTROL_QUERY,
    PartyReport,
    PartyRuntimeError,
)
from repro.smc.session import SealedKeyProvider, SmcSession

#: Client-plane control records (plain C frames on a client connection).
CONTROL_START_SESSION = "start_session"
CONTROL_SESSION_REPORT = "session_report"
CONTROL_SESSION_FAILED = "session_failed"
#: Typed refusal of a ``start_session`` -- the client gets an immediate
#: answer instead of the submission queueing unboundedly.  The record
#: carries a machine-readable code (:data:`REJECT_CAPACITY` when the
#: daemon is at its :attr:`MeshSpec.max_sessions` cap,
#: :data:`REJECT_DRAINING` while a graceful shutdown drains) after the
#: human-readable reason.
CONTROL_SESSION_REJECTED = "session_rejected"
REJECT_CAPACITY = "capacity"
REJECT_DRAINING = "draining"
#: Client-requested teardown; ``["shutdown", "drain"]`` asks the daemon
#: to finish in-flight sessions before closing its links.
CONTROL_SHUTDOWN = "shutdown"
SHUTDOWN_DRAIN = "drain"
#: Live introspection: ``["get_metrics", request_id]`` on a client
#: connection is answered with ``["metrics", request_id, <json>]``
#: carrying the daemon's full metrics snapshot.  Read-only -- it never
#: touches session state, so it is served even while draining.
CONTROL_GET_METRICS = "get_metrics"
CONTROL_METRICS = "metrics"
#: Pair-plane per-session sync record (session-tagged ``c`` frame): each
#: daemon announces the manifest digest of a freshly submitted session
#: on every pair link and refuses the session unless the peer's matches.
CONTROL_SESSION_SYNC = "session_sync"

_DIAL_BACKOFF_S = 0.05


class DaemonError(RuntimeError):
    """Mesh-spec, link-up, or session-validation failure in a daemon."""


@dataclass(frozen=True)
class MeshSpec:
    """Public description of one resident daemon mesh.

    Unlike a :class:`~repro.runtime.manifest.RunManifest` -- which
    describes one *run* -- a mesh spec describes standing
    infrastructure: which parties exist, where each daemon listens, and
    the link behaviour every session over this mesh shares.  Its digest
    is what daemon-daemon and client-daemon handshakes bind (sessions
    are validated individually at submission, via per-session sync
    records on the pair links).

    Attributes:
        names: party names in mesh slot order (shared with every
            manifest submitted to this mesh).
        ports: ``{party: port}`` -- each daemon's single listen port;
            higher-slot daemons dial lower-slot daemons' ports, and
            clients dial every daemon's port.
        host: bind/dial host (loopback by design, like the manifest).
        timeout_s: per-receive timeout for parked session workers.
        connect_timeout_s: link-up budget (daemon dials and accepts).
        net_delay_s: simulated one-way inbound latency per pair link --
            *real* event-loop time shared by all sessions on the
            connection, so cross-session latency hiding is measured,
            not modeled (see :class:`~repro.net.transport.AsyncTcpTransport`).
        engine_workers: worker processes for the daemon's shared
            :class:`~repro.crypto.engine.ModexpEngine` (1 = serial).
        max_sessions: per-daemon cap on concurrently running sessions;
            a ``start_session`` arriving while the cap is full is
            answered with a typed ``session_rejected`` control record
            instead of queueing unboundedly.  0 means unlimited.
        link_auth: when true, every daemon-daemon and client-daemon
            link carries per-frame HMACs keyed by a pre-shared key
            (supplied out of band via ``--psk`` / ``REPRO_PSK``, never
            written into the spec).  The flag is inside the mesh
            digest, so authenticated and unauthenticated deployments
            can never half-connect.
    """

    names: tuple[str, ...]
    ports: dict[str, int]
    host: str = DEFAULT_HOST
    timeout_s: float = 30.0
    connect_timeout_s: float = 15.0
    net_delay_s: float = 0.0
    engine_workers: int = 1
    max_sessions: int = 0
    link_auth: bool = False
    version: int = field(default=1)

    def __post_init__(self):
        if len(self.names) < 2:
            raise DaemonError("a mesh needs at least two parties")
        if len(set(self.names)) != len(self.names):
            raise DaemonError(f"duplicate party names in {self.names}")
        if set(self.ports) != set(self.names):
            raise DaemonError(
                f"ports must cover exactly the party names "
                f"{sorted(self.names)}, got {sorted(self.ports)}")
        if self.timeout_s <= 0:
            raise DaemonError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.connect_timeout_s <= 0:
            raise DaemonError(
                f"connect_timeout_s must be > 0, got "
                f"{self.connect_timeout_s}")
        if self.net_delay_s < 0:
            raise DaemonError(
                f"net_delay_s must be >= 0, got {self.net_delay_s}")
        if self.engine_workers < 1:
            raise DaemonError(
                f"engine_workers must be >= 1, got {self.engine_workers}")
        if self.max_sessions < 0:
            raise DaemonError(
                f"max_sessions must be >= 0 (0 = unlimited), got "
                f"{self.max_sessions}")

    def slot_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise DaemonError(f"unknown party {name!r}") from None

    def peers_of(self, name: str) -> list[str]:
        self.slot_of(name)
        return [other for other in self.names if other != name]

    def ordered_pair(self, a: str, b: str) -> tuple[str, str]:
        """The pair in slot order (matches mesh/manifest orientation)."""
        return (a, b) if self.slot_of(a) < self.slot_of(b) else (b, a)

    def to_json(self) -> str:
        payload = {
            "names": list(self.names),
            "ports": dict(self.ports),
            "host": self.host,
            "timeout_s": self.timeout_s,
            "connect_timeout_s": self.connect_timeout_s,
            "net_delay_s": self.net_delay_s,
            "engine_workers": self.engine_workers,
            "max_sessions": self.max_sessions,
            "link_auth": self.link_auth,
            "version": self.version,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "MeshSpec":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise DaemonError(f"unreadable mesh spec: {exc}") from exc
        try:
            return cls(
                names=tuple(data["names"]),
                ports=dict(data["ports"]),
                host=data.get("host", DEFAULT_HOST),
                timeout_s=data.get("timeout_s", 30.0),
                connect_timeout_s=data.get("connect_timeout_s", 15.0),
                net_delay_s=data.get("net_delay_s", 0.0),
                engine_workers=data.get("engine_workers", 1),
                max_sessions=data.get("max_sessions", 0),
                link_auth=bool(data.get("link_auth", False)),
                version=data.get("version", 1),
            )
        except KeyError as exc:
            raise DaemonError(f"mesh spec missing field {exc}") from exc


def mesh_digest(spec: MeshSpec) -> str:
    """SHA-256 over the canonical spec JSON -- the handshake binding."""
    return hashlib.sha256(spec.to_json().encode()).hexdigest()


# -- async handshake plumbing (asyncio streams, not FramedConnection) ------

async def _send_frame(writer: asyncio.StreamWriter, kind: bytes,
                      payload: bytes,
                      authenticator: FrameAuthenticator | None = None,
                      ) -> None:
    if authenticator is not None:
        payload = authenticator.seal(kind, payload)
    writer.write(encode_frame(kind, payload))
    await writer.drain()


async def _refuse_stream(writer: asyncio.StreamWriter, name: str,
                         reason: str,
                         authenticator: FrameAuthenticator | None = None,
                         ) -> None:
    try:
        payload = f"handshake refused: {reason}".encode()
        if authenticator is not None:
            payload = authenticator.seal(FRAME_GOODBYE, payload)
        writer.write(encode_frame(FRAME_GOODBYE, payload))
        await writer.drain()
    except (ConnectionResetError, OSError):
        pass
    writer.close()
    raise HandshakeError(f"{name}: {reason}")


async def read_hello_async(reader: asyncio.StreamReader,
                           name: str,
                           authenticator: FrameAuthenticator | None = None,
                           ) -> Hello:
    """The asyncio twin of :func:`repro.runtime.handshake.read_hello`."""
    try:
        kind, payload = await read_frame_async(
            reader, name=name, authenticator=authenticator)
    except FrameAuthenticationError:
        # Never fold a MAC failure into "peer vanished": that path is
        # retried, and an attacker (or wrong PSK) re-fails identically.
        raise
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{name}: peer vanished during the handshake ({exc})") from exc
    if kind == FRAME_GOODBYE:
        raise HandshakeError(
            f"{name}: peer refused the link: "
            f"{payload.decode('utf-8', 'replace')}")
    if kind != FRAME_HELLO:
        raise HandshakeError(
            f"{name}: expected a hello frame, got kind {kind!r}")
    return Hello.from_wire(payload)


def _session_id_of(manifest_json: str) -> str:
    """Best-effort session id extraction for a rejection reply; the
    manifest has not been validated yet, so never trust its shape."""
    try:
        return str(json.loads(manifest_json).get("session_id", "?"))
    except (json.JSONDecodeError, AttributeError, TypeError):
        return "?"


@dataclass
class _SessionState:
    """Everything one running session owns inside the daemon."""

    manifest: RunManifest
    points: list
    views: dict = field(default_factory=dict)      # peer -> link view
    channels: dict = field(default_factory=dict)   # peer -> MirrorChannel
    sessions: dict = field(default_factory=dict)   # peer -> SmcSession
    parties: dict = field(default_factory=dict)    # peer -> {name: Party}


class _SessionMeshView:
    """The ``PartyMesh`` surface of one daemon session's k-1 links.

    The daemon twin of ``repro.runtime.party._LocalMeshView``:
    ``begin_peer_query`` emits the session-tagged query-announcement
    control frame (thread-safe -- it fires on scheduler worker threads
    under ``concurrent_peers``, and the hub's outbound queue is fed via
    ``call_soon_threadsafe``).
    """

    _QUERY_WIRE = serialize_message([CONTROL_QUERY])

    def __init__(self, local_name: str, state: _SessionState):
        self._name = local_name
        self._state = state

    def peers_of(self, name: str) -> list[str]:
        return self._state.manifest.peers_of(name)

    def _peer(self, a: str, b: str) -> str:
        peer = b if a == self._name else a
        if peer not in self._state.channels:
            raise PartyRuntimeError(
                f"no link between {a!r} and {b!r} in daemon "
                f"{self._name!r}")
        return peer

    def session_between(self, a: str, b: str) -> SmcSession:
        return self._state.sessions[self._peer(a, b)]

    def party_in_pair(self, name: str, peer: str) -> Party:
        return self._state.parties[self._peer(name, peer)][name]

    def pair_channel(self, a: str, b: str) -> MirrorChannel:
        return self._state.channels[self._peer(a, b)]

    def begin_peer_query(self, driver_name: str, peer_name: str) -> None:
        self._state.views[peer_name].send_control(self._QUERY_WIRE)


class PartyDaemon:
    """One resident party: accepts sessions, multiplexes them over one
    persistent connection per mesh pair.

    Lifecycle: construct, then :meth:`run` (blocking; owns its own
    event loop) or ``await`` :meth:`serve` on an existing loop.
    :attr:`ready` is set -- thread-safely -- once every pair link is up
    and sessions can be served; :meth:`stop` (thread-safe) tears the
    daemon down from anywhere.
    """

    def __init__(self, spec: MeshSpec, name: str, *,
                 psk: str | None = None, bind_host: str | None = None,
                 metrics: MetricsRegistry | None = None,
                 trace_dir: str | None = None):
        spec.slot_of(name)
        self.spec = spec
        self.name = name
        self.digest = mesh_digest(spec)
        self.bind_host = bind_host
        if spec.link_auth and not psk:
            raise DaemonError(
                f"mesh spec requires link authentication but daemon "
                f"{name!r} was given no PSK (pass psk=... / --psk / "
                f"REPRO_PSK)")
        # The MAC context is the mesh digest: both ends know it a
        # priori, and it differs per mesh, so frames replayed from
        # another mesh fail verification.  A stray psk with
        # link_auth=False is ignored -- the digest-bound flag decides.
        self._authenticator = (FrameAuthenticator(psk, self.digest)
                               if spec.link_auth else None)
        self.engine = ModexpEngine(workers=spec.engine_workers)
        self.engine_warm = False
        self.randomness = RandomnessService(engine=self.engine)
        self.hubs: dict[str, AsyncTcpTransport] = {}
        self.sessions_run = 0
        self.ready = threading.Event()
        self.error: BaseException | None = None
        self._setup_seconds = 0.0
        self._active: set[str] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._links_ready: asyncio.Event | None = None
        self._hub_events: dict[str, asyncio.Event] = {}
        self._session_tasks: set[asyncio.Task] = set()
        self._refill_task: asyncio.Task | None = None
        self._draining = False
        self._drain = False
        # Observability: every subsystem of this daemon reports into
        # one registry (the `repro stats` / get_metrics source) and one
        # per-party tracer.  Both default to disabled null objects, so
        # an un-instrumented daemon pays single no-op calls.
        if metrics is None:
            metrics = MetricsRegistry(enabled=True)
        self.metrics = metrics
        self.tracer: Tracer = tracer_for(trace_dir, name)
        self._obs_admitted = metrics.counter("repro_sessions_admitted_total")
        self._obs_completed = metrics.counter(
            "repro_sessions_completed_total")
        self._obs_failed = metrics.counter("repro_sessions_failed_total")
        self._obs_rejected = {
            code: metrics.counter("repro_sessions_rejected_total",
                                  code=code)
            for code in (REJECT_CAPACITY, REJECT_DRAINING)}
        self._obs_threads = metrics.gauge("repro_daemon_threads")
        self._obs_segments = {
            mode: metrics.counter("repro_segment_frames_total", mode=mode)
            for mode in ("live", "replayed")}
        metrics.register_collector(self._collect_metrics)

    def _observe_thread_count(self) -> int:
        """The scale-out observable, published once: every reader (the
        per-session ``runtime_info``, the snapshot gauge) goes through
        here, so the two can never disagree."""
        count = threading.active_count()
        self._obs_threads.set(count)
        return count

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Snapshot-time levels: cheaper to read on demand than track."""
        self._observe_thread_count()
        registry.gauge("repro_sessions_active").set(len(self._active))
        registry.gauge("repro_sessions_run").set(self.sessions_run)
        registry.gauge("repro_daemon_draining").set(int(self._draining))
        registry.gauge("repro_daemon_setup_seconds").set(
            round(self._setup_seconds, 6))
        for key, value in self.engine.report().items():
            registry.gauge("repro_engine", stat=key).set(value)
        for key, value in self.randomness.report().items():
            registry.gauge("repro_randomness", stat=key).set(value)
        for key, value in powmod_cache_report().items():
            registry.gauge("repro_powmod_cache", stat=key).set(value)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """Blocking entry point: serve until :meth:`stop` (or a fatal
        link-up error).  Records the failure in :attr:`error` so a
        harness thread can surface it."""
        try:
            asyncio.run(self.serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced to harness
            self.error = exc
            self.ready.set()  # unblock anyone waiting on startup
            raise

    def stop(self, drain: bool = False) -> None:
        """Request teardown from any thread.

        ``drain=True`` is the graceful variant: the daemon stops
        accepting sessions (submits get a typed ``draining`` rejection),
        lets every in-flight session coroutine finish, and only then
        closes its links.  ``drain=False`` cancels in-flight sessions.
        """
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._begin_stop, drain)
            except RuntimeError:
                pass  # loop already closed

    def _begin_stop(self, drain: bool) -> None:
        """Loop-thread half of :meth:`stop` (also the shutdown-record
        path).  A drain request never downgrades to a hard stop, but a
        hard stop overrides a drain in progress."""
        self._draining = True
        if drain:
            self._drain = True
        else:
            self._drain = False
        self._stop_event.set()

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._links_ready = asyncio.Event()
        for peer in self.spec.peers_of(self.name):
            self._hub_events[peer] = asyncio.Event()
        started = time.perf_counter()
        server = await asyncio.start_server(
            self._on_connection, self.bind_host or self.spec.host,
            self.spec.ports[self.name])
        try:
            # Engine warm-up off the loop: accepting links while the
            # worker pool boots.
            self.engine_warm = await self._loop.run_in_executor(
                None, self.engine.warm_up)
            await self._link_up()
            self._setup_seconds = time.perf_counter() - started
            self._refill_task = self._loop.create_task(
                self.randomness.refill_idle())
            self._links_ready.set()
            self.ready.set()
            await self._stop_event.wait()
            if self._drain and self._session_tasks:
                # Graceful path: in-flight sessions run to completion
                # (their reports still reach the clients) while new
                # submits are rejected with the `draining` code.
                await asyncio.gather(*list(self._session_tasks),
                                     return_exceptions=True)
        finally:
            self._draining = True
            for task in list(self._session_tasks):
                task.cancel()
            if self._refill_task is not None:
                self._refill_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._refill_task
            self.randomness.close()
            for hub in self.hubs.values():
                await hub.aclose("daemon stopping")
            server.close()
            await server.wait_closed()
            self.engine.close()
            self.tracer.close()

    # -- pair link-up ------------------------------------------------------

    def _pair_hello(self, peer: str) -> Hello:
        left, right = self.spec.ordered_pair(self.name, peer)
        return Hello(version=PROTOCOL_VERSION, session_id="",
                     pair_left=left, pair_right=right,
                     party_id=self.name, config_digest=self.digest,
                     role=ROLE_DAEMON).authenticated(self._authenticator)

    def _register_hub(self, peer: str, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        left, right = self.spec.ordered_pair(self.name, peer)
        hub = AsyncTcpTransport(left, right, self.name,
                                timeout_s=self.spec.timeout_s,
                                net_delay_s=self.spec.net_delay_s,
                                authenticator=self._authenticator,
                                metrics=self.metrics)
        hub.start(reader, writer)
        self.hubs[peer] = hub
        self._hub_events[peer].set()

    async def _link_up(self) -> None:
        """Dial lower-slot peers, await higher-slot peers' dials."""
        my_slot = self.spec.slot_of(self.name)
        for peer in self.spec.names:
            if self.spec.slot_of(peer) < my_slot:
                await self._dial_peer(peer)
        for peer in self.spec.names:
            if self.spec.slot_of(peer) > my_slot:
                try:
                    await asyncio.wait_for(self._hub_events[peer].wait(),
                                           self.spec.connect_timeout_s)
                except asyncio.TimeoutError:
                    raise DaemonError(
                        f"daemon {self.name!r} waited "
                        f"{self.spec.connect_timeout_s}s for peer daemon "
                        f"{peer!r} to dial; it never linked up") from None

    async def _dial_peer(self, peer: str) -> None:
        deadline = self._loop.time() + self.spec.connect_timeout_s
        name = f"daemon {self.name}->{peer}"
        last_error: Exception | None = None
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    self.spec.host, self.spec.ports[peer])
            except OSError as exc:
                last_error = exc
                if self._loop.time() >= deadline:
                    break
                await asyncio.sleep(_DIAL_BACKOFF_S)
                continue
            mine = self._pair_hello(peer)
            try:
                await _send_frame(writer, FRAME_HELLO, mine.to_wire(),
                                  self._authenticator)
                theirs = await asyncio.wait_for(
                    read_hello_async(reader, name, self._authenticator),
                    self.spec.connect_timeout_s)
            except HandshakePeerLost as exc:
                # The peer daemon may be booting (accepted, not yet
                # serving); retry within the budget.
                writer.close()
                last_error = exc
                if self._loop.time() >= deadline:
                    break
                await asyncio.sleep(_DIAL_BACKOFF_S)
                continue
            except asyncio.TimeoutError:
                writer.close()
                last_error = TimeoutError("hello answer timed out")
                break
            mismatch = hello_mismatch(mine, theirs, expected_peer=peer,
                                      authenticator=self._authenticator)
            if mismatch is not None:
                field_name, ours, theirs_value = mismatch
                await _refuse_stream(
                    writer, name,
                    f"{field_name} mismatch: ours {ours!r}, "
                    f"peer {theirs_value!r}", self._authenticator)
            self._register_hub(peer, reader, writer)
            return
        raise DaemonError(
            f"daemon {self.name!r} could not link peer daemon {peer!r} "
            f"within {self.spec.connect_timeout_s}s: {last_error}")

    # -- accept loop -------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        name = f"daemon {self.name} accept"
        try:
            theirs = await asyncio.wait_for(
                read_hello_async(reader, name, self._authenticator),
                self.spec.connect_timeout_s)
            if theirs.role == ROLE_DAEMON:
                await self._accept_peer(theirs, reader, writer)
            elif theirs.role == ROLE_CLIENT:
                await self._serve_client(theirs, reader, writer)
            else:
                await _refuse_stream(
                    writer, name,
                    f"unknown endpoint role {theirs.role!r}",
                    self._authenticator)
        except FrameAuthenticationError:
            # Unauthenticated endpoint (wrong or missing PSK): drop the
            # connection without an answer; the daemon itself stays up.
            self.metrics.counter(
                "repro_accept_auth_failures_total").inc()
            writer.close()
        except (HandshakeError, asyncio.TimeoutError):
            writer.close()
        except (ConnectionResetError, OSError):
            writer.close()

    async def _accept_peer(self, theirs: Hello,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        name = f"daemon {self.name} accept"
        peer = theirs.party_id
        if peer not in self.spec.names or peer == self.name:
            await _refuse_stream(writer, name,
                                 f"unknown peer daemon {peer!r}",
                                 self._authenticator)
        if self.spec.slot_of(peer) < self.spec.slot_of(self.name):
            await _refuse_stream(
                writer, name,
                f"slot order violation: {peer!r} holds a lower mesh slot "
                f"and must be dialed, not accept from us",
                self._authenticator)
        mine = self._pair_hello(peer)
        mismatch = hello_mismatch(mine, theirs, expected_peer=peer,
                                  authenticator=self._authenticator)
        if mismatch is not None:
            field_name, ours, theirs_value = mismatch
            await _refuse_stream(
                writer, name,
                f"{field_name} mismatch: ours {ours!r}, "
                f"peer {theirs_value!r}", self._authenticator)
        await _send_frame(writer, FRAME_HELLO, mine.to_wire(),
                          self._authenticator)
        self._register_hub(peer, reader, writer)

    # -- client plane ------------------------------------------------------

    async def _serve_client(self, theirs: Hello,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        name = f"daemon {self.name} client"
        mismatch = client_hello_mismatch(theirs, self.digest,
                                         authenticator=self._authenticator)
        if mismatch is not None:
            field_name, ours, theirs_value = mismatch
            await _refuse_stream(
                writer, name,
                f"{field_name} mismatch: ours {ours!r}, "
                f"client {theirs_value!r}", self._authenticator)
        mine = Hello(version=PROTOCOL_VERSION, session_id="",
                     pair_left=theirs.pair_left,
                     pair_right=theirs.pair_right,
                     party_id=self.name, config_digest=self.digest,
                     role=ROLE_DAEMON).authenticated(self._authenticator)
        await _send_frame(writer, FRAME_HELLO, mine.to_wire(),
                          self._authenticator)

        write_lock = asyncio.Lock()

        async def send_record(record: list) -> None:
            payload = serialize_message(record)
            if self._authenticator is not None:
                payload = self._authenticator.seal(FRAME_CONTROL, payload)
            frame = encode_frame(FRAME_CONTROL, payload)
            async with write_lock:
                try:
                    writer.write(frame)
                    await writer.drain()
                except (ConnectionResetError, OSError):
                    pass  # client gone; the session result is lost with it

        try:
            while True:
                try:
                    kind, payload = await read_frame_async(
                        reader, name=name,
                        authenticator=self._authenticator)
                except (ConnectionClosedError, FramingError):
                    # FrameAuthenticationError lands here too: an
                    # unauthenticated client frame just drops the
                    # connection -- the daemon keeps serving others.
                    return
                if kind == FRAME_GOODBYE:
                    return
                if kind != FRAME_CONTROL:
                    return
                try:
                    record = deserialize_message(payload)
                except (SerializationError, UnicodeDecodeError):
                    return
                if not isinstance(record, list) or not record:
                    return
                if record[0] == CONTROL_SHUTDOWN:
                    drain = (len(record) > 1
                             and record[1] == SHUTDOWN_DRAIN)
                    self._begin_stop(drain)
                    if drain:
                        # Keep serving this connection: the in-flight
                        # sessions' reports still flow back to the
                        # client that requested the drain, and further
                        # submits get the typed rejection below.
                        continue
                    return
                if record[0] == CONTROL_GET_METRICS and len(record) == 2:
                    # Read-only introspection: answered inline (before
                    # any admission gate) so a draining or saturated
                    # daemon can still be watched.
                    await send_record([
                        CONTROL_METRICS, record[1],
                        json.dumps(self.metrics.snapshot(),
                                   sort_keys=True)])
                    continue
                if record[0] != CONTROL_START_SESSION or len(record) != 3:
                    return
                if self._draining:
                    self._obs_rejected[REJECT_DRAINING].inc()
                    await send_record([
                        CONTROL_SESSION_REJECTED,
                        _session_id_of(record[1]),
                        f"daemon {self.name!r} is draining for shutdown "
                        f"and accepts no new sessions",
                        REJECT_DRAINING])
                    continue
                if (self.spec.max_sessions
                        and len(self._session_tasks)
                        >= self.spec.max_sessions):
                    self._obs_rejected[REJECT_CAPACITY].inc()
                    await send_record([
                        CONTROL_SESSION_REJECTED,
                        _session_id_of(record[1]),
                        f"daemon {self.name!r} is at its max_sessions "
                        f"cap ({self.spec.max_sessions}); resubmit "
                        f"when a session finishes",
                        REJECT_CAPACITY])
                    continue
                self._obs_admitted.inc()
                task = self._loop.create_task(
                    self._session_task(record[1], record[2], send_record))
                self._session_tasks.add(task)
                task.add_done_callback(self._session_tasks.discard)
        finally:
            writer.close()

    async def _session_task(self, manifest_json: str, points_json: str,
                            send_record) -> None:
        session_id = "?"
        try:
            manifest = RunManifest.from_json(manifest_json)
            session_id = manifest.session_id
            points = [tuple(point) for point in json.loads(points_json)]
            report = await self._run_session(manifest, points)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - reported to the client
            self._obs_failed.inc()
            await send_record([CONTROL_SESSION_FAILED, session_id,
                               f"{type(exc).__name__}: {exc}"])
        else:
            self._obs_completed.inc()
            await send_record([CONTROL_SESSION_REPORT,
                               manifest.session_id, report.to_json()])

    # -- session execution -------------------------------------------------

    def _validate_session(self, manifest: RunManifest,
                          points: list) -> None:
        if tuple(manifest.names) != self.spec.names:
            raise DaemonError(
                f"manifest names {manifest.names} do not match the mesh "
                f"spec {self.spec.names}")
        if len(points) != manifest.counts[self.name]:
            raise DaemonError(
                f"partition for {self.name!r} has {len(points)} points "
                f"but the manifest declares "
                f"{manifest.counts[self.name]}")
        for point in points:
            if len(point) != manifest.dimensions:
                raise DaemonError(
                    f"point {point!r} has {len(point)} dimensions, "
                    f"manifest declares {manifest.dimensions}")
        if manifest.session_id in self._active:
            raise DaemonError(
                f"session {manifest.session_id!r} is already running on "
                f"daemon {self.name!r}")

    async def _run_session(self, manifest: RunManifest,
                           points: list) -> PartyReport:
        await self._links_ready.wait()
        started = time.perf_counter()
        self._validate_session(manifest, points)
        digest = manifest_digest(manifest)
        config = manifest.protocol_config()
        # Inject the daemon's shared warmed engine.  The manifest
        # requires engine=None (engines cannot cross processes); the
        # engine changes where modexps run, never their results
        # (engine-vs-serial equivalence is property-tested since PR 2).
        config = dataclasses.replace(
            config, smc=dataclasses.replace(config.smc, engine=self.engine))
        session_index = self.sessions_run
        self.sessions_run += 1
        warm_start = session_index > 0
        self._active.add(manifest.session_id)

        state = _SessionState(manifest=manifest, points=points)
        lease = self.randomness.lease(manifest.session_id)
        lease_report: dict | None = None
        runtimes: dict[str, PairRuntime] = {}
        session_span = self.tracer.span(
            "session", manifest.session_id,
            session_index=session_index, warm_start=warm_start,
            parties=len(manifest.names), points=len(points))
        try:
            for peer in manifest.peers_of(self.name):
                view = self.hubs[peer].session(manifest.session_id)
                state.views[peer] = view
                channel = RestartableMirrorChannel(
                    view.left_name, view.right_name, self.name, view)
                channel.obs_live = self._obs_segments["live"]
                channel.obs_replayed = self._obs_segments["replayed"]
                state.channels[peer] = channel
                runtime = PairRuntime(channel, view, lease)
                runtime.obs_restarts = self.metrics.counter(
                    "repro_restarts_total")
                runtime.obs_parked = self.metrics.gauge(
                    "repro_parked_coroutines")
                runtimes[peer] = runtime
            await self._session_sync(state, digest)
            await self._build_sessions(state, config, runtimes)
            self._register_pools(state, lease)
            setup_seconds = time.perf_counter() - started
            session_span.set(setup_seconds=round(setup_seconds, 6))

            view = _SessionMeshView(self.name, state)
            points_view = {
                name: (state.points if name == self.name
                       else manifest.placeholder_points(name))
                for name in manifest.names}
            ledger = LeakageLedger()
            labels: tuple[int, ...] = ()
            passes_started = time.perf_counter()
            for pass_index, driver in enumerate(manifest.names):
                role = "drive" if driver == self.name else "respond"
                with session_span.child("pass", f"pass{pass_index}",
                                        index=pass_index, role=role,
                                        driver=driver) as pass_span:
                    if driver == self.name:
                        labels = await self._drive_pass(
                            state, view, points_view, config, ledger,
                            runtimes, span=pass_span)
                    else:
                        served = await self._respond_pass(
                            state, driver, config, runtimes,
                            span=pass_span)
                        pass_span.set(served=served)
            finished = time.perf_counter()
            lease_report = self.randomness.release(manifest.session_id)
            restarts = sum(rt.restarts for rt in runtimes.values())
            session_span.set(restarts=restarts)
            return self._build_report(
                state, labels, ledger,
                elapsed=finished - started,
                passes=finished - passes_started,
                runtime_info=self._runtime_info(
                    state, session_index, warm_start, setup_seconds,
                    runtimes, lease_report))
        finally:
            session_span.close()
            if lease_report is None:
                with contextlib.suppress(PrecomputeError):
                    self.randomness.release(manifest.session_id)
            for link_view in state.views.values():
                link_view.close()
            self._active.discard(manifest.session_id)

    async def _session_sync(self, state: _SessionState,
                            digest: str) -> None:
        """Cross-check the manifest digest with every peer daemon.

        The pair handshake bound only the mesh spec; each *session* is
        validated here, before any protocol byte of it flows: both ends
        of every link announce the digest of the manifest they were
        handed and refuse the session on mismatch.  Per-link FIFO makes
        this record the first control record of the session stream, so
        it can never be confused with a query announcement.
        """
        wire = serialize_message([CONTROL_SESSION_SYNC, digest])
        for view in state.views.values():
            view.send_control(wire)

        async def check(peer, view):
            try:
                raw = await asyncio.wait_for(view.next_control(),
                                             self.spec.timeout_s)
            except asyncio.TimeoutError:
                raise DaemonError(
                    f"peer daemon {peer!r} never answered the session "
                    f"sync for {state.manifest.session_id!r}") from None
            record = deserialize_message(raw)
            if (not isinstance(record, list) or len(record) != 2
                    or record[0] != CONTROL_SESSION_SYNC
                    or not isinstance(record[1], str)):
                raise DaemonError(
                    f"malformed session sync from {peer!r}: {record!r}")
            # compare_digest: same constant-time treatment as every
            # other digest comparison on the runtime's trust boundary.
            if not hmac.compare_digest(record[1], digest):
                raise DaemonError(
                    f"manifest digest mismatch with peer daemon {peer!r} "
                    f"for session {state.manifest.session_id!r}: ours "
                    f"{digest[:12]}..., theirs {str(record[1])[:12]}...")

        await asyncio.gather(*(check(peer, view)
                               for peer, view in state.views.items()))

    async def _build_sessions(self, state: _SessionState, config,
                              runtimes: dict[str, PairRuntime]) -> None:
        """Event-loop twin of ``PartyProcess.build_sessions``: same
        global pair order, same key slots, same RNG substreams.

        Key material is sealed exactly like the dedicated-process
        runtime's: this daemon derives only its *own* slot's keypair;
        every peer context is a sealed placeholder whose authentic
        public key arrives over the wire during session setup, pinned
        against the manifest's ``key_digests`` when present.

        The key exchange inside ``SmcSession`` is itself a choreography
        (sends and receives on the pair channel), so it runs through
        the restartable runner: an attempt that reaches the peer's
        announcement before it has arrived unwinds and rebuilds from
        scratch once the frame lands.  Rebuilding is cheap (the keypair
        is process-cached after the first session) and deterministic --
        party RNGs are re-derived from the manifest seeds, so every
        attempt re-produces byte-identical announcements, which the
        channel's replay check enforces.  Pairs build sequentially in
        the same global order on every daemon; each daemon's outbound
        announcements are produced without waiting on the peer's, so
        the order admits no circular wait.
        """
        manifest = state.manifest
        provider = SealedKeyProvider(config.smc, self.name,
                                     key_digests=manifest.key_digests)
        contexts = {name: provider.context_for(name, slot)
                    for slot, name in enumerate(manifest.names)}
        for left, right in manifest.pairs():
            if self.name not in (left, right):
                continue
            peer = right if self.name == left else left
            channel = state.channels[peer]

            def build(_ledger, left=left, right=right, channel=channel):
                left_party = Party(channel.left, derive_pair_rng(
                    manifest.seed_of(left), left, left, right,
                    namespace=manifest.rng_namespace))
                right_party = Party(channel.right, derive_pair_rng(
                    manifest.seed_of(right), right, left, right,
                    namespace=manifest.rng_namespace))
                session = SmcSession(left_party, right_party, config.smc,
                                     preset_contexts=contexts)
                return left_party, right_party, session

            left_party, right_party, session = await runtimes[peer].run(
                build)
            state.parties[peer] = {left: left_party, right: right_party}
            state.sessions[peer] = session
            runtimes[peer].session = session

    def _register_pools(self, state: _SessionState, lease) -> None:
        """Hand every pair session's pools to the randomness service.

        Registration prefills each pool to the demand the service
        learned from released sessions under the same keypair -- the
        cross-session warm start.  The pools themselves (and their
        factor values) stay session-private.
        """
        for session in state.sessions.values():
            for (actor, owner), pool in session.pools().items():
                digest = paillier_public_digest(
                    session.paillier_keys(owner).public_key)
                lease.register_pool(pool, digest, actor == owner)

    async def _drive_pass(self, state: _SessionState, view, points_view,
                          config, ledger,
                          runtimes: dict[str, PairRuntime],
                          span=None) -> tuple[int, ...]:
        manifest = state.manifest
        caches = ({peer: PeerCipherCache()
                   for peer in manifest.peers_of(self.name)}
                  if config.cache_peer_ciphertexts else None)
        for peer, runtime in runtimes.items():
            runtime.cache = caches[peer] if caches is not None else None
        try:
            labels, _executor = await drive_pass_async(
                view, self.name, points_view, config,
                manifest.value_bound, ledger, caches, runtimes,
                span=span if span is not None else NULL_SPAN)
        finally:
            for runtime in runtimes.values():
                runtime.cache = None
        end = serialize_message([CONTROL_END_PASS])
        for peer in manifest.peers_of(self.name):
            state.views[peer].send_control(end)
        return labels.as_tuple()

    async def _respond_pass(self, state: _SessionState, driver: str,
                            config,
                            runtimes: dict[str, PairRuntime],
                            span=None) -> int:
        """Serve one remote driver's pass (coroutine twin of
        ``PartyProcess._respond_pass``).

        Waiting for the next control record is unbounded *by design* --
        the driver may spend arbitrarily long on its other peers -- and
        costs no thread while parked: a dead peer surfaces through the
        hub's poison, and each announced query runs the unchanged
        ``_peer_count`` choreography inline through the restartable
        runner.  The per-attempt ledger is discarded (the responder's
        disclosure view is the driver's report, not this daemon's).
        """
        manifest = state.manifest
        link = state.views[driver]
        session = state.sessions[driver]
        pair_parties = state.parties[driver]
        runtime = runtimes[driver]
        cache = (PeerCipherCache() if config.cache_peer_ciphertexts
                 else None)
        runtime.cache = cache
        placeholder = tuple([0] * manifest.dimensions)
        label = f"multiparty/{driver}-{self.name}"

        def serve_query(attempt_ledger: LeakageLedger) -> int:
            return _peer_count(
                session, pair_parties[driver], pair_parties[self.name],
                placeholder, state.points, config, manifest.value_bound,
                attempt_ledger, cache, label=label)

        if span is None:
            span = NULL_SPAN
        served = 0
        try:
            while True:
                raw = await link.next_control()
                try:
                    record = deserialize_message(raw)
                except (SerializationError, UnicodeDecodeError) as exc:
                    raise PartyRuntimeError(
                        f"unreadable control record from {driver!r}: "
                        f"{exc}") from exc
                if (not isinstance(record, list) or not record
                        or record[0] not in (CONTROL_QUERY,
                                             CONTROL_END_PASS)):
                    raise PartyRuntimeError(
                        f"malformed control record from {driver!r}: "
                        f"{record!r}")
                if record[0] == CONTROL_END_PASS:
                    return served
                served += 1
                with span.child("peer_query", f"serve{served}:{driver}",
                                step=served - 1,
                                peer=driver) as query_span:
                    await runtime.run(serve_query, span=query_span)
        finally:
            runtime.cache = None

    # -- reporting ---------------------------------------------------------

    def _runtime_info(self, state: _SessionState, session_index: int,
                      warm_start: bool, setup_seconds: float,
                      runtimes: dict[str, PairRuntime] | None = None,
                      lease_report: dict | None = None) -> dict:
        # One accounting source: the session's pool totals come from
        # its lease's hit report (the same numbers the randomness
        # service folds into the registry at release), not a second
        # sum over the pools.  The fallback re-sum only covers a
        # session that died before its lease released.
        if lease_report is not None:
            pool_totals = {key: lease_report.get(key, 0)
                           for key in ("pregenerated", "consumed",
                                       "misses")}
        else:
            pool_totals = {"pregenerated": 0, "consumed": 0, "misses": 0}
            for session in state.sessions.values():
                for report in session.pool_report().values():
                    for key in pool_totals:
                        pool_totals[key] += report.get(key, 0)
        info = {
            "runtime": "daemon",
            "pass_model": "async-restartable",
            "session_index": session_index,
            "warm_start": warm_start,
            "engine_warm": self.engine_warm,
            "engine": self.engine.report(),
            "daemon_setup_seconds": round(self._setup_seconds, 6),
            "setup_seconds": round(setup_seconds, 6),
            "pool": pool_totals,
            # The scale-out observable: loop + engine machinery only,
            # independent of how many sessions run concurrently.
            # Published through the registry gauge so `repro stats`
            # and per-session reports can never disagree.
            "thread_count": self._observe_thread_count(),
        }
        if runtimes is not None:
            info["restarts"] = sum(rt.restarts for rt in runtimes.values())
        if lease_report is not None:
            info["randomness"] = {
                "lease": lease_report,
                "service": self.randomness.report(),
            }
        return info

    def _build_report(self, state: _SessionState, labels, ledger, *,
                      elapsed: float, passes: float,
                      runtime_info: dict) -> PartyReport:
        pair_reports = {}
        for peer, channel in state.channels.items():
            channel.assert_drained()
            key = pair_key(*self.spec.ordered_pair(self.name, peer))
            pair_reports[key] = {
                "stats": channel.stats.snapshot(),
                "transcript_sha256": transcript_digest(channel.transcript),
                "messages": channel.transcript.message_count(),
                "comparisons":
                    state.sessions[peer].comparison_backend.invocations,
            }
        events = tuple((event.protocol, event.learner,
                        event.disclosure.value, event.detail)
                       for event in ledger.events)
        return PartyReport(party=self.name, labels=tuple(labels),
                           ledger_events=events,
                           pair_reports=pair_reports,
                           elapsed_seconds=elapsed,
                           passes_seconds=passes,
                           runtime_info=runtime_info)


def run_daemon(spec_path, name: str, *, psk: str | None = None,
               bind_host: str | None = None,
               trace_dir: str | None = None) -> None:
    """CLI entry: load the mesh spec and serve until stopped.

    ``psk`` falls back to the ``REPRO_PSK`` environment variable so the
    secret never has to appear on a command line or in the spec file;
    ``trace_dir`` falls back to ``REPRO_TRACE_DIR``.
    """
    import pathlib

    if psk is None:
        psk = os.environ.get("REPRO_PSK") or None
    if trace_dir is None:
        trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    spec = MeshSpec.from_json(pathlib.Path(spec_path).read_text())
    daemon = PartyDaemon(spec, name, psk=psk, bind_host=bind_host,
                         trace_dir=trace_dir)
    try:
        daemon.run()
    except KeyboardInterrupt:
        pass
