"""Pass-boundary checkpoints and deterministic replay.

The k-party protocol is a strict sequence of per-driver *passes*, and a
completed pass is a deterministic function of (manifest, own partition,
the frames the party exchanged).  That makes the pass boundary a natural
recovery point: after every completed pass the party program persists a
:class:`PartyCheckpoint` into the run directory -- its completed-pass
count, labels (once its own driver pass ran), its disclosure-ledger
slice, per-pass transcript digests, and **its own wire view**: every
protocol frame it sent or received, per pair, in order.

Recovery is *replay*: a re-spawned (or in-process rewinding) party
rebuilds all of its state by re-executing the choreography for the
completed passes with a :class:`ReplayTransport` substituted under its
mirrored channels -- locally recomputed outbound frames are verified
byte-for-byte against the recorded ones (any mismatch is a fatal
:class:`CheckpointDivergenceError`, never silent), and inbound frames
are served from the record instead of the socket.  Nothing touches the
network during replay, so completed passes are never re-transmitted;
RNG streams, randomness pools, sessions, transcripts, and stats all
advance exactly as they did the first time, which is what makes the
resumed run bit-identical to an uninterrupted one.

Privacy: a checkpoint contains only data the party already held -- its
own labels/ledger and the frames of its own protocol view (Definition
5's view, which the semi-honest analysis already grants it).  Persisting
and replaying that view discloses nothing new to anyone.
"""

from __future__ import annotations

import hmac
import json
import os
import pathlib
from collections import deque
from dataclasses import dataclass, field


class CheckpointError(RuntimeError):
    """Unreadable, inconsistent, or wrong-session checkpoint data."""


class CheckpointDivergenceError(RuntimeError):
    """Replay recomputed a frame that differs from the recorded one.

    This means the party's deterministic rebuild disagrees with what it
    actually sent before the failure -- corrupted state, a mismatched
    manifest, or a bug.  Always fatal: resuming would desync the mesh
    or silently change observables.
    """


@dataclass(frozen=True)
class PassRecord:
    """One completed pass, as this party saw it.

    ``served_queries`` is how many of the driver's queries this party
    answered (0 when this party drove the pass itself); replay uses it
    to re-serve a responder pass without the control frames.
    ``frame_counts`` are *cumulative* per-pair frame counts at the
    boundary, so the frame log can be truncated to any earlier boundary
    when the mesh negotiates a lower resume pass.  ``pair_digests`` are
    the per-pair transcript digests at the boundary -- replay must land
    on exactly these, a second divergence tripwire besides the
    frame-level compare.
    """

    driver: str
    served_queries: int
    frame_counts: dict[str, int]
    pair_digests: dict[str, str]

    def to_dict(self) -> dict:
        return {"driver": self.driver,
                "served_queries": self.served_queries,
                "frame_counts": dict(self.frame_counts),
                "pair_digests": dict(self.pair_digests)}

    @classmethod
    def from_dict(cls, record: dict) -> "PassRecord":
        return cls(driver=record["driver"],
                   served_queries=record["served_queries"],
                   frame_counts=dict(record["frame_counts"]),
                   pair_digests=dict(record["pair_digests"]))


#: A frame in a party's wire view: direction ("out" = this party sent
#: it, "in" = the peer did), the channel label, the exact wire bytes.
Frame = tuple[str, str, bytes]


@dataclass
class PartyCheckpoint:
    """Everything a party persists at a pass boundary."""

    party: str
    session_id: str
    manifest_sha256: str
    epoch: int
    passes_done: int
    labels: tuple[int, ...] | None
    ledger_events: tuple[tuple[str, str, str, str], ...]
    pass_records: list[PassRecord]
    frames: dict[str, list[Frame]]
    stats: dict = field(default_factory=dict)
    comparisons: dict = field(default_factory=dict)

    def frames_up_to(self, passes: int) -> dict[str, list[Frame]]:
        """The wire view truncated to an earlier boundary.

        The mesh resumes at the *minimum* completed-pass count across
        parties; a party checkpointed further ahead replays only up to
        that shared boundary and re-executes the rest live.
        """
        if not 1 <= passes <= self.passes_done:
            raise CheckpointError(
                f"cannot truncate checkpoint of {self.passes_done} "
                f"passes to {passes}")
        counts = self.pass_records[passes - 1].frame_counts
        return {pair: list(log[:counts.get(pair, 0)])
                for pair, log in self.frames.items()}

    def record_for(self, passes: int) -> PassRecord:
        if not 1 <= passes <= self.passes_done:
            raise CheckpointError(
                f"no pass record {passes} in a checkpoint of "
                f"{self.passes_done} passes")
        return self.pass_records[passes - 1]

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "party": self.party,
            "session_id": self.session_id,
            "manifest_sha256": self.manifest_sha256,
            "epoch": self.epoch,
            "passes_done": self.passes_done,
            "labels": list(self.labels) if self.labels is not None else None,
            "ledger_events": [list(event) for event in self.ledger_events],
            "pass_records": [record.to_dict()
                             for record in self.pass_records],
            "frames": {pair: [[direction, label, wire.hex()]
                              for direction, label, wire in log]
                       for pair, log in self.frames.items()},
            "stats": self.stats,
            "comparisons": self.comparisons,
        }
        return json.dumps(payload, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "PartyCheckpoint":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc
        try:
            checkpoint = cls(
                party=data["party"],
                session_id=data["session_id"],
                manifest_sha256=data["manifest_sha256"],
                epoch=data["epoch"],
                passes_done=data["passes_done"],
                labels=(tuple(data["labels"])
                        if data["labels"] is not None else None),
                ledger_events=tuple(tuple(event)
                                    for event in data["ledger_events"]),
                pass_records=[PassRecord.from_dict(record)
                              for record in data["pass_records"]],
                frames={pair: [(direction, label, bytes.fromhex(wire))
                               for direction, label, wire in log]
                        for pair, log in data["frames"].items()},
                stats=data.get("stats", {}),
                comparisons=data.get("comparisons", {}),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckpointError(
                f"malformed checkpoint: {exc!r}") from exc
        if len(checkpoint.pass_records) != checkpoint.passes_done:
            raise CheckpointError(
                f"checkpoint declares {checkpoint.passes_done} passes but "
                f"records {len(checkpoint.pass_records)}")
        return checkpoint


def checkpoint_path(run_dir: pathlib.Path, party: str) -> pathlib.Path:
    return pathlib.Path(run_dir) / f"checkpoint_{party}.json"


def write_checkpoint(run_dir: pathlib.Path,
                     checkpoint: PartyCheckpoint) -> None:
    """Atomic write: a crash mid-checkpoint must leave the previous
    boundary's file intact, never a torn JSON."""
    path = checkpoint_path(run_dir, checkpoint.party)
    temp = path.with_suffix(".json.tmp")
    temp.write_text(checkpoint.to_json())
    os.replace(temp, path)


def load_checkpoint(run_dir: pathlib.Path, party: str, *,
                    session_id: str,
                    manifest_sha256: str) -> PartyCheckpoint | None:
    """Load and validate a party's checkpoint; ``None`` when absent.

    Session and manifest bindings are enforced exactly like the
    handshake's: a checkpoint from another run (or a manifest that
    changed underneath it) is refused, not silently replayed.
    """
    path = checkpoint_path(run_dir, party)
    if not path.exists():
        return None
    checkpoint = PartyCheckpoint.from_json(path.read_text())
    if checkpoint.party != party:
        raise CheckpointError(
            f"checkpoint at {path} belongs to {checkpoint.party!r}, "
            f"not {party!r}")
    # compare_digest for the identity/digest bindings: these are the
    # same strings the handshake refuses on, so the comparison should
    # not leak a byte-position timing signal either.
    if not hmac.compare_digest(checkpoint.session_id, session_id):
        raise CheckpointError(
            f"checkpoint session {checkpoint.session_id!r} does not match "
            f"run session {session_id!r}")
    if not hmac.compare_digest(checkpoint.manifest_sha256,
                               manifest_sha256):
        raise CheckpointError(
            "checkpoint was written under a different manifest "
            f"({checkpoint.manifest_sha256[:12]}... vs "
            f"{manifest_sha256[:12]}...); refusing to replay")
    return checkpoint


class ReplayTransport:
    """The transport of a replayed pass: serves the recorded wire view.

    Drop-in for :class:`~repro.net.transport.TcpTransport` under a
    :class:`~repro.runtime.mirror.MirrorChannel`: ``deliver`` consumes
    the next recorded *outbound* frame and verifies the re-computed
    bytes against it; ``collect`` consumes the next recorded *inbound*
    frame.  Order, direction, label, and bytes must all match the
    record -- replay re-executes history, it does not re-negotiate it.
    """

    def __init__(self, left_name: str, right_name: str, local_name: str,
                 frames: list[Frame]):
        self.left_name = left_name
        self.right_name = right_name
        self.local_name = local_name
        self._queue: deque[Frame] = deque(frames)
        self._position = 0

    def _context(self) -> str:
        return (f"replay {self.local_name!r} on pair "
                f"({self.left_name!r}, {self.right_name!r}), "
                f"frame {self._position}")

    def _next(self, want_direction: str, label: str) -> Frame:
        if not self._queue:
            raise CheckpointDivergenceError(
                f"{self._context()}: choreography expects another "
                f"{want_direction!r} frame ({label!r}) but the recorded "
                f"view is exhausted")
        self._position += 1
        frame = self._queue.popleft()
        if frame[0] != want_direction:
            raise CheckpointDivergenceError(
                f"{self._context()}: expected an {want_direction!r} frame "
                f"({label!r}), record holds {frame[0]!r} {frame[1]!r}")
        return frame

    def deliver(self, sender: str, receiver: str, label: str,
                wire: bytes) -> None:
        recorded_direction, recorded_label, recorded_wire = self._next(
            "out", label)
        if recorded_label != label or recorded_wire != wire:
            detail = ("label" if recorded_label != label
                      else f"{len(wire)}-byte payload")
            raise CheckpointDivergenceError(
                f"{self._context()}: recomputed frame {label!r} diverges "
                f"from the recorded {recorded_label!r} ({detail} "
                f"mismatch); the checkpoint does not reproduce this run")

    def collect(self, receiver: str,
                expected_label: str | None) -> tuple[str, bytes]:
        _, label, wire = self._next("in", expected_label or "a message")
        return label, wire

    def close(self, reason: str | None = None) -> None:
        """Replay holds no resources; closing is a no-op."""

    def assert_exhausted(self) -> None:
        if self._queue:
            direction, label, _ = self._queue[0]
            raise CheckpointDivergenceError(
                f"{self._context()}: replay finished with "
                f"{len(self._queue)} recorded frames unconsumed (next: "
                f"{direction!r} {label!r}); the checkpoint holds more "
                f"history than the choreography reproduced")
